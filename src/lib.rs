//! # dlht — Dandelion HashTable
//!
//! Facade crate for the DLHT reproduction (HPDC 2024). It re-exports:
//!
//! * the **typed facade** [`Dlht<K, V>`] — one generic table that picks the
//!   right paper mode at compile time (Inlined slots for 8-byte-encodable
//!   types, Allocator-mode records for everything else);
//! * the **unified operations API** [`KvBackend`] + [`Request`]/[`Response`]
//!   — the single trait implemented by every DLHT mode *and* every baseline
//!   hashtable in `dlht-baselines`, so workloads and benchmarks drive any
//!   table interchangeably;
//! * the mode-specific types ([`DlhtMap`], [`DlhtAllocMap`], [`DlhtSet`],
//!   [`SingleThreadMap`]) and the substrate crates (hash functions, epoch GC,
//!   value allocators);
//! * the **sharded front** [`ShardedTable`] / [`DlhtShards<K, V>`] — N
//!   independent DLHT shards with shard-local (independent) resizes behind
//!   the same `KvBackend` and typed surfaces.
//!
//! The same generic code path serves inline and out-of-line pairs:
//!
//! ```
//! use dlht::{Dlht, DlhtError, KvCodec};
//!
//! fn exercise<K: KvCodec, V: KvCodec + PartialEq + std::fmt::Debug>(
//!     map: &Dlht<K, V>,
//!     key: K,
//!     value: V,
//! ) -> Result<(), DlhtError> {
//!     assert!(map.insert(&key, &value)?);
//!     assert_eq!(map.get(&key).as_ref(), Some(&value));
//!     assert_eq!(map.remove(&key), Some(value));
//!     Ok(())
//! }
//!
//! // Inlined mode: both halves pack into the 8-byte slot words.
//! let ids: Dlht<u64, u64> = Dlht::with_capacity(1024);
//! exercise(&ids, 42, 4200).unwrap();
//!
//! // Allocator mode: out-of-line records, epoch-GC'd deletes.
//! let docs: Dlht<String, Vec<u8>> = Dlht::with_capacity(1024);
//! exercise(&docs, "answer".to_string(), vec![42u8; 100]).unwrap();
//! ```
//!
//! And the unified batch-and-pipeline API works on any backend. A reusable
//! [`Batch`] owns request *and* response storage (zero allocations once
//! warm), [`BatchPolicy`] replaces the old `stop_on_failure: bool`, and a
//! bounded [`Pipeline`] keeps a stream of prefetched operations in flight
//! with order-preserving completion:
//!
//! ```
//! use dlht::{Batch, BatchPolicy, DlhtMap, KvBackend, Pipeline, Request, Response};
//!
//! let map = DlhtMap::with_capacity(1024);
//! let backend: &dyn KvBackend = &map;
//! backend.insert(1, 100).unwrap();
//!
//! let mut batch = Batch::with_capacity(1);
//! batch.push_get(1);
//! backend.execute(&mut batch, BatchPolicy::RunAll);
//! assert_eq!(batch.responses()[0], Response::Value(Some(100)));
//!
//! let mut pipe = Pipeline::new(backend, 8);
//! pipe.submit(Request::Get(1));
//! assert_eq!(pipe.drain()[0], Response::Value(Some(100)));
//! ```
//!
//! See `README.md` for the architecture overview, the mode-selection table,
//! and the migration notes from the pre-`Batch` API.

#![forbid(unsafe_code)]

pub use dlht_core::{
    AllocSession, Batch, BatchExecutor, BatchPolicy, ByteCodec, Dlht, DlhtAllocMap, DlhtConfig,
    DlhtError, DlhtMap, DlhtSet, DlhtShards, Inline8, InsertOutcome, KvBackend, KvCodec,
    MapFeatures, Pipeline, RawTable, Request, Response, Session, ShardedSession, ShardedTable,
    SingleThreadMap, TableStats, TaggedPtr, TypedBatch, TypedResponse, MAX_KEY_LEN, MAX_NAMESPACES,
    MAX_SHARDS,
};

// Codec-implementation macros for user newtypes.
pub use dlht_core::{impl_bytes_codec, impl_inline8_codec};

/// Value allocators for the Allocator mode (system malloc and the pooled
/// mimalloc stand-in).
pub use dlht_alloc as alloc;
/// Low-level building blocks (headers, buckets, batch types, prefetching).
pub use dlht_core as core;
/// Client-driven epoch-based reclamation used by Allocator-mode deletes.
pub use dlht_epoch as epoch;
/// The hash functions evaluated by the paper (modulo, wyhash, xxhash64, ...).
pub use dlht_hash as hash;

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let map = DlhtMap::with_config(DlhtConfig::new(64).with_hash(hash::HashKind::WyHash));
        let _ = map.insert(5, 50).unwrap();
        assert_eq!(map.get(5), Some(50));
        let set = DlhtSet::with_capacity(16);
        assert!(set.insert(9).unwrap());
        let stats: TableStats = map.stats();
        assert_eq!(stats.occupied_slots, 1);
    }

    #[test]
    fn typed_facade_and_backend_trait_compose() {
        let typed: Dlht<u64, u64> = Dlht::with_capacity(64);
        typed.insert(&1, &10).unwrap();
        // The inline path is a real DlhtMap, which is itself a KvBackend.
        let backend: &dyn KvBackend = typed.inline_map().unwrap();
        assert_eq!(backend.get(1), Some(10));
        assert_eq!(backend.name(), "DLHT");
    }
}
