//! # dlht — Dandelion HashTable
//!
//! Facade crate for the DLHT reproduction (HPDC 2024): re-exports the core
//! hashtable ([`DlhtMap`], [`DlhtAllocMap`], [`DlhtSet`], [`SingleThreadMap`]),
//! its configuration, and the substrate crates (hash functions, epoch GC,
//! value allocators), and hosts the repository-wide examples and integration
//! tests.
//!
//! ```
//! use dlht::{DlhtMap, Request, Response};
//!
//! let map = DlhtMap::with_capacity(1024);
//! map.insert(1, 100).unwrap();
//! let out = map.execute_batch(&[Request::Get(1)], false);
//! assert_eq!(out[0], Response::Value(Some(100)));
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use dlht_core::{
    AllocSession, DlhtAllocMap, DlhtConfig, DlhtError, DlhtMap, DlhtSet, InsertOutcome, RawTable,
    Request, Response, SingleThreadMap, TableStats, TaggedPtr, MAX_KEY_LEN, MAX_NAMESPACES,
};

/// Value allocators for the Allocator mode (system malloc and the pooled
/// mimalloc stand-in).
pub use dlht_alloc as alloc;
/// Client-driven epoch-based reclamation used by Allocator-mode deletes.
pub use dlht_epoch as epoch;
/// The hash functions evaluated by the paper (modulo, wyhash, xxhash64, ...).
pub use dlht_hash as hash;
/// Low-level building blocks (headers, buckets, batch types, prefetching).
pub use dlht_core as core;

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let map = DlhtMap::with_config(DlhtConfig::new(64).with_hash(hash::HashKind::WyHash));
        map.insert(5, 50).unwrap();
        assert_eq!(map.get(5), Some(50));
        let set = DlhtSet::with_capacity(16);
        assert!(set.insert(9).unwrap());
        let stats: TableStats = map.stats();
        assert_eq!(stats.occupied_slots, 1);
    }
}
