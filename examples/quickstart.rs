//! Quickstart: the typed `Dlht<K, V>` facade and the unified `KvBackend`
//! operations API — insert, get, put, delete, batched and pipelined access,
//! statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use dlht::{Batch, BatchPolicy, Dlht, KvBackend, Request, Response, TypedBatch, TypedResponse};

fn main() {
    // The typed facade picks the paper mode from the types: u64 -> u64 packs
    // into the Inlined 8 B/8 B slots; String -> Vec<u8> goes out of line.
    let ids: Dlht<u64, u64> = Dlht::with_capacity(1_000_000);
    let docs: Dlht<String, Vec<u8>> = Dlht::with_capacity(10_000);
    println!("Dlht<u64, u64> mode      : {}", ids.mode());
    println!("Dlht<String, Vec<u8>> mode: {}", docs.mode());

    // Basic operations. Inserts never overwrite; Puts never insert.
    ids.insert(&42, &4200).unwrap();
    assert_eq!(ids.get(&42), Some(4200));
    assert_eq!(ids.put(&42, &4300).unwrap(), Some(4200));
    assert_eq!(ids.remove(&42), Some(4300));

    docs.insert(&"hello".to_string(), &b"world".to_vec())
        .unwrap();
    assert_eq!(docs.get(&"hello".to_string()), Some(b"world".to_vec()));

    // Populate a few thousand keys from several threads.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ids = &ids;
            s.spawn(move || {
                for k in (t..20_000).step_by(4) {
                    ids.insert(&k, &(k * 10)).unwrap();
                }
            });
        }
    });
    println!("population: {} keys", ids.len());

    // Typed batched lookup into a reused buffer: one prefetch sweep,
    // in-order execution, no per-call result vector.
    let keys: Vec<u64> = (0..32).map(|k| k * 100).collect();
    let mut results = Vec::new();
    ids.get_many_into(&keys, &mut results);
    let hits = results.iter().filter(|v| v.is_some()).count();
    println!("typed batched gets: {hits}/32 hits");

    // Mixed typed batch: requests and decoded responses share one reusable
    // buffer.
    let mut tbatch: TypedBatch<u64, u64> = TypedBatch::with_capacity(3);
    tbatch.push_insert(&777_777, &1);
    tbatch.push_get(&777_777);
    tbatch.push_delete(&777_777);
    ids.execute(&mut tbatch, BatchPolicy::RunAll).unwrap();
    assert_eq!(tbatch.response(1), Some(TypedResponse::Value(Some(1))));

    // The same table through the unified KvBackend trait — the interface the
    // workload runner drives every table (DLHT and baselines) with. The
    // Batch owns request *and* response storage: clear() + refill executes
    // with zero steady-state allocations.
    let backend: &dyn KvBackend = ids.inline_map().unwrap();
    let mut batch = Batch::with_capacity(32);
    for k in 0..32u64 {
        batch.push_get(k * 100);
    }
    backend.execute(&mut batch, BatchPolicy::RunAll);
    let hits = batch
        .responses()
        .iter()
        .filter(|r| matches!(r, Response::Value(Some(_))))
        .count();
    println!("trait batched gets: {hits}/32 hits");

    // Or keep a bounded stream of requests in flight: a session caches the
    // thread's registry slot, and its pipeline prefetches at submit time with
    // order-preserving completion (depth-16 window here).
    let session = ids.inline_map().unwrap().session();
    let mut pipe = session.pipeline(16);
    let mut hits = 0usize;
    for k in 0..32u64 {
        if let Some(Response::Value(Some(_))) = pipe.submit(Request::Get(k * 100)) {
            hits += 1;
        }
    }
    hits += pipe
        .drain()
        .iter()
        .filter(|r| matches!(r, Response::Value(Some(_))))
        .count();
    println!("pipelined gets    : {hits}/32 hits");

    // Structural statistics (occupancy, chaining, resizes).
    let stats = backend.stats();
    println!(
        "bins = {}, occupied slots = {}, occupancy = {:.1}%, resizes = {}",
        stats.bins,
        stats.occupied_slots,
        stats.occupancy * 100.0,
        stats.resizes
    );
}
