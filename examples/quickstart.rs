//! Quickstart: the typed `Dlht<K, V>` facade and the unified `KvBackend`
//! operations API — insert, get, put, delete, batched access, statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use dlht::{Dlht, KvBackend, Request, Response};

fn main() {
    // The typed facade picks the paper mode from the types: u64 -> u64 packs
    // into the Inlined 8 B/8 B slots; String -> Vec<u8> goes out of line.
    let ids: Dlht<u64, u64> = Dlht::with_capacity(1_000_000);
    let docs: Dlht<String, Vec<u8>> = Dlht::with_capacity(10_000);
    println!("Dlht<u64, u64> mode      : {}", ids.mode());
    println!("Dlht<String, Vec<u8>> mode: {}", docs.mode());

    // Basic operations. Inserts never overwrite; Puts never insert.
    ids.insert(&42, &4200).unwrap();
    assert_eq!(ids.get(&42), Some(4200));
    assert_eq!(ids.put(&42, &4300).unwrap(), Some(4200));
    assert_eq!(ids.remove(&42), Some(4300));

    docs.insert(&"hello".to_string(), &b"world".to_vec())
        .unwrap();
    assert_eq!(docs.get(&"hello".to_string()), Some(b"world".to_vec()));

    // Populate a few thousand keys from several threads.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ids = &ids;
            s.spawn(move || {
                for k in (t..20_000).step_by(4) {
                    ids.insert(&k, &(k * 10)).unwrap();
                }
            });
        }
    });
    println!("population: {} keys", ids.len());

    // Typed batched lookup: one prefetch sweep, in-order execution.
    let keys: Vec<u64> = (0..32).map(|k| k * 100).collect();
    let hits = ids.get_many(&keys).iter().filter(|v| v.is_some()).count();
    println!("typed batched gets: {hits}/32 hits");

    // The same table through the unified KvBackend trait — the interface the
    // workload runner drives every table (DLHT and baselines) with.
    let backend: &dyn KvBackend = ids.inline_map().unwrap();
    let batch: Vec<Request> = (0..32).map(|k| Request::Get(k * 100)).collect();
    let responses = backend.execute_batch(&batch, false);
    let hits = responses
        .iter()
        .filter(|r| matches!(r, Response::Value(Some(_))))
        .count();
    println!("trait batched gets: {hits}/32 hits");

    // Structural statistics (occupancy, chaining, resizes).
    let stats = backend.stats();
    println!(
        "bins = {}, occupied slots = {}, occupancy = {:.1}%, resizes = {}",
        stats.bins,
        stats.occupied_slots,
        stats.occupancy * 100.0,
        stats.resizes
    );
}
