//! Quickstart: the Inlined mode — insert, get, put, delete, batched access,
//! and table statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use dlht::{DlhtConfig, DlhtMap, Request, Response};
use dlht::hash::HashKind;

fn main() {
    // A map sized for ~1M 8-byte key/value pairs, hashed with wyhash.
    let map = DlhtMap::with_config(
        DlhtConfig::for_capacity(1_000_000).with_hash(HashKind::WyHash),
    );

    // Basic operations. Inserts never overwrite; Puts never insert.
    map.insert(42, 4200).unwrap();
    assert_eq!(map.get(42), Some(4200));
    assert_eq!(map.put(42, 4300), Some(4200));
    assert_eq!(map.delete(42), Some(4300));
    assert_eq!(map.get(42), None);

    // Populate a few thousand keys from several threads.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = &map;
            s.spawn(move || {
                for k in (t..20_000).step_by(4) {
                    map.insert(k, k * 10).unwrap();
                }
            });
        }
    });
    println!("population: {} keys", map.len());

    // Batched execution: one prefetch sweep, then strictly in-order execution.
    let batch: Vec<Request> = (0..32).map(|k| Request::Get(k * 100)).collect();
    let responses = map.execute_batch(&batch, false);
    let hits = responses
        .iter()
        .filter(|r| matches!(r, Response::Value(Some(_))))
        .count();
    println!("batched gets: {hits}/32 hits");

    // Structural statistics (occupancy, chaining, resizes).
    let stats = map.stats();
    println!(
        "bins = {}, occupied slots = {}, occupancy = {:.1}%, resizes = {}",
        stats.bins,
        stats.occupied_slots,
        stats.occupancy * 100.0,
        stats.resizes
    );
}
