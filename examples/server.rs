//! Serve a sharded DLHT over TCP with the `dlht-net` wire protocol.
//!
//! ```text
//! cargo run --release --example server                     # self-demo, exits
//! cargo run --release --example server -- --addr 127.0.0.1:4455   # serve until Ctrl-C
//! ```
//!
//! With `--addr` the server runs until the process is killed (pair it with
//! `--example client`); without arguments it binds an ephemeral port, runs
//! an in-process client demo, prints the counters, and shuts down
//! gracefully — the whole connection → `ShardedSession` → `Batch` →
//! `ShardedTable` path in one run.

use dlht::{KvBackend, ShardedTable};
use dlht_net::{DlhtClient, DlhtServer};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = dlht_net::flag_value(&args, "--addr");

    let table = Arc::new(ShardedTable::with_capacity(4, 100_000));
    let serve_forever = addr.is_some();
    let server = DlhtServer::bind(addr.as_deref().unwrap_or("127.0.0.1:0"), table.clone())
        .expect("bind dlht-net server");
    println!(
        "serving on {} ({} shards)",
        server.local_addr(),
        table.num_shards()
    );

    if serve_forever {
        println!("press Ctrl-C to stop");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(5));
            let c = server.counters();
            println!(
                "connections={} active={} ops={} batches={} keys={}",
                c.connections,
                c.active,
                c.ops,
                c.batches,
                table.len()
            );
        }
    }

    // Self-demo: a real TCP client against our own server.
    let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    for k in 0..1_000u64 {
        assert!(client.insert(k, k * 10).expect("insert").inserted());
    }
    let reqs: Vec<dlht::Request> = (0..1_000).map(dlht::Request::Get).collect();
    let hits = client
        .pipelined(&reqs)
        .expect("pipelined gets")
        .iter()
        .filter(|r| r.succeeded())
        .count();
    let stats = client.stats().expect("stats");
    println!(
        "demo: {hits}/1000 pipelined GET hits; server holds {} keys at {:.0}% occupancy",
        client.server_len().expect("len"),
        stats.table.occupancy * 100.0
    );
    let counters = server.shutdown();
    println!(
        "shutdown: served {} ops in {} batches over {} connection(s)",
        counters.ops, counters.batches, counters.connections
    );
}
