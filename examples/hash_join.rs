//! Non-partitioned hash join over DLHT (§5.3.6), driven through the unified
//! batch API twice over: the probe relation streams once through a reusable
//! [`Batch`] (discrete windows) and once through a bounded prefetch
//! [`Pipeline`] (continuous submission), so software prefetching hides the
//! random index accesses either way.
//!
//! Run with: `cargo run --release --example hash_join`

use dlht::{Batch, BatchPolicy, DlhtMap, KvBackend, Pipeline, Request, Response};
use std::time::Instant;

fn main() {
    // R (build): 2^17 tuples, S (probe): 2^21 tuples — scaled-down workload A.
    let r_tuples: u64 = 1 << 17;
    let s_tuples: u64 = 1 << 21;
    let table = DlhtMap::with_capacity(r_tuples as usize);
    let map: &dyn KvBackend = &table;

    let start = Instant::now();
    for key in 0..r_tuples {
        let _ = map.insert(key, key * 2).unwrap(); // payload = "row id"
    }
    let build_time = start.elapsed();

    // Probe pass 1: discrete batches of 32 through one reused buffer — the
    // steady-state loop performs zero heap allocations.
    let probe_start = Instant::now();
    let mut matches = 0u64;
    let mut join_sum = 0u64;
    let mut batch = Batch::with_capacity(32);
    let mut s = 0u64;
    while s < s_tuples {
        batch.clear();
        while batch.len() < 32 && s < s_tuples {
            // Foreign keys reference R round-robin: every probe matches.
            batch.push_get(s % r_tuples);
            s += 1;
        }
        map.execute(&mut batch, BatchPolicy::RunAll);
        for resp in batch.responses() {
            if let Response::Value(Some(row)) = resp {
                matches += 1;
                join_sum = join_sum.wrapping_add(*row);
            }
        }
    }
    let probe_time = probe_start.elapsed();

    // Probe pass 2: the same stream through a depth-32 pipeline — prefetch at
    // submit, order-preserving completion, no window boundaries.
    let pipe_start = Instant::now();
    let mut pipe_matches = 0u64;
    let mut pipe = Pipeline::new(map, 32);
    let mut count_match = |resp: Response| {
        if matches!(resp, Response::Value(Some(_))) {
            pipe_matches += 1;
        }
    };
    for s in 0..s_tuples {
        if let Some(resp) = pipe.submit(Request::Get(s % r_tuples)) {
            count_match(resp);
        }
    }
    for resp in pipe.drain() {
        count_match(resp);
    }
    let pipe_time = pipe_start.elapsed();

    let total = (r_tuples + s_tuples) as f64;
    println!("build : {} tuples in {:?}", r_tuples, build_time);
    println!(
        "probe (batched)  : {} tuples in {:?}, {} matches",
        s_tuples, probe_time, matches
    );
    println!(
        "probe (pipelined): {} tuples in {:?}, {} matches",
        s_tuples, pipe_time, pipe_matches
    );
    println!(
        "join throughput: {:.1} M tuples/s batched, {:.1} M tuples/s pipelined (checksum {join_sum})",
        total / (build_time + probe_time).as_secs_f64() / 1e6,
        total / (build_time + pipe_time).as_secs_f64() / 1e6
    );
    assert_eq!(matches, s_tuples);
    assert_eq!(pipe_matches, s_tuples);
}
