//! Non-partitioned hash join over DLHT (§5.3.6), driven through the unified
//! `KvBackend` API: build the small relation into the table, then stream the
//! probe relation through the batched `Request`/`Response` path so software
//! prefetching hides the random index accesses.
//!
//! Run with: `cargo run --release --example hash_join`

use dlht::{DlhtMap, KvBackend, Request, Response};
use std::time::Instant;

fn main() {
    // R (build): 2^17 tuples, S (probe): 2^21 tuples — scaled-down workload A.
    let r_tuples: u64 = 1 << 17;
    let s_tuples: u64 = 1 << 21;
    let table = DlhtMap::with_capacity(r_tuples as usize);
    let map: &dyn KvBackend = &table;

    let start = Instant::now();
    for key in 0..r_tuples {
        map.insert(key, key * 2).unwrap(); // payload = "row id"
    }
    let build_time = start.elapsed();

    let probe_start = Instant::now();
    let mut matches = 0u64;
    let mut join_sum = 0u64;
    let mut batch = Vec::with_capacity(32);
    let mut s = 0u64;
    while s < s_tuples {
        batch.clear();
        while batch.len() < 32 && s < s_tuples {
            // Foreign keys reference R round-robin: every probe matches.
            batch.push(Request::Get(s % r_tuples));
            s += 1;
        }
        for resp in map.execute_batch(&batch, false) {
            if let Response::Value(Some(row)) = resp {
                matches += 1;
                join_sum = join_sum.wrapping_add(row);
            }
        }
    }
    let probe_time = probe_start.elapsed();

    let total = (r_tuples + s_tuples) as f64;
    println!("build : {} tuples in {:?}", r_tuples, build_time);
    println!(
        "probe : {} tuples in {:?}, {} matches",
        s_tuples, probe_time, matches
    );
    println!(
        "join throughput: {:.1} M tuples/s (checksum {join_sum})",
        total / (build_time + probe_time).as_secs_f64() / 1e6
    );
    assert_eq!(matches, s_tuples);
}
