//! A pipelining `dlht-net` client.
//!
//! ```text
//! cargo run --release --example client -- 127.0.0.1:4455
//! ```
//!
//! Without an address argument (or `DLHT_SERVER`), the example starts its
//! own in-process server on an ephemeral port so it always has something to
//! talk to, then demonstrates the client surface: single requests, a
//! pipelined window (one round trip, one server-side batch), an explicit
//! `BATCH` with `StopOnFailure`, and the typed `STATS` struct.

use dlht::{BatchPolicy, Request, Response, ShardedTable};
use dlht_net::{DlhtClient, DlhtServer};
use std::sync::Arc;

fn main() {
    let addr_arg = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("DLHT_SERVER").ok());

    // Connect to the given server, or spin one up for the demo.
    let own_server = if addr_arg.is_none() {
        let table = Arc::new(ShardedTable::with_capacity(4, 100_000));
        let server = DlhtServer::bind("127.0.0.1:0", table).expect("bind demo server");
        println!("no address given; demo server on {}", server.local_addr());
        Some(server)
    } else {
        None
    };
    let addr = addr_arg.unwrap_or_else(|| own_server.as_ref().unwrap().local_addr().to_string());

    let mut client = DlhtClient::connect(&addr).expect("connect");
    client.ping().expect("ping");
    println!("connected to {addr}");

    // Single requests: one network round trip each. The server may be
    // prepopulated (dlht_server --keys), so fall back to an update.
    if !client.insert(1, 100).expect("insert").inserted() {
        client.put(1, 100).expect("put");
    }
    println!("get(1) = {:?}", client.get(1).expect("get"));

    // Pipelined: 64 requests, one flush, one round trip — the server drains
    // them into a single prefetched batch execution.
    let reqs: Vec<Request> = (0..64).map(|k| Request::Insert(k, k * 2)).collect();
    let acks = client.pipelined(&reqs).expect("pipelined inserts");
    println!(
        "pipelined 64 inserts -> {} fresh",
        acks.iter().filter(|r| r.succeeded()).count()
    );

    // Explicit batch with a policy: the first failure skips the rest.
    let out = client
        .execute_requests(
            &[
                Request::Get(1),
                Request::Get(9_999_999), // miss -> stop
                Request::Delete(1),
            ],
            BatchPolicy::StopOnFailure,
        )
        .expect("batch");
    assert_eq!(out[2], Response::Skipped);
    println!("StopOnFailure batch: {:?}", out);

    // Typed stats — a struct, not a string to parse.
    let stats = client.stats().expect("stats");
    println!(
        "server: {} keys, {} bins, occupancy {:.1}%, {} resizes, {} retired indexes",
        client.server_len().expect("len"),
        stats.table.bins,
        stats.table.occupancy * 100.0,
        stats.table.resizes,
        stats.retired
    );

    if let Some(server) = own_server {
        let counters = server.shutdown();
        println!(
            "demo server shutdown: {} ops in {} batches",
            counters.ops, counters.batches
        );
    }
}
