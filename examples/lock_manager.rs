//! A database lock manager over the HashSet mode (§5.3.3), driven entirely
//! through the unified `KvBackend` batch API: inserting a key locks a record,
//! deleting it releases the lock, and order-preserving batches implement
//! two-phase locking without deadlocks.
//!
//! Run with: `cargo run --release --example lock_manager`

use dlht::{DlhtSet, KvBackend, Request};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let set = DlhtSet::with_capacity(100_000);
    let locks: &dyn KvBackend = &set;
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let committed = &committed;
            let aborted = &aborted;
            s.spawn(move || {
                let mut seed = t + 1;
                let mut rng = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                for _ in 0..10_000 {
                    // A transaction touches 4 records; lock them in sorted
                    // order (two-phase locking).
                    let mut records: Vec<u64> = (0..4).map(|_| rng() % 1_000).collect();
                    records.sort_unstable();
                    records.dedup();

                    // Lock phase as a single order-preserving batch that stops
                    // at the first busy lock.
                    let lock_reqs: Vec<Request> =
                        records.iter().map(|&r| Request::Insert(r, t)).collect();
                    let resps = locks.execute_batch(&lock_reqs, true);
                    let all_locked = resps.iter().all(|r| r.succeeded());

                    if all_locked {
                        committed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                    // Release whatever was acquired (unlock phase).
                    let held: Vec<Request> = records
                        .iter()
                        .zip(resps.iter())
                        .filter(|(_, r)| r.succeeded())
                        .map(|(&r, _)| Request::Delete(r))
                        .collect();
                    if !held.is_empty() {
                        locks.execute_batch(&held, false);
                    }
                }
            });
        }
    });

    println!(
        "transactions committed = {}, aborted on lock conflict = {}",
        committed.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed)
    );
    assert!(
        locks.is_empty(),
        "every acquired lock must have been released"
    );
    println!("all locks released: table is empty");
}
