//! A database lock manager over the HashSet mode (§5.3.3), driven entirely
//! through the unified batch API: inserting a key locks a record, deleting it
//! releases the lock, and order-preserving batches implement two-phase
//! locking without deadlocks.
//!
//! Each worker reuses one [`Batch`] for its lock phase and one for its unlock
//! phase, so the steady-state transaction loop performs no heap allocations;
//! [`BatchPolicy::StopOnFailure`] expresses "stop at the first busy lock",
//! and skipped slots (never attempted) are handled explicitly.
//!
//! Run with: `cargo run --release --example lock_manager`

use dlht::{Batch, BatchPolicy, DlhtSet, KvBackend, Response};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let set = DlhtSet::with_capacity(100_000);
    let locks: &dyn KvBackend = &set;
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let committed = &committed;
            let aborted = &aborted;
            s.spawn(move || {
                let mut seed = t + 1;
                let mut rng = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                let mut lock_batch = Batch::with_capacity(4);
                let mut unlock_batch = Batch::with_capacity(4);
                for _ in 0..10_000 {
                    // A transaction touches 4 records; lock them in sorted
                    // order (two-phase locking).
                    let mut records: Vec<u64> = (0..4).map(|_| rng() % 1_000).collect();
                    records.sort_unstable();
                    records.dedup();

                    // Lock phase as a single order-preserving batch that stops
                    // at the first busy lock.
                    lock_batch.clear();
                    for &r in &records {
                        lock_batch.push_insert(r, t);
                    }
                    locks.execute(&mut lock_batch, BatchPolicy::StopOnFailure);

                    // Release exactly what was acquired: skipped slots were
                    // never attempted, failed slots were busy — neither holds
                    // a lock.
                    let mut all_locked = true;
                    unlock_batch.clear();
                    for (&r, resp) in records.iter().zip(lock_batch.responses()) {
                        match resp {
                            Response::Skipped => all_locked = false,
                            resp if resp.succeeded() => unlock_batch.push_delete(r),
                            _ => all_locked = false,
                        }
                    }
                    if all_locked {
                        committed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                    if !unlock_batch.is_empty() {
                        locks.execute(&mut unlock_batch, BatchPolicy::RunAll);
                    }
                }
            });
        }
    });

    println!(
        "transactions committed = {}, aborted on lock conflict = {}",
        committed.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed)
    );
    assert!(
        locks.is_empty(),
        "every acquired lock must have been released"
    );
    println!("all locks released: table is empty");
}
