//! Sharding: the `DlhtShards<K, V>` / `ShardedTable` front — N independent
//! DLHT shards, each resizing on its own, behind the same typed and
//! `KvBackend` surfaces as a single table.
//!
//! Run with: `cargo run --release --example sharded`

use dlht::{Batch, BatchPolicy, DlhtConfig, DlhtShards, Response, ShardedTable};

fn main() {
    // The typed facade: identical surface to Dlht<u64, u64>, plus a shard
    // count. Keys route by the high bits of their mixed hash, so a key's
    // shard never changes — resizes are per shard and never move keys
    // between shards.
    let map: DlhtShards<u64, u64> = DlhtShards::with_capacity(8, 100_000);
    println!("shards: {}", map.num_shards());

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = &map;
            s.spawn(move || {
                for k in (t..200_000).step_by(4) {
                    map.insert(&k, &(k * 10)).unwrap();
                }
            });
        }
    });
    println!("population: {} keys", map.len());
    assert_eq!(map.get(&123_456), Some(1_234_560));

    // Shards resize independently: the aggregated stats sum across shards,
    // while the per-shard view shows each shard's own generation/resizes.
    let agg = map.stats();
    println!(
        "aggregated: {} bins, {} occupied slots, {} resizes (max generation {})",
        agg.bins, agg.occupied_slots, agg.resizes, agg.generation
    );
    for (i, s) in map.shard_stats().iter().enumerate() {
        println!(
            "  shard {i}: {:>6} bins  {:>6} keys  {} resizes (generation {})",
            s.bins, s.occupied_slots, s.resizes, s.generation
        );
    }

    // The untyped ShardedTable implements the full KvBackend contract, so
    // batches split into per-shard runs while responses keep submission
    // order — and a bounded prefetch pipeline rides on the same session
    // machinery, with one cached registry slot per shard.
    let raw: &ShardedTable = map.raw();
    let mut batch = Batch::with_capacity(4);
    batch.push_get(0);
    batch.push_put(0, 7);
    batch.push_get(0);
    batch.push_delete(0);
    raw.execute(&mut batch, BatchPolicy::RunAll);
    assert_eq!(batch.responses()[2], Response::Value(Some(7)));

    let session = raw.session();
    let mut pipe = session.pipeline(16);
    let mut hits = 0usize;
    for k in 1..10_000u64 {
        if let Some(Response::Value(Some(_))) = pipe.submit(dlht::Request::Get(k)) {
            hits += 1;
        }
    }
    for r in pipe.drain() {
        if matches!(r, Response::Value(Some(_))) {
            hits += 1;
        }
    }
    println!("pipelined hits: {hits}");

    // A deliberately skewed table: only one shard takes inserts, and only
    // that shard grows — its siblings keep their small indexes untouched.
    let skewed = ShardedTable::with_config(4, DlhtConfig::new(64));
    let hot = skewed.shard_of(1);
    let mut k = 0u64;
    let mut routed = 0;
    while routed < 20_000 {
        if skewed.shard_of(k) == hot {
            let _ = skewed.insert(k, k).unwrap();
            routed += 1;
        }
        k += 1;
    }
    let resizes: Vec<u64> = skewed.shards().map(|s| s.resizes()).collect();
    println!("skewed load resizes per shard: {resizes:?} (only shard {hot} grew)");
    assert!(resizes[hot] > 0);

    println!("OK");
}
