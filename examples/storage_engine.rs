//! Allocator mode as a database storage engine's primary index (§3.1 use
//! case 2): the typed facade for everyday rows, plus the advanced
//! namespace/pointer API for zero-copy reads.
//!
//! Run with: `cargo run --release --example storage_engine`

use dlht::alloc::AllocatorKind;
use dlht::{Dlht, DlhtAllocMap, DlhtConfig};

const USERS: u16 = 1; // namespace for the "users" table
const ORDERS: u16 = 2; // namespace for the "orders" table

fn main() {
    // Everyday path: the typed facade routes String -> Vec<u8> rows to the
    // Allocator mode automatically (variable-size records, epoch-GC deletes).
    let rows: Dlht<String, Vec<u8>> = Dlht::with_capacity(100_000);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let rows = &rows;
            s.spawn(move || {
                for i in 0..2_500u64 {
                    let id = t * 10_000 + i;
                    let row = format!("user-{id}:name=alice,age=30").into_bytes();
                    rows.insert(&format!("user/{id}"), &row).unwrap();
                }
            });
        }
    });
    println!("typed rows indexed: {}", rows.len());
    let got = rows.get(&"user/10001".to_string()).expect("row must exist");
    println!("user/10001 row = {} bytes", got.len());

    // Advanced path: the raw Allocator-mode map with namespaces and the
    // pointer API (no value copy on reads).
    let index = DlhtAllocMap::new(
        DlhtConfig::for_capacity(100_000)
            .with_variable_size(true)
            .with_namespaces(true),
        AllocatorKind::Pool.build(),
        0,
        0,
    );

    // Each worker thread opens its own session (carries its epoch-GC handle).
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let index = &index;
            s.spawn(move || {
                let mut session = index.session();
                for i in 0..2_500u64 {
                    let id = t * 10_000 + i;
                    // Small row in "users", larger row in "orders"; same key
                    // bytes, different namespaces, no conflict.
                    let key = id.to_le_bytes();
                    let user_row = format!("user-{id}:name=alice,age=30");
                    let order_row = vec![id as u8; 256];
                    session.insert(USERS, &key, user_row.as_bytes()).unwrap();
                    session.insert(ORDERS, &key, &order_row).unwrap();
                    if i % 64 == 0 {
                        session.quiesce();
                    }
                }
            });
        }
    });
    println!("namespaced rows indexed: {}", index.len());

    // Point lookups with the pointer API (no value copy).
    let mut session = index.session();
    let key = 10_001u64.to_le_bytes();
    let name_len = session
        .get_with(USERS, &key, |row| row.len())
        .expect("user row must exist");
    let order_len = session
        .get_with(ORDERS, &key, |row| row.len())
        .expect("order row must exist");
    println!("user row = {name_len} bytes, order row = {order_len} bytes");

    // Deletes reclaim the index slot immediately; the record memory is freed
    // by the epoch GC after the next quiescent points.
    assert!(session.delete(ORDERS, &key));
    session.quiesce();
    println!(
        "after delete: order row present = {}",
        session.contains(ORDERS, &key)
    );
    println!("stats: {:?}", index.stats());
}
