//! Integration tests for the session-based submission API: reused `Batch`
//! aliasing (clear + refill), pipeline-vs-sequential equivalence across every
//! depth 1..=64, and policy semantics through the public facade.

use dlht::{Batch, BatchPolicy, DlhtMap, DlhtSet, KvBackend, Pipeline, Request, Response};

/// A deterministic mixed request stream over a small, collision-heavy key
/// space (hits, misses, duplicate inserts, deletes of absent keys).
fn request_stream(len: usize) -> Vec<Request> {
    let mut state = 0x5EED_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| {
            let k = rng() % 64;
            match rng() % 4 {
                0 => Request::Get(k),
                1 => Request::Insert(k, k + 1),
                2 => Request::Put(k, k + 2),
                _ => Request::Delete(k),
            }
        })
        .collect()
}

/// Execute `stream` one request at a time through the single-request API.
fn sequential_reference(stream: &[Request]) -> Vec<Response> {
    let map = DlhtMap::with_capacity(4_096);
    stream
        .iter()
        .map(|req| match *req {
            Request::Get(k) => Response::Value(map.get(k)),
            Request::Put(k, v) => Response::Updated(map.put(k, v)),
            Request::Insert(k, v) => Response::Inserted(map.insert(k, v)),
            Request::Delete(k) => Response::Deleted(map.delete(k)),
        })
        .collect()
}

#[test]
fn pipeline_matches_sequential_execution_at_every_depth() {
    let stream = request_stream(1_000);
    let expected = sequential_reference(&stream);
    for depth in 1..=64usize {
        let map = DlhtMap::with_capacity(4_096);
        let session = map.session();
        let mut pipe = session.pipeline(depth);
        let mut got = Vec::with_capacity(stream.len());
        for req in &stream {
            if let Some(r) = pipe.submit(*req) {
                got.push(r);
            }
        }
        pipe.drain_into(&mut got);
        assert_eq!(
            got, expected,
            "pipeline depth {depth} diverged from sequential execution"
        );
    }
}

#[test]
fn batched_execution_matches_sequential_execution() {
    let stream = request_stream(1_000);
    let expected = sequential_reference(&stream);
    for window in [1usize, 3, 16, 64, 1_000] {
        let map = DlhtMap::with_capacity(4_096);
        let mut batch = Batch::with_capacity(window);
        let mut got = Vec::with_capacity(stream.len());
        for chunk in stream.chunks(window) {
            batch.clear();
            batch.extend(chunk.iter().copied());
            map.execute(&mut batch, BatchPolicy::RunAll);
            got.extend_from_slice(batch.responses());
        }
        assert_eq!(got, expected, "batch window {window} diverged");
    }
}

#[test]
fn cleared_batch_refills_without_stale_state() {
    // Aliasing check: a batch reused across wildly different shapes must
    // never leak requests or responses from a previous round.
    let map = DlhtMap::with_capacity(1_024);
    let mut batch = Batch::new();

    batch.push_insert(1, 10);
    batch.push_insert(2, 20);
    batch.push_insert(3, 30);
    map.execute(&mut batch, BatchPolicy::RunAll);
    assert_eq!(batch.len(), 3);
    assert_eq!(batch.responses().len(), 3);

    // Smaller refill: lengths shrink, old slots are gone.
    batch.clear();
    batch.push_get(2);
    map.execute(&mut batch, BatchPolicy::RunAll);
    assert_eq!(batch.requests(), &[Request::Get(2)]);
    assert_eq!(batch.responses(), &[Response::Value(Some(20))]);

    // Executing the SAME batch again without clearing re-runs the same
    // requests and overwrites the responses (no accumulation).
    map.execute(&mut batch, BatchPolicy::RunAll);
    assert_eq!(batch.responses(), &[Response::Value(Some(20))]);

    // Larger refill after clear.
    batch.clear();
    for k in 0..10u64 {
        batch.push_get(k);
    }
    map.execute(&mut batch, BatchPolicy::RunAll);
    assert_eq!(batch.responses().len(), 10);
    assert_eq!(batch.responses()[1], Response::Value(Some(10)));
    assert_eq!(batch.responses()[5], Response::Value(None));
}

#[test]
fn stop_on_failure_policy_via_set_sessions() {
    // The lock-manager shape through the public API: a session per "thread",
    // StopOnFailure batches, skipped slots never execute.
    let set = DlhtSet::with_capacity(256);
    let session = set.session();
    let mut batch = Batch::with_capacity(3);
    batch.push_insert(1, 0);
    batch.push_insert(1, 0); // busy -> failure
    batch.push_insert(2, 0);
    session.execute(&mut batch, BatchPolicy::StopOnFailure);
    assert!(batch.responses()[0].succeeded());
    assert!(!batch.responses()[1].succeeded());
    assert!(batch.responses()[2].is_skipped());
    assert!(!set.contains(2), "skipped insert must not execute");
    assert!(set.contains(1));
}

#[test]
fn pipeline_over_trait_objects_works() {
    // &dyn KvBackend is itself a valid pipeline engine.
    let map = DlhtMap::with_capacity(256);
    let backend: &dyn KvBackend = &map;
    let mut pipe = Pipeline::new(backend, 4);
    let mut out = Vec::new();
    for k in 0..20u64 {
        if let Some(r) = pipe.submit(Request::Insert(k, k)) {
            out.push(r);
        }
    }
    pipe.drain_into(&mut out);
    assert_eq!(out.len(), 20);
    assert!(out.iter().all(|r| r.succeeded()));
    assert_eq!(map.len(), 20);
}

#[test]
fn one_shot_slice_wrapper_agrees_with_reusable_batch() {
    let stream = request_stream(200);
    let map_a = DlhtMap::with_capacity(1_024);
    let map_b = DlhtMap::with_capacity(1_024);
    let one_shot = map_a.execute_batch(&stream, BatchPolicy::RunAll);
    let mut batch: Batch = stream.iter().copied().collect();
    map_b.execute(&mut batch, BatchPolicy::RunAll);
    assert_eq!(one_shot.as_slice(), batch.responses());
}
