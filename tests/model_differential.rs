//! Model-differential testing: seeded random operation sequences replayed
//! against a `BTreeMap` oracle, across every DLHT mode, the sharded front at
//! 1/2/8 shards, and all nine baseline hashtables.
//!
//! The oracle is *response-driven*: after every operation the backend's
//! actual response is validated against the model (wrong previous value,
//! ghost key, lost update, wrong skip), and the model advances from what the
//! backend reported. Backend capabilities that legitimately differ — CLHT
//! has no pure Put, DRAMHiT's Put silently inserts, open-addressing designs
//! reject their sentinel keys — are probed up front, not hard-coded.
//!
//! The same sequences also replay **through the wire**: the `dlht-net`
//! loopback transport serves each backend behind the binary protocol
//! (singles, pipelined plain frames, and `BATCH` frames under all three
//! `BatchPolicy` values), so the oracle validates the encode → decode →
//! batch-execute → encode path too.
//!
//! `DLHT_STRESS=1` (or any positive integer) multiplies the seed count; the
//! CI stress step runs these suites that way.

use dlht::{
    BatchPolicy, DlhtConfig, DlhtMap, DlhtSet, InsertOutcome, KvBackend, Pipeline, RawTable,
    Request, Response, ShardedTable, SingleThreadMap,
};
use dlht_baselines::MapKind;
use dlht_util::splitmix64 as splitmix;
use std::collections::BTreeMap;

/// Seed multiplier from `DLHT_STRESS` (1 when unset/zero).
fn stress() -> u64 {
    std::env::var("DLHT_STRESS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .map(|v| v * 4)
        .unwrap_or(1)
}

/// The small key universe (maximizes collisions and slot reuse) plus the
/// special keys that exercise each design's reserved/sentinel handling.
const UNIVERSE: u64 = 96;
const SPECIAL_KEYS: [u64; 3] = [0, u64::MAX - 1, u64::MAX];

fn sample_key(rng: &mut u64) -> u64 {
    if splitmix(rng).is_multiple_of(20) {
        SPECIAL_KEYS[(splitmix(rng) % 3) as usize]
    } else {
        splitmix(rng) % UNIVERSE
    }
}

/// How a backend treats a pure Put of an absent key (probed, not assumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PutMode {
    /// Put updates existing keys only (DLHT, most baselines).
    Exact,
    /// The design has no pure Put; Put never takes effect (CLHT, the set).
    NoPut,
    /// Put is an upsert: an absent key is silently inserted (DRAMHiT).
    UpsertOnPut,
}

struct Caps {
    put: PutMode,
    /// Keys this backend rejects outright (DLHT's transfer keys, the
    /// open-addressing EMPTY/TOMBSTONE/LOCKED sentinels).
    rejected: Vec<u64>,
    /// Whether batches and pipeline flushes execute in submission order.
    /// DRAMHiT-like reorders every batch (and so cannot honor
    /// `StopOnFailure`) — the documented §5.3.3 behaviour.
    ordered: bool,
}

impl Caps {
    fn rejects(&self, k: u64) -> bool {
        self.rejected.contains(&k)
    }
}

/// Probe put semantics and rejected keys with keys far outside the test
/// universe, leaving the table empty again afterwards.
fn probe_caps(map: &dyn KvBackend) -> Caps {
    const P1: u64 = 1 << 51;
    const P2: u64 = (1 << 51) + 1;
    let put = {
        let _ = map.put(P1, 5);
        if map.get(P1).is_some() {
            let _ = map.delete(P1);
            PutMode::UpsertOnPut
        } else {
            let _ = map.insert(P2, 5);
            let r = map.put(P2, 6);
            let _ = map.delete(P2);
            if r.is_some() {
                PutMode::Exact
            } else {
                PutMode::NoPut
            }
        }
    };
    let mut rejected = Vec::new();
    for k in SPECIAL_KEYS {
        match map.insert(k, 123) {
            Err(_) => rejected.push(k),
            Ok(o) => {
                assert!(
                    o.inserted(),
                    "{}: probe key {k:#x} must be fresh",
                    map.name()
                );
                let _ = map.delete(k);
            }
        }
    }
    Caps {
        put,
        rejected,
        ordered: map.name() != "DRAMHiT-like",
    }
}

/// Validate one actual [`Response`] against the model and advance the model
/// accordingly. `ctx` names the backend/seed/step for failure messages.
fn check_response(
    model: &mut BTreeMap<u64, u64>,
    caps: &Caps,
    req: Request,
    resp: Response,
    ctx: &str,
) {
    match (req, resp) {
        (Request::Get(k), Response::Value(v)) => {
            assert_eq!(v, model.get(&k).copied(), "{ctx}: Get({k:#x})");
        }
        (Request::Insert(k, v), Response::Inserted(Ok(InsertOutcome::Inserted))) => {
            assert!(
                !model.contains_key(&k) && !caps.rejects(k),
                "{ctx}: Insert({k:#x}) succeeded but the model disagrees"
            );
            model.insert(k, v);
        }
        (Request::Insert(k, _), Response::Inserted(Ok(InsertOutcome::AlreadyExists(e)))) => {
            assert_eq!(
                Some(e),
                model.get(&k).copied(),
                "{ctx}: Insert({k:#x}) reported the wrong existing value"
            );
        }
        (Request::Insert(k, _), Response::Inserted(Err(_))) => {
            assert!(
                caps.rejects(k),
                "{ctx}: Insert({k:#x}) errored on a supported key"
            );
        }
        (Request::Put(k, v), Response::Updated(Some(prev))) => {
            assert_eq!(
                Some(prev),
                model.get(&k).copied(),
                "{ctx}: Put({k:#x}) reported the wrong previous value"
            );
            assert_ne!(caps.put, PutMode::NoPut, "{ctx}: NoPut design updated");
            model.insert(k, v);
        }
        (Request::Put(k, v), Response::Updated(None)) => {
            match caps.put {
                PutMode::Exact | PutMode::UpsertOnPut => assert!(
                    !model.contains_key(&k),
                    "{ctx}: Put({k:#x}) missed a present key"
                ),
                // A put-less design reports None unconditionally.
                PutMode::NoPut => {}
            }
            // DRAMHiT's upsert-only write inserts the missing key.
            if caps.put == PutMode::UpsertOnPut && !caps.rejects(k) {
                model.insert(k, v);
            }
        }
        (Request::Delete(k), Response::Deleted(Some(v))) => {
            assert_eq!(
                Some(v),
                model.remove(&k),
                "{ctx}: Delete({k:#x}) removed the wrong value"
            );
        }
        (Request::Delete(k), Response::Deleted(None)) => {
            assert!(
                !model.contains_key(&k),
                "{ctx}: Delete({k:#x}) missed a present key"
            );
        }
        (req, resp) => panic!("{ctx}: mismatched response {resp:?} for request {req:?}"),
    }
}

/// Validate `upsert`'s composite result.
fn check_upsert(
    model: &mut BTreeMap<u64, u64>,
    caps: &Caps,
    k: u64,
    v: u64,
    actual: Result<Option<u64>, dlht::DlhtError>,
    ctx: &str,
) {
    match actual {
        Ok(None) => {
            assert!(
                !model.contains_key(&k) && !caps.rejects(k),
                "{ctx}: upsert({k:#x}) inserted over the model's objection"
            );
            model.insert(k, v);
        }
        Ok(Some(prev)) => {
            assert_eq!(
                Some(prev),
                model.get(&k).copied(),
                "{ctx}: upsert({k:#x}) reported the wrong previous value"
            );
            if caps.put != PutMode::NoPut {
                model.insert(k, v);
            }
        }
        Err(_) => assert!(caps.rejects(k), "{ctx}: upsert({k:#x}) errored"),
    }
}

/// Build one random request.
fn random_request(rng: &mut u64) -> Request {
    random_request_on(sample_key(rng), rng)
}

fn random_request_on(k: u64, rng: &mut u64) -> Request {
    let v = splitmix(rng) % 1_000_000;
    match splitmix(rng) % 4 {
        0 => Request::Get(k),
        1 => Request::Put(k, v),
        2 => Request::Insert(k, v),
        _ => Request::Delete(k),
    }
}

/// Requests for one batch. For order-preserving engines any keys work; for
/// reordering engines (DRAMHiT-like) the keys are kept distinct within the
/// batch, so per-slot responses and the final state stay order-independent
/// and the model still applies.
fn batch_requests(rng: &mut u64, len: usize, caps: &Caps) -> Vec<Request> {
    if caps.ordered {
        return (0..len).map(|_| random_request(rng)).collect();
    }
    let mut keys: Vec<u64> = Vec::with_capacity(len);
    while keys.len() < len {
        let k = sample_key(rng);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys.into_iter()
        .map(|k| random_request_on(k, rng))
        .collect()
}

/// Replay `ops` random operations (singles + one-shot batches under every
/// policy) against `map`, validating every response against the model.
fn differential_run(map: &dyn KvBackend, seed: u64, ops: usize) {
    let caps = probe_caps(map);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = 0xD1FF ^ (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let name = map.name();
    for step in 0..ops {
        let ctx = format!("{name} seed {seed} step {step}");
        match splitmix(&mut rng) % 100 {
            // One-shot batches, cycling through the three policies.
            0..=9 => {
                let len = 2 + (splitmix(&mut rng) % 7) as usize;
                match splitmix(&mut rng) % 3 {
                    0 => {
                        let reqs = batch_requests(&mut rng, len, &caps);
                        let out = map.execute_batch(&reqs, BatchPolicy::RunAll);
                        assert_eq!(out.len(), reqs.len(), "{ctx}");
                        for (req, resp) in reqs.iter().zip(&out) {
                            check_response(&mut model, &caps, *req, *resp, &ctx);
                        }
                    }
                    1 => {
                        let reqs = batch_requests(&mut rng, len, &caps);
                        let out = map.execute_batch(&reqs, BatchPolicy::StopOnFailure);
                        let mut stopped = false;
                        for (i, (req, resp)) in reqs.iter().zip(&out).enumerate() {
                            if stopped {
                                assert_eq!(
                                    *resp,
                                    Response::Skipped,
                                    "{ctx}: slot {i} must be skipped"
                                );
                                continue;
                            }
                            check_response(&mut model, &caps, *req, *resp, &ctx);
                            // A reordering engine cannot honor StopOnFailure
                            // and executes the whole batch (§5.3.3).
                            if caps.ordered && !resp.succeeded() {
                                stopped = true;
                            }
                        }
                    }
                    _ => {
                        // Unordered executions may interleave shards/engines
                        // freely, so restrict the differential batch to Gets:
                        // responses must still land in submission slots.
                        let reqs: Vec<Request> = (0..len)
                            .map(|_| Request::Get(sample_key(&mut rng)))
                            .collect();
                        let out = map.execute_batch(&reqs, BatchPolicy::Unordered);
                        for (req, resp) in reqs.iter().zip(&out) {
                            check_response(&mut model, &caps, *req, *resp, &ctx);
                        }
                    }
                }
            }
            10..=19 => {
                let k = sample_key(&mut rng);
                let v = splitmix(&mut rng) % 1_000_000;
                let actual = map.upsert(k, v);
                check_upsert(&mut model, &caps, k, v, actual, &ctx);
            }
            _ => {
                let req = random_request(&mut rng);
                let resp = match req {
                    Request::Get(k) => Response::Value(map.get(k)),
                    Request::Put(k, v) => Response::Updated(map.put(k, v)),
                    Request::Insert(k, v) => Response::Inserted(map.insert(k, v)),
                    Request::Delete(k) => Response::Deleted(map.delete(k)),
                };
                check_response(&mut model, &caps, req, resp, &ctx);
            }
        }
    }
    // Final sweep: every universe key (and the specials) must agree.
    for k in (0..UNIVERSE).chain(SPECIAL_KEYS) {
        assert_eq!(
            map.get(k),
            model.get(&k).copied(),
            "{name} seed {seed}: final state diverged at key {k:#x}"
        );
    }
}

/// Every backend under differential test: all `MapKind`s (the nine baselines
/// plus the DLHT adapters and the sharded front) and the DLHT core modes on
/// deliberately tiny indexes so resizes fire mid-sequence.
fn all_backends() -> Vec<(String, Box<dyn KvBackend>)> {
    let tiny = || {
        DlhtConfig::new(8)
            .with_hash(dlht::hash::HashKind::WyHash)
            .with_chunk_bins(2)
    };
    let mut backends: Vec<(String, Box<dyn KvBackend>)> = Vec::new();
    for kind in MapKind::all() {
        backends.push((kind.name().to_string(), kind.build(4_096)));
    }
    backends.push((
        "DlhtMap/tiny".into(),
        Box::new(DlhtMap::with_config(tiny())),
    ));
    backends.push((
        "RawTable/tiny".into(),
        Box::new(RawTable::with_config(tiny())),
    ));
    backends.push((
        "DlhtSet/tiny".into(),
        Box::new(DlhtSet::with_config(tiny())),
    ));
    for shards in [1usize, 2, 8] {
        backends.push((
            format!("ShardedTable/{shards}/tiny"),
            Box::new(ShardedTable::with_config(shards, tiny())),
        ));
    }
    backends
}

#[test]
fn differential_singles_and_batches_all_backends() {
    let seeds = 6 * stress();
    for seed in 0..seeds {
        for (name, map) in all_backends() {
            let _ = &name;
            differential_run(map.as_ref(), seed, 300);
        }
    }
}

#[test]
fn differential_core_tables_pass_structural_sweep() {
    // The DLHT cores from `all_backends`, re-run with the concrete types in
    // hand so the full `check_invariants()` structural sweep (every index
    // generation, bin, link chain, and slot) can run at the quiescent end of
    // every seed — the tiny indexes guarantee the sequences crossed resizes.
    let tiny = DlhtConfig::new(8)
        .with_hash(dlht::hash::HashKind::WyHash)
        .with_chunk_bins(2);
    let seeds = 2 * stress();
    for seed in 0..seeds {
        let table = RawTable::with_config(tiny.clone());
        differential_run(&table, seed, 300);
        table.collect_retired();
        table
            .check_invariants()
            .expect("RawTable structural sweep after the differential run");
        for shards in [1usize, 2, 8] {
            let sharded = ShardedTable::with_config(shards, tiny.clone());
            differential_run(&sharded, seed, 300);
            sharded.collect_retired();
            sharded
                .check_invariants()
                .expect("ShardedTable structural sweep after the differential run");
        }
    }
}

#[test]
fn differential_loopback_wire_backends() {
    // The same oracle, but every backend is served **through the wire**: the
    // dlht-net loopback transport encodes every operation into frames, the
    // server-side Service decodes and executes them, and the response frames
    // decode back — so the whole protocol path (singles, one-shot batches
    // under all three BatchPolicy values, upserts, reserved keys) is
    // validated against the BTreeMap model. `name()` passes through, so the
    // capability probing treats each wrapped table like the bare one.
    let seeds = 2 * stress();
    for seed in 0..seeds {
        for (name, map) in all_backends() {
            let _ = &name;
            let wire = dlht_net::LoopbackBackend::new(std::sync::Arc::from(map));
            differential_run(&wire, seed, 250);
        }
    }
}

#[test]
fn differential_loopback_pipelined_singles() {
    // RunAll batches travel as pipelined plain frames (the server drains
    // them into one prefetched batch — wire pipelining ≙ batching); policies
    // needing the envelope still use BATCH frames. Same oracle either way.
    let seeds = stress();
    for seed in 0..seeds {
        for (name, map) in all_backends() {
            let _ = &name;
            let wire = dlht_net::LoopbackBackend::with_pipelined_singles(std::sync::Arc::from(map));
            differential_run(&wire, seed ^ 0x5151, 250);
        }
    }
}

#[test]
fn differential_pipeline_over_the_wire() {
    // The generic prefetch Pipeline driving a loopback-served backend: every
    // flush becomes a pipelined wire window. Depths beyond the flush chunk
    // exercise multi-frame drains.
    for depth in [1usize, 4, 16] {
        for (caps_probe_name, map) in all_backends() {
            let wire = dlht_net::LoopbackBackend::new(std::sync::Arc::from(map));
            let caps = probe_caps(&wire);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut rng = 0x00C0_FFEE ^ ((depth as u64) << 40);
            let mut submitted: Vec<Request> = Vec::new();
            let mut responses: Vec<Response> = Vec::new();
            {
                let mut pipe = Pipeline::new(&wire, depth);
                for step in 0..100u64 {
                    let req = if caps.ordered {
                        random_request(&mut rng)
                    } else {
                        random_request_on(step % UNIVERSE, &mut rng)
                    };
                    submitted.push(req);
                    if let Some(r) = pipe.submit(req) {
                        responses.push(r);
                    }
                }
                pipe.drain_into(&mut responses);
            }
            assert_eq!(responses.len(), submitted.len(), "{caps_probe_name}");
            for (step, (req, resp)) in submitted.iter().zip(&responses).enumerate() {
                let ctx = format!("{caps_probe_name} wire-pipeline depth {depth} step {step}");
                check_response(&mut model, &caps, *req, *resp, &ctx);
            }
            for k in (0..UNIVERSE).chain(SPECIAL_KEYS) {
                assert_eq!(
                    wire.get(k),
                    model.get(&k).copied(),
                    "{caps_probe_name} depth {depth}: final state diverged at key {k:#x}"
                );
            }
        }
    }
}

#[test]
fn differential_pipelines_depths_1_to_16() {
    let seeds = stress();
    for seed in 0..seeds {
        for depth in 1..=16usize {
            for (name, map) in all_backends() {
                let caps = probe_caps(map.as_ref());
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                let mut rng = 0x9199_u64 ^ seed ^ ((depth as u64) << 32);
                let mut submitted: Vec<Request> = Vec::new();
                let mut responses: Vec<Response> = Vec::new();
                {
                    let mut pipe = Pipeline::new(map.as_ref(), depth);
                    for step in 0..120u64 {
                        let req = if caps.ordered {
                            random_request(&mut rng)
                        } else {
                            // Reordering engines (DRAMHiT-like) shuffle each
                            // flush chunk; round-robin keys keep every chunk's
                            // keys distinct so responses stay well-defined.
                            random_request_on(step % UNIVERSE, &mut rng)
                        };
                        submitted.push(req);
                        if let Some(r) = pipe.submit(req) {
                            responses.push(r);
                        }
                    }
                    pipe.drain_into(&mut responses);
                }
                assert_eq!(
                    responses.len(),
                    submitted.len(),
                    "{name} depth {depth}: every submission must complete"
                );
                // A pipeline executes in submission order at every depth, so
                // the response stream must replay exactly like a serial run.
                for (step, (req, resp)) in submitted.iter().zip(&responses).enumerate() {
                    let ctx = format!("{name} seed {seed} depth {depth} step {step}");
                    check_response(&mut model, &caps, *req, *resp, &ctx);
                }
                for k in (0..UNIVERSE).chain(SPECIAL_KEYS) {
                    assert_eq!(
                        map.get(k),
                        model.get(&k).copied(),
                        "{name} depth {depth}: final state diverged at key {k:#x}"
                    );
                }
            }
        }
    }
}

#[test]
fn differential_single_thread_mode() {
    // The Single-thread mode has a `&mut self` API outside `KvBackend`;
    // replay the same sequences against it directly.
    let seeds = 8 * stress();
    for seed in 0..seeds {
        let mut map = SingleThreadMap::with_config(
            DlhtConfig::new(8)
                .with_hash(dlht::hash::HashKind::WyHash)
                .with_chunk_bins(2),
        );
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = 0x517 ^ (seed << 20);
        for step in 0..400 {
            let k = splitmix(&mut rng) % UNIVERSE;
            let v = splitmix(&mut rng) % 1_000_000;
            let ctx = format!("SingleThreadMap seed {seed} step {step}");
            match splitmix(&mut rng) % 4 {
                0 => {
                    let inserted = map.insert(k, v).unwrap().inserted();
                    assert_eq!(inserted, !model.contains_key(&k), "{ctx}");
                    if inserted {
                        model.insert(k, v);
                    }
                }
                1 => assert_eq!(map.delete(k), model.remove(&k), "{ctx}"),
                2 => assert_eq!(map.get(k), model.get(&k).copied(), "{ctx}"),
                _ => {
                    let prev = model.get(&k).copied();
                    assert_eq!(map.put(k, v), prev, "{ctx}");
                    if prev.is_some() {
                        model.insert(k, v);
                    }
                }
            }
        }
        assert_eq!(map.len(), model.len(), "seed {seed}");
        for (k, v) in &model {
            assert_eq!(map.get(*k), Some(*v), "seed {seed}");
        }
    }
}

#[test]
fn differential_typed_facades_inline_and_sharded() {
    use dlht::{Dlht, DlhtShards};
    let seeds = 4 * stress();
    for seed in 0..seeds {
        let single: Dlht<u64, u64> = Dlht::with_capacity(64);
        let sharded: [DlhtShards<u64, u64>; 3] = [
            DlhtShards::with_capacity(1, 64),
            DlhtShards::with_capacity(2, 64),
            DlhtShards::with_capacity(8, 64),
        ];
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = 0x7A9 ^ (seed << 16);
        for step in 0..300 {
            let k = splitmix(&mut rng) % UNIVERSE;
            let v = splitmix(&mut rng) % 1_000_000;
            let op = splitmix(&mut rng) % 5;
            let expect_prev = model.get(&k).copied();
            let ctx = |which: &str| format!("{which} seed {seed} step {step} key {k}");
            // Every facade must answer identically; the model advances once.
            match op {
                0 => {
                    let fresh = !model.contains_key(&k);
                    assert_eq!(single.insert(&k, &v).unwrap(), fresh, "{}", ctx("single"));
                    for (i, s) in sharded.iter().enumerate() {
                        assert_eq!(
                            s.insert(&k, &v).unwrap(),
                            fresh,
                            "{}",
                            ctx(&format!("shards[{i}]"))
                        );
                    }
                    if fresh {
                        model.insert(k, v);
                    }
                }
                1 => {
                    assert_eq!(single.get(&k), expect_prev, "{}", ctx("single"));
                    for (i, s) in sharded.iter().enumerate() {
                        assert_eq!(s.get(&k), expect_prev, "{}", ctx(&format!("shards[{i}]")));
                    }
                }
                2 => {
                    assert_eq!(
                        single.put(&k, &v).unwrap(),
                        expect_prev,
                        "{}",
                        ctx("single")
                    );
                    for (i, s) in sharded.iter().enumerate() {
                        assert_eq!(
                            s.put(&k, &v),
                            expect_prev,
                            "{}",
                            ctx(&format!("shards[{i}]"))
                        );
                    }
                    if expect_prev.is_some() {
                        model.insert(k, v);
                    }
                }
                3 => {
                    assert_eq!(
                        single.upsert(&k, &v).unwrap(),
                        expect_prev,
                        "{}",
                        ctx("single")
                    );
                    for (i, s) in sharded.iter().enumerate() {
                        assert_eq!(
                            s.upsert(&k, &v).unwrap(),
                            expect_prev,
                            "{}",
                            ctx(&format!("shards[{i}]"))
                        );
                    }
                    model.insert(k, v);
                }
                _ => {
                    assert_eq!(single.remove(&k), expect_prev, "{}", ctx("single"));
                    for (i, s) in sharded.iter().enumerate() {
                        assert_eq!(
                            s.remove(&k),
                            expect_prev,
                            "{}",
                            ctx(&format!("shards[{i}]"))
                        );
                    }
                    model.remove(&k);
                }
            }
        }
        assert_eq!(single.len(), model.len(), "seed {seed}");
        for s in &sharded {
            assert_eq!(
                s.len(),
                model.len(),
                "seed {seed} ({} shards)",
                s.num_shards()
            );
            for (k, v) in &model {
                assert_eq!(s.get(k), Some(*v), "seed {seed}");
            }
        }
    }
}

#[test]
fn differential_alloc_mode_facade() {
    use dlht::Dlht;
    // The Allocator mode (mixed inline/bytes pair) under the same random
    // sequences; `put` is delete+insert there, so it returns a Result.
    let seeds = 2 * stress();
    for seed in 0..seeds {
        let map: Dlht<u64, Vec<u8>> = Dlht::with_capacity(256);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rng = 0xA110C ^ (seed << 8);
        for step in 0..200 {
            let k = splitmix(&mut rng) % 48;
            let v = vec![(splitmix(&mut rng) % 251) as u8; 1 + (splitmix(&mut rng) % 24) as usize];
            let ctx = format!("alloc seed {seed} step {step} key {k}");
            match splitmix(&mut rng) % 5 {
                0 => {
                    let fresh = !model.contains_key(&k);
                    assert_eq!(map.insert(&k, &v).unwrap(), fresh, "{ctx}");
                    if fresh {
                        model.insert(k, v);
                    }
                }
                1 => assert_eq!(map.get(&k), model.get(&k).cloned(), "{ctx}"),
                2 => {
                    let prev = model.get(&k).cloned();
                    assert_eq!(map.put(&k, &v).unwrap(), prev, "{ctx}");
                    if prev.is_some() {
                        model.insert(k, v);
                    }
                }
                3 => {
                    let prev = model.get(&k).cloned();
                    assert_eq!(map.upsert(&k, &v).unwrap(), prev, "{ctx}");
                    model.insert(k, v);
                }
                _ => {
                    assert_eq!(map.remove(&k), model.remove(&k), "{ctx}");
                }
            }
        }
        assert_eq!(map.len(), model.len(), "seed {seed}");
    }
}
