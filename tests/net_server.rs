//! Event-loop server integration tests: the failure modes the
//! thread-per-connection server shipped with, pinned as regressions.
//!
//! * A client that pipelines requests and **never reads** must cost a
//!   bounded buffer, not a pinned server thread (the old server blocked
//!   forever in `write_all`).
//! * Hundreds of concurrent connections must all be served by the fixed
//!   worker pool, and `active` must return to exactly 0 on shutdown.
//! * A panicking connection handler must take down only its connection —
//!   accounting stays exact, other connections keep working.
//! * The admin plane must answer while the data plane is saturated.
//! * A response burst past the backpressure high-water mark must still be
//!   delivered in full once the client starts reading (read interest
//!   resumes on drain).

use dlht_core::{KvBackend, Request, Response, ShardedTable};
use dlht_net::{DlhtClient, DlhtServer, ServerConfig, WRITE_HIGH_WATER};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn full_run() -> bool {
    std::env::args().any(|a| a == "--full") || std::env::var_os("DLHT_FULL_TESTS").is_some()
}

fn bind(config: ServerConfig) -> (DlhtServer, Arc<ShardedTable>) {
    let table = Arc::new(ShardedTable::with_capacity(8, 1 << 17));
    let server = dlht_net::bind_ephemeral(table.clone(), config);
    (server, table)
}

/// Encode one GET frame for `key` by hand (tests that deliberately bypass
/// `DlhtClient`'s read path need raw bytes).
fn get_frame(key: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    dlht_net::wire::put_header(&mut out, dlht_net::wire::op::GET, 8);
    out.extend_from_slice(&key.to_le_bytes());
    out
}

/// Regression: a peer that sends pipelined requests and never reads its
/// responses used to pin a server thread forever inside `write_all`. The
/// event loop must instead park the connection under backpressure, keep
/// serving everyone else, and shut down promptly.
#[test]
fn non_reading_client_does_not_pin_the_server() {
    let (server, table) = bind(ServerConfig {
        workers: 1, // one worker: the dead client and the live one share it
        ..ServerConfig::default()
    });
    assert!(table.insert(1, 11).unwrap().inserted());

    // The hostile client: pipeline far more responses than the socket +
    // write ring absorb, and never read a byte.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    let frame = get_frame(1);
    // Enough GETs that the responses overflow WRITE_HIGH_WATER several
    // times over (each response is 17 bytes: header + tag + value).
    let frames_needed = (4 * WRITE_HIGH_WATER) / 17;
    let mut burst = Vec::with_capacity(frames_needed * frame.len());
    for _ in 0..frames_needed {
        burst.extend_from_slice(&frame);
    }
    hostile.set_nonblocking(true).unwrap();
    let mut sent = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    // Write until the server stops reading (our send would block for a
    // while) or we delivered the whole burst.
    while sent < burst.len() && Instant::now() < deadline {
        match hostile.write(&burst[sent..]) {
            Ok(n) => sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("hostile write failed: {e}"),
        }
    }
    assert!(sent > 0, "hostile client never got a byte out");

    // The same worker must still serve a well-behaved client promptly.
    let mut polite = DlhtClient::connect(server.local_addr()).unwrap();
    let t = Instant::now();
    for _ in 0..50 {
        assert_eq!(polite.get(1).unwrap(), Some(11));
    }
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "live client starved behind a non-reading one: {:?}",
        t.elapsed()
    );

    // The parked connection holds a bounded buffer, not unbounded memory:
    // the write ring stops growing at the high-water mark (plus one pass
    // of overshoot).
    let buffered = server.buffer_bytes();
    assert!(
        buffered <= 4 * WRITE_HIGH_WATER as u64,
        "write buffering must be bounded, got {buffered} bytes"
    );

    // And shutdown stays bounded with the hostile connection still open.
    let t = Instant::now();
    let counters = server.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "shutdown blocked on a non-reading client: {:?}",
        t.elapsed()
    );
    assert_eq!(counters.active, 0);
    drop(hostile);
}

/// Scale test: hundreds of concurrent connections (1024 with `--full` /
/// `DLHT_FULL_TESTS`), each pipelining GETs, all served by a 2-worker
/// pool; every response arrives and `active` returns to exactly 0.
#[test]
fn many_concurrent_connections_all_get_answers() {
    let conns: usize = if full_run() { 1024 } else { 256 };
    let (server, table) = bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    for k in 0..64u64 {
        assert!(table.insert(k, k * 7).unwrap().inserted());
    }
    let addr = server.local_addr();

    // Phase 1: open all connections before anyone speaks, so the peak
    // concurrent count really is `conns`.
    let clients: Vec<DlhtClient<TcpStream>> = (0..conns)
        .map(|i| DlhtClient::connect(addr).unwrap_or_else(|e| panic!("connect #{i} failed: {e}")))
        .collect();
    // Phase 2: drive them from a handful of threads (the point is server
    // concurrency, not client thread count).
    let driver_count = 8;
    let mut drivers = Vec::new();
    let clients = Arc::new(std::sync::Mutex::new(clients));
    for d in 0..driver_count {
        let clients = clients.clone();
        drivers.push(std::thread::spawn(move || {
            loop {
                let Some(mut client) = clients.lock().unwrap().pop() else {
                    return;
                };
                let reqs: Vec<Request> = (0..64u64).map(|k| Request::Get((k + d) % 64)).collect();
                let resps = client.pipelined(&reqs).expect("pipelined GETs");
                assert_eq!(resps.len(), 64);
                for (r, req) in resps.iter().zip(&reqs) {
                    let Request::Get(k) = req else { unreachable!() };
                    assert_eq!(*r, Response::Value(Some(k * 7)));
                }
                // client drops here -> connection closes
            }
        }));
    }
    for d in drivers {
        d.join().expect("driver panicked");
    }

    // All connections closed; active must drain to 0 (drop guards).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if server.counters().active == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "active connections never drained"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let counters = server.shutdown();
    assert_eq!(counters.connections, conns as u64);
    assert_eq!(counters.active, 0);
    assert_eq!(counters.protocol_errors, 0);
    assert_eq!(counters.panics, 0);
}

/// Regression: a panic inside a connection handler used to leak the
/// accounting (`active` never decremented). With the drop guard +
/// unwind-catch, the faulting connection dies alone, `panics` counts it,
/// and other connections — including ones on the same worker — continue.
#[test]
fn panicking_connection_is_isolated_and_accounted() {
    const FAULT_KEY: u64 = 0xDEAD_BEEF;
    let (server, table) = bind(ServerConfig {
        workers: 1, // same worker must survive its neighbor's panic
        fault_key: Some(FAULT_KEY),
        ..ServerConfig::default()
    });
    assert!(table.insert(3, 33).unwrap().inserted());

    let mut bystander = DlhtClient::connect(server.local_addr()).unwrap();
    assert_eq!(bystander.get(3).unwrap(), Some(33));

    // The victim trips the injected fault; its connection must just die.
    let mut victim = TcpStream::connect(server.local_addr()).unwrap();
    victim.write_all(&get_frame(FAULT_KEY)).unwrap();
    let mut buf = Vec::new();
    let n = victim.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "faulted connection must close without a response");

    // Bystander on the same worker is unaffected.
    assert_eq!(bystander.get(3).unwrap(), Some(33));

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.counters().active != 1 {
        assert!(
            Instant::now() < deadline,
            "victim's drop guard never ran: counters {:?}",
            server.counters()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let counters = server.shutdown();
    assert_eq!(counters.panics, 1, "the injected panic must be counted");
    assert_eq!(counters.active, 0, "drop guards must zero the gauge");
    assert_eq!(counters.connections, 2);
}

/// The admin plane answers `STATS`/`LEN`/`PING` while every data worker is
/// saturated with pipelined traffic.
#[test]
fn admin_plane_answers_while_data_plane_is_saturated() {
    let (server, table) = bind(ServerConfig {
        workers: 2,
        admin_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    });
    for k in 0..256u64 {
        assert!(table.insert(k, k).unwrap().inserted());
    }
    let addr = server.local_addr();
    let admin_addr = server.admin_addr().expect("admin plane");

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut hammers = Vec::new();
    for _ in 0..4 {
        let stop = stop.clone();
        hammers.push(std::thread::spawn(move || {
            let mut client = DlhtClient::connect(addr).unwrap();
            let reqs: Vec<Request> = (0..256u64).map(Request::Get).collect();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let resps = client.pipelined(&reqs).expect("hammer pipeline");
                assert_eq!(resps.len(), 256);
            }
        }));
    }

    // While the hammering runs, the admin plane must answer promptly.
    let mut admin = DlhtClient::connect(admin_addr).unwrap();
    for _ in 0..20 {
        let t = Instant::now();
        admin.ping().unwrap();
        assert_eq!(admin.server_len().unwrap(), 256);
        let stats = admin.stats().unwrap();
        assert!(stats.table.occupied_slots > 0);
        assert!(
            t.elapsed() < Duration::from_secs(1),
            "admin round-trip took {:?} under data-plane load",
            t.elapsed()
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in hammers {
        h.join().expect("hammer panicked");
    }
    let counters = server.shutdown();
    assert!(counters.admin_frames >= 60);
    assert_eq!(counters.protocol_errors, 0);
}

/// Backpressure release: pipeline a burst whose responses blow well past
/// the write high-water mark while reading slowly — every response must
/// still arrive (read interest resumes when the ring drains) and the
/// buffers must shrink back afterwards.
#[test]
fn backpressure_pauses_and_resumes_without_losing_responses() {
    let (server, table) = bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    assert!(table.insert(42, 4242).unwrap().inserted());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    // ~50k GETs -> ~850 KB of responses, > 3x WRITE_HIGH_WATER.
    let count: usize = 50_000;
    let frame = get_frame(42);
    let writer = {
        let mut tx = stream.try_clone().unwrap();
        let frame = frame.clone();
        std::thread::spawn(move || {
            for _ in 0..count {
                tx.write_all(&frame).expect("burst write");
            }
            tx.flush().unwrap();
        })
    };

    // Read every response, deliberately slowly at first to let the server
    // hit the high-water mark.
    let resp_len = 17; // header(8) + tag(1) + value(8)
    let mut expected = vec![0u8; resp_len];
    {
        let mut prototype = Vec::new();
        dlht_net::wire::encode_response(&mut prototype, Response::Value(Some(4242)));
        expected.copy_from_slice(&prototype);
    }
    let mut got = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    let mut pending: Vec<u8> = Vec::new();
    let t = Instant::now();
    while got < count {
        if got < count / 10 {
            // Slow phase: trickle-read so the server's ring really fills.
            std::thread::sleep(Duration::from_millis(1));
        }
        let n = stream.read(&mut buf).expect("read responses");
        assert!(n > 0, "server closed early at {got}/{count} responses");
        pending.extend_from_slice(&buf[..n]);
        while pending.len() >= resp_len {
            assert_eq!(&pending[..resp_len], &expected[..], "response #{got}");
            pending.drain(..resp_len);
            got += 1;
        }
        assert!(
            t.elapsed() < Duration::from_secs(60),
            "stalled at {got}/{count} responses"
        );
    }
    writer.join().expect("writer panicked");
    assert_eq!(got, count);

    // Once drained, per-connection memory must fall back to flat: the
    // rings shrink to their retained capacity.
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let bytes = server.buffer_bytes();
        if bytes <= 2 * dlht_net::ByteRing::SHRINK_CAPACITY as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "buffers never shrank after drain: {bytes} bytes"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let counters = server.shutdown();
    assert_eq!(counters.protocol_errors, 0);
    assert_eq!(counters.active, 0);
}
