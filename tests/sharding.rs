//! Shard-routing suite: routing stability across resizes, 1-shard
//! equivalence with `RawTable`, and cross-shard batch splitting under every
//! `BatchPolicy` (including `Response::Skipped` slots).

use dlht::{Batch, BatchPolicy, DlhtConfig, KvBackend, RawTable, Request, Response, ShardedTable};
use dlht_util::splitmix64 as splitmix;

fn tiny() -> DlhtConfig {
    DlhtConfig::new(16)
        .with_hash(dlht::hash::HashKind::WyHash)
        .with_chunk_bins(2)
}

#[test]
fn shard_assignment_is_stable_across_resizes() {
    let table = ShardedTable::with_config(8, tiny());
    // Record the routing of a key population before any resize...
    let before: Vec<usize> = (0..1_000u64).map(|k| table.shard_of(k)).collect();
    for k in 0..1_000u64 {
        assert!(table.insert(k, k * 7).unwrap().inserted());
    }
    // ...force several generations of growth...
    for k in 10_000..30_000u64 {
        let _ = table.insert(k, k).unwrap();
    }
    assert!(table.resizes() > 0, "growth must have happened");
    // ...and the assignment (and every key) must be unchanged.
    for (k, &s) in before.iter().enumerate() {
        let k = k as u64;
        assert_eq!(table.shard_of(k), s, "key {k} moved shards across a resize");
        assert_eq!(table.get(k), Some(k * 7), "key {k} lost across resizes");
        // The key is physically findable on its assigned shard and absent
        // from every other shard.
        for (i, shard) in table.shards().enumerate() {
            let expect = (i == s).then_some(k * 7);
            assert_eq!(shard.get(k), expect, "key {k} visible on shard {i}");
        }
    }
}

/// Drive the same seeded operation sequence (singles + batches under every
/// policy) through two backends and assert identical observable behaviour.
fn assert_behaviorally_identical(a: &dyn KvBackend, b: &dyn KvBackend, seed: u64, ops: usize) {
    let mut rng = 0x1DE ^ (seed << 24);
    for step in 0..ops {
        let dice = splitmix(&mut rng) % 100;
        let k = splitmix(&mut rng) % 64;
        let v = splitmix(&mut rng) % 1_000_000;
        let ctx = format!("seed {seed} step {step}");
        if dice < 80 {
            match dice % 4 {
                0 => assert_eq!(a.get(k), b.get(k), "{ctx}"),
                1 => assert_eq!(a.insert(k, v), b.insert(k, v), "{ctx}"),
                2 => assert_eq!(a.put(k, v), b.put(k, v), "{ctx}"),
                _ => assert_eq!(a.delete(k), b.delete(k), "{ctx}"),
            }
        } else {
            let len = 2 + (splitmix(&mut rng) % 6) as usize;
            let reqs: Vec<Request> = (0..len)
                .map(|_| {
                    let k = splitmix(&mut rng) % 64;
                    let v = splitmix(&mut rng) % 1_000_000;
                    match splitmix(&mut rng) % 4 {
                        0 => Request::Get(k),
                        1 => Request::Put(k, v),
                        2 => Request::Insert(k, v),
                        _ => Request::Delete(k),
                    }
                })
                .collect();
            let policy = match splitmix(&mut rng) % 3 {
                0 => BatchPolicy::RunAll,
                1 => BatchPolicy::StopOnFailure,
                _ => BatchPolicy::Unordered,
            };
            assert_eq!(
                a.execute_batch(&reqs, policy),
                b.execute_batch(&reqs, policy),
                "{ctx} ({policy:?})"
            );
        }
    }
    assert_eq!(a.len(), b.len(), "seed {seed}: diverged in population");
    for k in 0..64u64 {
        assert_eq!(a.get(k), b.get(k), "seed {seed}: final key {k}");
    }
}

#[test]
fn one_shard_is_behaviorally_identical_to_raw_table() {
    for seed in 0..8u64 {
        // Same config on both sides: a 1-shard table is the same index with
        // the routing layer collapsed to shard 0.
        let sharded = ShardedTable::with_config(1, tiny());
        let raw = RawTable::with_config(tiny());
        assert_eq!(sharded.num_shards(), 1);
        assert_behaviorally_identical(&sharded, &raw, seed, 400);
        // Identical op sequences on identical configs resize identically.
        assert_eq!(sharded.resizes(), raw.resizes(), "seed {seed}");
        assert_eq!(sharded.stats().bins, raw.stats().bins, "seed {seed}");
        assert_eq!(
            sharded.stats().occupied_slots,
            raw.stats().occupied_slots,
            "seed {seed}"
        );
    }
}

/// A request mix that demonstrably crosses shards: a fresh key per shard of
/// an 8-shard table, interleaved so consecutive requests route differently.
fn cross_shard_keys(table: &ShardedTable, n: usize) -> Vec<u64> {
    let mut keys = Vec::new();
    let mut k = 0u64;
    let mut last_shard = usize::MAX;
    while keys.len() < n {
        let s = table.shard_of(k);
        if s != last_shard {
            keys.push(k);
            last_shard = s;
        }
        k += 1;
    }
    keys
}

#[test]
fn cross_shard_batches_keep_submission_slot_order_under_every_policy() {
    for shards in [2usize, 4, 8] {
        let table = ShardedTable::with_config(shards, DlhtConfig::new(64));
        let keys = cross_shard_keys(&table, 6);
        // Sanity: the batch genuinely spans more than one shard.
        let touched: std::collections::BTreeSet<usize> =
            keys.iter().map(|&k| table.shard_of(k)).collect();
        assert!(
            touched.len() > 1,
            "{shards} shards: batch must cross shards"
        );

        // RunAll: insert -> get -> put -> get -> delete -> get per key,
        // interleaved across keys so consecutive requests hop shards.
        let mut batch = Batch::new();
        for &k in &keys {
            batch.push_insert(k, k + 1);
        }
        for &k in &keys {
            batch.push_get(k);
        }
        for &k in &keys {
            batch.push_put(k, k + 2);
        }
        for &k in &keys {
            batch.push_delete(k);
        }
        table.execute(&mut batch, BatchPolicy::RunAll);
        let n = keys.len();
        for (i, &k) in keys.iter().enumerate() {
            assert!(
                matches!(batch.responses()[i], Response::Inserted(Ok(o)) if o.inserted()),
                "{shards} shards: insert slot {i}"
            );
            assert_eq!(batch.responses()[n + i], Response::Value(Some(k + 1)));
            assert_eq!(batch.responses()[2 * n + i], Response::Updated(Some(k + 1)));
            assert_eq!(batch.responses()[3 * n + i], Response::Deleted(Some(k + 2)));
        }

        // Unordered: cross-shard reordering is allowed, but responses land
        // in submission slots and within-shard order holds (the insert at a
        // lower slot is visible to the same key's get at a higher slot).
        let mut batch = Batch::new();
        for &k in &keys {
            batch.push_insert(k, k * 10);
            batch.push_get(k);
        }
        table.execute(&mut batch, BatchPolicy::Unordered);
        for (i, &k) in keys.iter().enumerate() {
            assert!(
                matches!(batch.responses()[2 * i], Response::Inserted(Ok(o)) if o.inserted()),
                "{shards} shards: unordered insert slot {}",
                2 * i
            );
            assert_eq!(
                batch.responses()[2 * i + 1],
                Response::Value(Some(k * 10)),
                "{shards} shards: within-shard order broke at key {k}"
            );
        }
        for &k in &keys {
            assert_eq!(table.delete(k), Some(k * 10));
        }

        // StopOnFailure: a failure on one shard must skip later requests on
        // *other* shards too, and skipped requests must have no effect.
        assert!(table.insert(keys[0], 5).unwrap().inserted());
        let reqs = vec![
            Request::Get(keys[0]),       // hit
            Request::Insert(keys[0], 9), // duplicate -> failure
            Request::Insert(keys[1], 9), // other shard -> must be skipped
            Request::Get(keys[2]),       // third shard -> must be skipped
        ];
        let out = table.execute_batch(&reqs, BatchPolicy::StopOnFailure);
        assert_eq!(out[0], Response::Value(Some(5)));
        assert!(!out[1].succeeded());
        assert!(!out[1].is_skipped(), "the failing request itself executed");
        assert_eq!(out[2], Response::Skipped);
        assert_eq!(out[3], Response::Skipped);
        assert_eq!(
            table.get(keys[1]),
            None,
            "{shards} shards: a skipped insert must not reach its shard"
        );
        assert_eq!(table.delete(keys[0]), Some(5));
    }
}

#[test]
fn sharded_session_pipeline_matches_serial_execution() {
    let table = ShardedTable::with_config(4, tiny());
    let serial = ShardedTable::with_config(4, tiny());
    let session = table.session();
    for depth in [1usize, 2, 7, 16] {
        let mut rng = 0xBEEF ^ (depth as u64);
        let mut submitted = Vec::new();
        let mut piped = Vec::new();
        {
            let mut pipe = session.pipeline(depth);
            for _ in 0..200 {
                let k = splitmix(&mut rng) % 48;
                let v = splitmix(&mut rng) % 1_000;
                let req = match splitmix(&mut rng) % 4 {
                    0 => Request::Get(k),
                    1 => Request::Put(k, v),
                    2 => Request::Insert(k, v),
                    _ => Request::Delete(k),
                };
                submitted.push(req);
                if let Some(r) = pipe.submit(req) {
                    piped.push(r);
                }
            }
            pipe.drain_into(&mut piped);
        }
        // The pipeline must behave exactly like serial execution of the same
        // stream on an identical table.
        let serial_out = serial.execute_batch(&submitted, BatchPolicy::RunAll);
        assert_eq!(piped, serial_out, "depth {depth}");
        // Keep the tables in lockstep for the next depth.
        for k in 0..48u64 {
            assert_eq!(table.get(k), serial.get(k), "depth {depth} key {k}");
        }
    }
}

#[test]
fn routing_distributes_and_respects_power_of_two() {
    for shards in [2usize, 4, 8, 16] {
        let table = ShardedTable::with_capacity(shards, 1 << 12);
        let mut counts = vec![0usize; shards];
        for k in 0..4_096u64 {
            counts[table.shard_of(k)] += 1;
        }
        let expect = 4_096 / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 4 && c < expect * 4,
                "{shards} shards: shard {i} got {c}/{expect} keys — routing is lopsided"
            );
        }
    }
    // Non-power-of-two requests round up.
    assert_eq!(ShardedTable::with_capacity(5, 64).num_shards(), 8);
    assert_eq!(ShardedTable::with_capacity(9, 64).num_shards(), 16);
}
