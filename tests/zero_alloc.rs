//! Steady-state allocation accounting for the submission API: once a
//! reusable [`Batch`] (or [`Pipeline`]) is warm, re-executing it must not
//! touch the heap at all. Verified with a counting global allocator, which is
//! why this lives in its own integration-test binary.

use dlht::{Batch, BatchPolicy, DlhtMap, Request, Response};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to the system allocator unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: forwards to the system allocator `ptr` came from.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds the GlobalAlloc contract for `ptr`/`layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: forwards to the system allocator `ptr` came from.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the GlobalAlloc contract for the arguments.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_batch_reexecution_allocates_nothing() {
    // Ample capacity: the InsDel pattern below never triggers a resize, and
    // the link-bucket pool is preallocated with the index.
    let map = DlhtMap::with_capacity(100_000);
    for k in 0..10_000u64 {
        let _ = map.insert(k, k).unwrap();
    }

    let mut batch = Batch::with_capacity(64);
    let fill = |batch: &mut Batch, round: u64| {
        batch.clear();
        for i in 0..16u64 {
            let k = (round * 16 + i) % 10_000;
            batch.push_get(k);
            batch.push_put(k, k + 1);
        }
        // Fresh insert + delete of the same key (the paper's InsDel shape).
        let fresh = 1_000_000 + round;
        batch.push_insert(fresh, fresh);
        batch.push_delete(fresh);
    };

    // Warm-up: claims the registry slot, grows the response vector once.
    for round in 0..4u64 {
        fill(&mut batch, round);
        map.execute(&mut batch, BatchPolicy::RunAll);
    }

    let before = allocations();
    for round in 0..100u64 {
        fill(&mut batch, round);
        map.execute(&mut batch, BatchPolicy::RunAll);
        assert_eq!(batch.responses().len(), 34);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state Batch re-execution must perform zero heap allocations"
    );
}

#[test]
fn warm_pipeline_submission_allocates_nothing() {
    let map = DlhtMap::with_capacity(100_000);
    for k in 0..10_000u64 {
        let _ = map.insert(k, k).unwrap();
    }
    let session = map.session();
    let mut pipe = session.pipeline(16);

    // Warm-up: fills the ring buffers and the scratch batch.
    for k in 0..200u64 {
        std::hint::black_box(pipe.submit(Request::Get(k % 10_000)));
    }

    let before = allocations();
    let mut hits = 0u64;
    for k in 0..10_000u64 {
        if let Some(Response::Value(Some(_))) = pipe.submit(Request::Get(k % 10_000)) {
            hits += 1;
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state pipeline submission must perform zero heap allocations"
    );
    assert!(hits > 0);
}
