//! Cross-crate integration tests: concurrent correctness of the public API
//! under mixed workloads, resizes, and batching.

use dlht::hash::HashKind;
use dlht::{Batch, BatchPolicy, DlhtConfig, DlhtMap, Pipeline, Request, Response};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn mixed_readers_writers_and_resizes_preserve_disjoint_key_ranges() {
    let map = DlhtMap::with_config(
        DlhtConfig::new(32)
            .with_hash(HashKind::WyHash)
            .with_chunk_bins(8),
    );
    // Stable range owned by the main thread.
    for k in 0..1_000u64 {
        let _ = map.insert(k, k + 1).unwrap();
    }

    std::thread::scope(|s| {
        // Writers on disjoint ranges drive repeated growth.
        for t in 0..3u64 {
            let map = &map;
            s.spawn(move || {
                let base = 100_000 + t * 100_000;
                for k in 0..4_000u64 {
                    assert!(map.insert(base + k, k).unwrap().inserted());
                }
                for k in 0..2_000u64 {
                    assert_eq!(map.delete(base + k), Some(k));
                }
            });
        }
        // Readers continuously validate the stable range.
        for _ in 0..2 {
            let map = &map;
            s.spawn(move || {
                for _ in 0..2_000 {
                    for k in [0u64, 1, 500, 999] {
                        assert_eq!(map.get(k), Some(k + 1));
                    }
                }
            });
        }
    });

    assert!(map.resizes() > 0, "the tiny initial index must have grown");
    // Final contents: stable range + the undeleted halves of each writer range.
    assert_eq!(map.len(), 1_000 + 3 * 2_000);
    for k in 0..1_000u64 {
        assert_eq!(map.get(k), Some(k + 1));
    }
}

#[test]
fn puts_never_resurrect_or_corrupt_under_delete_races() {
    let map = DlhtMap::with_capacity(10_000);
    for k in 0..100u64 {
        let _ = map.insert(k, 1_000_000 + k).unwrap();
    }
    let updates = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Updaters put new values on the shared keys.
        for t in 0..2u64 {
            let map = &map;
            let updates = &updates;
            s.spawn(move || {
                for round in 0..5_000u64 {
                    let k = round % 100;
                    if map.put(k, t * 10_000_000 + round).is_some() {
                        updates.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A deleter/reinserter churns the same keys.
        {
            let map = &map;
            s.spawn(move || {
                for round in 0..2_000u64 {
                    let k = round % 100;
                    map.delete(k);
                    let _ = map.insert(k, 1_000_000 + k).unwrap();
                }
            });
        }
    });
    assert!(updates.load(Ordering::Relaxed) > 0);
    // Every key must still resolve to one of the values some writer wrote.
    for k in 0..100u64 {
        if let Some(v) = map.get(k) {
            let plausible = v == 1_000_000 + k
                || (10_000_000..20_000_000).contains(&v)
                || v < 10_000
                || (20_000_000..30_000_000).contains(&v);
            assert!(plausible, "key {k} has implausible value {v}");
        }
    }
}

#[test]
fn batches_interleaved_with_singles_agree() {
    let map = DlhtMap::with_capacity(50_000);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = &map;
            s.spawn(move || {
                let base = t * 1_000_000;
                let reqs: Vec<Request> = (0..500).map(|i| Request::Insert(base + i, i)).collect();
                let resps = map.execute_batch(&reqs, BatchPolicy::RunAll);
                assert!(resps.iter().all(|r| r.succeeded()));
                // Read them back through the single-request path.
                for i in 0..500u64 {
                    assert_eq!(map.get(base + i), Some(i));
                }
            });
        }
    });
    assert_eq!(map.len(), 2_000);
    // And via a batch of gets.
    let gets: Vec<Request> = (0..500).map(Request::Get).collect();
    let out = map.execute_batch(&gets, BatchPolicy::RunAll);
    for (i, r) in out.iter().enumerate() {
        assert_eq!(*r, Response::Value(Some(i as u64)));
    }
}

#[test]
fn reused_batches_race_deletes_and_resizes_with_order_preserved() {
    // Batches of writes over a tiny growing index, racing deleters and a
    // resize storm: every thread's responses must arrive in submission order
    // with the per-thread invariants intact (slot i of the batch answers
    // request i). Each worker owns a disjoint key range so the expected
    // values are exact even under heavy interleaving.
    let map = DlhtMap::with_config(
        DlhtConfig::new(16)
            .with_hash(HashKind::WyHash)
            .with_chunk_bins(4),
    );
    std::thread::scope(|s| {
        // Batch workers: insert -> get -> put -> get -> delete -> get per key,
        // all through one reused Batch per thread.
        for t in 0..3u64 {
            let map = &map;
            s.spawn(move || {
                let base = 10_000_000 * (t + 1);
                let mut batch = Batch::with_capacity(24);
                for round in 0..400u64 {
                    batch.clear();
                    for i in 0..4u64 {
                        let k = base + round * 4 + i;
                        batch.push_insert(k, k);
                        batch.push_get(k);
                        batch.push_put(k, k + 1);
                        batch.push_get(k);
                        batch.push_delete(k);
                        batch.push_get(k);
                    }
                    map.execute(&mut batch, BatchPolicy::RunAll);
                    let resps = batch.responses();
                    assert_eq!(resps.len(), 24);
                    for i in 0..4usize {
                        let k = base + round * 4 + i as u64;
                        let r = &resps[i * 6..i * 6 + 6];
                        assert!(matches!(r[0], Response::Inserted(Ok(o)) if o.inserted()));
                        assert_eq!(r[1], Response::Value(Some(k)), "slot order broken");
                        assert_eq!(r[2], Response::Updated(Some(k)));
                        assert_eq!(r[3], Response::Value(Some(k + 1)));
                        assert_eq!(r[4], Response::Deleted(Some(k + 1)));
                        assert_eq!(r[5], Response::Value(None));
                    }
                }
            });
        }
        // A pipeline worker doing the same dance through submit/drain.
        {
            let map = &map;
            s.spawn(move || {
                let base = 50_000_000u64;
                let mut pipe = Pipeline::new(map, 12);
                let mut got = Vec::new();
                for k in base..base + 1_000 {
                    for req in [Request::Insert(k, k), Request::Get(k), Request::Delete(k)] {
                        if let Some(r) = pipe.submit(req) {
                            got.push(r);
                        }
                    }
                }
                pipe.drain_into(&mut got);
                assert_eq!(got.len(), 3_000);
                for (i, chunk) in got.chunks(3).enumerate() {
                    let k = base + i as u64;
                    assert_eq!(chunk[1], Response::Value(Some(k)), "pipeline order broken");
                    assert_eq!(chunk[2], Response::Deleted(Some(k)));
                }
            });
        }
        // Resize drivers: grow the shared range so the index migrates under
        // the batches.
        for t in 0..2u64 {
            let map = &map;
            s.spawn(move || {
                let base = 1_000_000 * (t + 1);
                for k in 0..3_000u64 {
                    assert!(map.insert(base + k, k).unwrap().inserted());
                }
            });
        }
    });
    assert!(map.resizes() > 0, "the tiny index must have resized");
    assert_eq!(map.len(), 2 * 3_000, "only the resize drivers' keys remain");
}

#[test]
fn shadow_inserts_act_as_record_locks_across_threads() {
    let map = DlhtMap::with_capacity(1_000);
    // Thread A shadow-inserts (locks) a key; other threads cannot insert it,
    // and readers cannot see it until committed.
    let _ = map.insert_shadow(77, 770).unwrap();
    std::thread::scope(|s| {
        let map = &map;
        s.spawn(move || {
            assert!(!map.insert(77, 771).unwrap().inserted());
            assert_eq!(map.get(77), None);
        });
    });
    assert!(map.commit_shadow(77, true));
    assert_eq!(map.get(77), Some(770));
}
