//! Resize torture: tiny-bin configurations so a handful of threads
//! continuously trigger `grow`/`help_transfer` while racing deletes, puts,
//! and shadow-commits — the place DHash-style designs break.
//!
//! Invariants asserted:
//! * per-key last-write-wins (each thread owns a disjoint key range and
//!   checks its own final writes),
//! * `current_generation()` is monotonic under concurrent observation,
//! * `collect_retired` / `retired_indexes` drain to **zero** at quiescence,
//! * shards resize independently (a hot shard grows, its siblings do not),
//! * `check_invariants()` — the full structural sweep over every index
//!   generation, bin, and slot — passes at every quiescent point.
//!
//! `DLHT_STRESS=1` (or any positive integer) multiplies the round counts.

use dlht::{DlhtConfig, DlhtError, RawTable, ShardedTable};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn stress() -> u64 {
    std::env::var("DLHT_STRESS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .map(|v| v * 4)
        .unwrap_or(1)
}

/// A deliberately tiny, fast-churning configuration: 4 bins, 2-bin transfer
/// chunks, so inserts hit `NeedResize` constantly and every thread becomes a
/// transfer helper.
fn torture_config() -> DlhtConfig {
    DlhtConfig::new(4)
        .with_hash(dlht::hash::HashKind::WyHash)
        .with_chunk_bins(2)
        .with_link_ratio(1)
}

#[test]
fn torture_grow_with_racing_deletes_and_shadow_commits() {
    const WRITERS: u64 = 3;
    let rounds = 60 * stress();
    let keys_per_round: u64 = 40;

    let table = Arc::new(RawTable::with_config(torture_config()));
    let stop = Arc::new(AtomicBool::new(false));

    // A generation monitor races every grow: the observed generation must
    // never decrease.
    let monitor = {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u32;
            let mut observations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let g = table.current_generation();
                assert!(
                    g >= last,
                    "generation went backwards: {last} -> {g} after {observations} observations"
                );
                last = g;
                observations += 1;
            }
            (last, observations)
        })
    };

    // Writer threads: disjoint key ranges; each round inserts a fresh batch,
    // rewrites half of it with puts, deletes a third, and records what must
    // survive. Inserts on the tiny index trigger grow/help_transfer all the
    // way through.
    let final_states: Vec<HashMap<u64, Option<u64>>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..WRITERS {
            let table = Arc::clone(&table);
            handles.push(s.spawn(move || {
                let base = 1 + tid * (1 << 40);
                let mut expected: HashMap<u64, Option<u64>> = HashMap::new();
                for round in 0..rounds {
                    for i in 0..keys_per_round {
                        let key = base + round * keys_per_round + i;
                        assert!(
                            table.insert(key, key).unwrap().inserted(),
                            "fresh key {key:#x} must insert"
                        );
                        let last = if i % 2 == 0 {
                            // Rewrite mid-resize: the dw-CAS put must land on
                            // whichever index generation holds the key.
                            let prev = table.put(key, key ^ 0xFFFF);
                            assert_eq!(prev, Some(key), "put({key:#x}) lost the insert");
                            key ^ 0xFFFF
                        } else {
                            key
                        };
                        if i % 3 == 0 {
                            assert_eq!(
                                table.delete(key),
                                Some(last),
                                "delete({key:#x}) removed the wrong value"
                            );
                            expected.insert(key, None);
                        } else {
                            expected.insert(key, Some(last));
                        }
                    }
                }
                expected
            }));
        }
        // A shadow-commit thread races the transfers: shadow entries must be
        // carried across resizes in the Shadow state, stay invisible until
        // committed, and abort cleanly.
        let shadow = {
            let table = Arc::clone(&table);
            s.spawn(move || {
                let base = 1 + WRITERS * (1 << 40);
                let mut expected: HashMap<u64, Option<u64>> = HashMap::new();
                for round in 0..rounds {
                    for i in 0..8u64 {
                        let key = base + round * 8 + i;
                        assert!(table.insert_shadow(key, key * 3).unwrap().inserted());
                        // Invisible while shadow — even while bins transfer.
                        assert_eq!(table.get(key), None, "shadow {key:#x} leaked");
                        assert_eq!(table.delete(key), None, "shadow {key:#x} deletable");
                        let commit = i % 2 == 0;
                        assert!(
                            table.commit_shadow(key, commit),
                            "shadow {key:#x} vanished during a transfer"
                        );
                        expected.insert(key, commit.then_some(key * 3));
                    }
                }
                expected
            })
        };
        let mut states: Vec<HashMap<u64, Option<u64>>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        states.push(shadow.join().unwrap());
        states
    });

    stop.store(true, Ordering::Relaxed);
    let (final_gen, observations) = monitor.join().unwrap();

    // The tiny index must have grown many times under this load.
    assert!(
        table.resizes() >= 3,
        "expected repeated growth, saw {} resizes",
        table.resizes()
    );
    assert!(observations > 0);
    assert!(final_gen <= table.current_generation());

    // Per-key last-write-wins for every thread's disjoint range.
    let mut live = 0usize;
    for expected in &final_states {
        for (&key, &want) in expected {
            assert_eq!(table.get(key), want, "key {key:#x} lost its last write");
            if want.is_some() {
                live += 1;
            }
        }
    }
    assert_eq!(table.len(), live, "stray keys survived the torture");

    // Quiescence: with no thread inside the table, every retired index
    // generation must be collectable, down to zero.
    table.collect_retired();
    assert_eq!(
        table.retired_indexes(),
        0,
        "retired index generations leaked at quiescence"
    );
    table
        .check_invariants()
        .expect("structural sweep after the torture");
}

#[test]
fn torture_gets_never_block_and_stable_keys_survive() {
    let rounds = 2_000 * stress();
    let table = Arc::new(RawTable::with_config(torture_config()));
    for k in 0..64u64 {
        assert!(table.insert(k, k + 1).unwrap().inserted());
    }
    std::thread::scope(|s| {
        // Growth driver.
        {
            let table = Arc::clone(&table);
            s.spawn(move || {
                for k in 0..rounds {
                    let key = 1_000_000 + k;
                    assert!(table.insert(key, key).unwrap().inserted());
                    if k % 4 == 0 {
                        assert_eq!(table.delete(key), Some(key));
                    }
                }
            });
        }
        // Readers: the stable prefix stays visible through every transfer.
        for _ in 0..3 {
            let table = Arc::clone(&table);
            s.spawn(move || {
                for i in 0..rounds {
                    let k = i % 64;
                    assert_eq!(table.get(k), Some(k + 1), "stable key {k} vanished");
                }
            });
        }
    });
    assert!(table.resizes() > 0);
    table.collect_retired();
    assert_eq!(table.retired_indexes(), 0);
    table
        .check_invariants()
        .expect("structural sweep after reader torture");
}

#[test]
fn torture_table_full_is_clean_when_resizing_disabled() {
    // The failure edge of the same machinery: with resizing off the bin
    // reports TableFull instead of growing, and the table stays consistent.
    let table = RawTable::with_config(torture_config().with_resizing(false));
    let mut inserted = Vec::new();
    for k in 0..10_000u64 {
        match table.insert(k, k) {
            Ok(o) if o.inserted() => inserted.push(k),
            Ok(_) => unreachable!("fresh keys cannot collide"),
            Err(DlhtError::TableFull) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(!inserted.is_empty());
    for &k in &inserted {
        assert_eq!(table.get(k), Some(k));
    }
    assert_eq!(table.resizes(), 0);
    assert_eq!(table.retired_indexes(), 0);
    table
        .check_invariants()
        .expect("structural sweep of the full table");
}

#[test]
fn torture_sharded_hot_shard_grows_alone() {
    let per_round = 400 * stress();
    let table = Arc::new(ShardedTable::with_config(4, torture_config()));

    // Pick the shard key 1 routes to and hammer only keys on that shard from
    // several threads, with racing deletes.
    let hot = table.shard_of(1);
    let hot_keys: Vec<u64> = {
        let mut keys = Vec::new();
        let mut k = 0u64;
        while (keys.len() as u64) < per_round * 4 {
            if table.shard_of(k) == hot {
                keys.push(k);
            }
            k += 1;
        }
        keys
    };

    std::thread::scope(|s| {
        for t in 0..4usize {
            let table = Arc::clone(&table);
            let chunk: Vec<u64> = hot_keys.iter().skip(t).step_by(4).copied().collect();
            s.spawn(move || {
                for &key in &chunk {
                    assert!(table.insert(key, key).unwrap().inserted());
                    if key % 3 == 0 {
                        assert_eq!(table.delete(key), Some(key));
                    }
                }
            });
        }
    });

    // Only the hot shard resized; its siblings never saw a transfer.
    let per_shard: Vec<u64> = table.shards().map(|sh| sh.resizes()).collect();
    assert!(
        per_shard[hot] > 0,
        "the hot shard must have grown: {per_shard:?}"
    );
    for (i, &r) in per_shard.iter().enumerate() {
        if i != hot {
            assert_eq!(r, 0, "cold shard {i} resized: {per_shard:?}");
        }
    }

    // The aggregated stats expose the same independence: summed resizes and
    // the max generation both come from the hot shard alone.
    let agg = table.stats();
    assert_eq!(agg.resizes, per_shard.iter().sum::<u64>());
    assert_eq!(
        agg.generation,
        table.shard(hot).current_generation(),
        "aggregated generation must be the hot shard's"
    );
    for (i, st) in table.shard_stats().iter().enumerate() {
        if i != hot {
            assert_eq!(st.generation, 0, "cold shard {i} changed generation");
        }
    }

    // Last-write-wins per key and retired-index drain across every shard.
    for &key in &hot_keys {
        let want = if key % 3 == 0 { None } else { Some(key) };
        assert_eq!(table.get(key), want, "key {key:#x}");
    }
    table.collect_retired();
    assert_eq!(table.retired_indexes(), 0);
    table
        .check_invariants()
        .expect("structural sweep across all shards");
}
