//! End-to-end observability: a live server in each persona must serve a
//! parseable Prometheus exposition (and its JSON twin, and the slow-op
//! trace ring) on the admin plane, with the counters/histograms/gauges
//! reflecting the traffic that actually happened — while the binary
//! `STATS` dialect keeps working on the same port.

use dlht_core::{CacheConfig, CacheMap, EvictionPolicy, ShardedTable};
use dlht_net::{DlhtClient, DlhtServer, ServerConfig};
use dlht_obs::{json::Json, parse_prometheus, sum_samples, PromSample};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One admin-plane HTTP request; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

fn scrape(addr: SocketAddr) -> Vec<PromSample> {
    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains(" 200 "), "scrape status: {status}");
    parse_prometheus(&body).expect("valid Prometheus exposition")
}

/// Poll `cond` against fresh scrapes until it holds (worker gauges update
/// once per event-loop pass, so a just-closed connection needs a beat).
fn wait_for(addr: SocketAddr, what: &str, cond: impl Fn(&[PromSample]) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let samples = scrape(addr);
        if cond(&samples) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn kv_server() -> (DlhtServer, Arc<ShardedTable>) {
    let table = Arc::new(ShardedTable::with_capacity(4, 4_096));
    let server = DlhtServer::bind_with(
        "127.0.0.1:0",
        table.clone(),
        ServerConfig {
            workers: 2,
            admin_addr: Some("127.0.0.1:0".to_string()),
            trace_slow_us: Some(0),
            ..ServerConfig::default()
        },
    )
    .expect("bind kv");
    (server, table)
}

#[test]
fn kv_server_serves_prometheus_exposition() {
    let (server, _table) = kv_server();
    let admin = server.admin_addr().expect("admin plane");

    let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
    let ops = 40u64;
    for k in 0..ops / 2 {
        assert!(client.insert(k, k * 7).unwrap().inserted());
        assert_eq!(client.get(k).unwrap(), Some(k * 7));
    }

    let samples = scrape(admin);
    // Request accounting: every op was counted, and per-opcode histograms
    // saw every request (ops ≥ frames would hold too — each frame here is
    // one op).
    assert_eq!(sum_samples(&samples, "dlht_connections_total"), Some(1.0));
    let total_ops = sum_samples(&samples, "dlht_ops_total").expect("ops counter");
    let frames = sum_samples(&samples, "dlht_frames_total").expect("frames counter");
    assert!(total_ops >= ops as f64, "ops = {total_ops}");
    assert!(
        total_ops >= frames - 1.0,
        "ops {total_ops} vs frames {frames}"
    );
    let hist_count =
        sum_samples(&samples, "dlht_request_latency_ns_count").expect("latency histogram");
    assert_eq!(hist_count, ops as f64, "every request sampled");
    let inserts = samples
        .iter()
        .find(|s| s.name == "dlht_request_latency_ns_count" && s.label("op") == Some("insert"))
        .expect("per-opcode series");
    assert_eq!(inserts.value, (ops / 2) as f64);
    let sum_ns = sum_samples(&samples, "dlht_request_latency_ns_sum").expect("latency sum");
    assert!(sum_ns > 0.0, "latencies are non-zero");
    // Table structure gauges reflect the live table.
    assert_eq!(
        sum_samples(&samples, "dlht_table_occupied_slots"),
        Some((ops / 2) as f64)
    );
    assert!(sum_samples(&samples, "dlht_table_occupancy_ppm").unwrap() > 0.0);
    assert!(sum_samples(&samples, "dlht_table_resizes_total").is_some());
    assert!(sum_samples(&samples, "dlht_table_retired_indexes").is_some());
    // Per-shard gauges: one series per shard, summing to the total.
    let shard_sum = sum_samples(&samples, "dlht_shard_occupied_slots").expect("per-shard gauges");
    assert_eq!(shard_sum, (ops / 2) as f64);
    assert_eq!(
        samples
            .iter()
            .filter(|s| s.name == "dlht_shard_generation")
            .count(),
        4
    );
    assert_eq!(sum_samples(&samples, "dlht_workers"), Some(2.0));

    // The connection is open: active = 1, buffer bytes pinned. After the
    // client leaves, both drain to zero.
    assert_eq!(sum_samples(&samples, "dlht_active_connections"), Some(1.0));
    drop(client);
    wait_for(admin, "connection teardown", |s| {
        sum_samples(s, "dlht_active_connections") == Some(0.0)
            && sum_samples(s, "dlht_buffer_bytes") == Some(0.0)
    });

    server.shutdown();
}

#[test]
fn kv_admin_plane_speaks_json_trace_and_binary_stats() {
    let (server, _table) = kv_server();
    let admin = server.admin_addr().expect("admin plane");

    let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
    assert!(client.insert(1, 10).unwrap().inserted());
    assert_eq!(client.get(1).unwrap(), Some(10));

    // JSON twin parses and carries the same families.
    let (status, body) = http_get(admin, "/metrics.json");
    assert!(status.contains(" 200 "), "{status}");
    let doc = Json::parse(&body).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("dlht-obs/v1")
    );
    let metrics = doc
        .get("metrics")
        .and_then(|m| m.as_array())
        .expect("metrics array");
    assert!(metrics
        .iter()
        .any(|m| m.get("name").and_then(|n| n.as_str()) == Some("dlht_ops_total")));

    // Slow-op ring at --trace-slow-us 0 captured the requests.
    let (status, body) = http_get(admin, "/trace");
    assert!(status.contains(" 200 "), "{status}");
    let doc = Json::parse(&body).expect("valid trace JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("dlht-trace/v1")
    );
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_array())
        .expect("entries array");
    assert!(!entries.is_empty(), "threshold 0 traces every request");
    let ops: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("op").and_then(|o| o.as_str()))
        .collect();
    assert!(ops.contains(&"insert") && ops.contains(&"get"), "{ops:?}");
    for e in entries {
        assert!(e.get("micros").and_then(|m| m.as_u64()).is_some());
        assert!(e.get("key_hash").is_some());
        assert!(e.get("queue_depth").is_some());
    }

    // Unknown paths and non-GET methods answer without closing the server.
    let (status, _) = http_get(admin, "/nope");
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");

    // The binary dialect still works on the very same port.
    let mut admin_client = DlhtClient::connect(admin).expect("binary admin client");
    admin_client.ping().unwrap();
    let stats = admin_client.stats().unwrap();
    assert_eq!(stats.table.occupied_slots, 1);

    let counters = server.shutdown();
    assert_eq!(counters.protocol_errors, 0);
}

#[test]
fn memcache_server_serves_cache_metrics() {
    let cache = Arc::new(CacheMap::new(CacheConfig {
        shards: 2,
        capacity: 4_096,
        memory_budget: 0,
        eviction: EvictionPolicy::Lru,
    }));
    let server = DlhtServer::bind_memcache(
        "127.0.0.1:0",
        cache,
        ServerConfig {
            workers: 1,
            admin_addr: Some("127.0.0.1:0".to_string()),
            trace_slow_us: Some(0),
            ..ServerConfig::default()
        },
    )
    .expect("bind memcache");
    let admin = server.admin_addr().expect("admin plane");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect data");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"set k1 0 0 5\r\nhello\r\nget k1\r\nget missing\r\n")
        .expect("send commands");
    let mut reply = [0u8; 256];
    let mut got = 0;
    while String::from_utf8_lossy(&reply[..got])
        .matches("END\r\n")
        .count()
        < 2
    {
        let n = stream.read(&mut reply[got..]).expect("read reply");
        assert!(n > 0, "server closed early");
        got += n;
    }
    let reply = String::from_utf8_lossy(&reply[..got]);
    assert!(
        reply.contains("STORED") && reply.contains("VALUE k1"),
        "{reply}"
    );

    let samples = scrape(admin);
    // Per-command histograms under the cmd label.
    for cmd in ["set", "get"] {
        let s = samples
            .iter()
            .find(|s| s.name == "dlht_request_latency_ns_count" && s.label("cmd") == Some(cmd))
            .unwrap_or_else(|| panic!("missing cmd={cmd} series"));
        assert!(s.value >= 1.0, "cmd={cmd} count {}", s.value);
    }
    // Cache counters: one hit (k1), one miss (missing), one set.
    assert_eq!(sum_samples(&samples, "dlht_cache_hits_total"), Some(1.0));
    assert_eq!(sum_samples(&samples, "dlht_cache_misses_total"), Some(1.0));
    assert_eq!(sum_samples(&samples, "dlht_cache_sets_total"), Some(1.0));
    assert!(sum_samples(&samples, "dlht_cache_evicted_total").is_some());
    assert!(sum_samples(&samples, "dlht_cache_expired_total").is_some());
    assert_eq!(sum_samples(&samples, "dlht_cache_items"), Some(1.0));
    // value_bytes accounts the whole stored entry (key + header + payload),
    // so it is at least the 5-byte payload.
    assert!(sum_samples(&samples, "dlht_cache_value_bytes").unwrap() >= 5.0);
    assert!(sum_samples(&samples, "dlht_pending_reclaim_bytes").is_some());
    assert_eq!(
        sum_samples(&samples, "dlht_cache_memory_budget_bytes"),
        Some(0.0)
    );

    // The trace ring saw the memcache commands too.
    let (_, body) = http_get(admin, "/trace");
    let doc = Json::parse(&body).expect("valid trace JSON");
    let entries = doc.get("entries").and_then(|e| e.as_array()).unwrap();
    let ops: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("op").and_then(|o| o.as_str()))
        .collect();
    assert!(ops.contains(&"set") && ops.contains(&"get"), "{ops:?}");

    drop(stream);
    server.shutdown();
}
