//! Integration tests for the `dlht-net` subsystem: frame-codec round-trip
//! properties, protocol robustness (truncated / oversized / garbage frames
//! must error cleanly, never panic), the deterministic loopback transport,
//! and the real TCP server/client path including graceful shutdown and
//! YCSB over the wire.

use dlht::{BatchPolicy, DlhtError, InsertOutcome, KvBackend, Request, Response, ShardedTable};
use dlht_net::wire::{self, WireError};
use dlht_net::{
    loopback_client, BackendEngine, DlhtClient, DlhtServer, NetError, RemoteBackend, Service,
};
use dlht_util::splitmix64 as splitmix;
use std::sync::Arc;

fn random_request(rng: &mut u64) -> Request {
    let k = splitmix(rng);
    let v = splitmix(rng);
    match splitmix(rng) % 4 {
        0 => Request::Get(k),
        1 => Request::Put(k, v),
        2 => Request::Insert(k, v),
        _ => Request::Delete(k),
    }
}

fn random_response(rng: &mut u64) -> Response {
    let v = splitmix(rng);
    match splitmix(rng) % 10 {
        0 => Response::Value(None),
        1 => Response::Value(Some(v)),
        2 => Response::Updated(None),
        3 => Response::Updated(Some(v)),
        4 => Response::Inserted(Ok(InsertOutcome::Inserted)),
        5 => Response::Inserted(Ok(InsertOutcome::AlreadyExists(v))),
        6 => Response::Inserted(Err(match splitmix(rng) % 5 {
            0 => DlhtError::ReservedKey,
            1 => DlhtError::TableFull,
            2 => DlhtError::KeyTooLong,
            3 => DlhtError::InvalidNamespace,
            _ => DlhtError::UnsupportedInMode,
        })),
        7 => Response::Deleted(None),
        8 => Response::Deleted(Some(v)),
        _ => Response::Skipped,
    }
}

// ---------------------------------------------------------------------------
// Codec properties (seeded, deterministic)
// ---------------------------------------------------------------------------

#[test]
fn property_request_frames_roundtrip() {
    let mut rng = 0xF4A3_u64;
    for _ in 0..2_000 {
        let req = random_request(&mut rng);
        let mut buf = Vec::new();
        wire::encode_request(&mut buf, req);
        let (frame, used) = wire::decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(
            wire::decode_request(frame.opcode, frame.payload).unwrap(),
            req
        );
    }
}

#[test]
fn property_batches_and_responses_roundtrip() {
    let mut rng = 0xBEEF_u64;
    for round in 0..400 {
        let len = (splitmix(&mut rng) % 20) as usize;
        let reqs: Vec<Request> = (0..len).map(|_| random_request(&mut rng)).collect();
        let policy = match round % 3 {
            0 => BatchPolicy::RunAll,
            1 => BatchPolicy::StopOnFailure,
            _ => BatchPolicy::Unordered,
        };
        let mut buf = Vec::new();
        wire::encode_batch(&mut buf, &reqs, policy);
        let (frame, used) = wire::decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        let (p, count, items) = wire::decode_batch_header(frame.payload).unwrap();
        assert_eq!(p, policy);
        assert_eq!(count as usize, reqs.len());
        let mut iter = wire::BatchIter::new(items, count);
        let decoded: Vec<Request> = iter.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(decoded, reqs);
        iter.finish().unwrap();

        let resps: Vec<Response> = (0..len).map(|_| random_response(&mut rng)).collect();
        let mut rbuf = Vec::new();
        wire::encode_batch_responses(&mut rbuf, &resps);
        let (rframe, rused) = wire::decode_frame(&rbuf).unwrap().unwrap();
        assert_eq!(rused, rbuf.len());
        let mut out = Vec::new();
        wire::decode_batch_responses(rframe.payload, &mut out).unwrap();
        assert_eq!(out, resps);
    }
}

#[test]
fn property_truncated_valid_streams_never_error() {
    // Any prefix of a valid frame stream must decode to "need more bytes"
    // after the complete frames — never to an error, never to a panic.
    let mut rng = 0x77AA_u64;
    for _ in 0..200 {
        let mut stream = Vec::new();
        let n_frames = 1 + (splitmix(&mut rng) % 5) as usize;
        for _ in 0..n_frames {
            wire::encode_request(&mut stream, random_request(&mut rng));
        }
        let cut = (splitmix(&mut rng) % (stream.len() as u64 + 1)) as usize;
        let mut offset = 0;
        loop {
            match wire::decode_frame(&stream[offset..cut]) {
                Ok(Some((_, used))) => offset += used,
                Ok(None) => break,
                Err(e) => panic!("prefix of a valid stream errored: {e}"),
            }
        }
    }
}

#[test]
fn property_garbage_never_panics_the_decoder() {
    // Arbitrary bytes: the decoder must always return (not panic), and any
    // frame it does accept must re-encode no longer than the input.
    let mut rng = 0xDEAD_u64;
    for _ in 0..2_000 {
        let len = (splitmix(&mut rng) % 64) as usize;
        let bytes: Vec<u8> = (0..len)
            .map(|_| (splitmix(&mut rng) & 0xFF) as u8)
            .collect();
        if let Ok(Some((frame, used))) = wire::decode_frame(&bytes) {
            assert!(used <= bytes.len());
            // Whatever decoded must also survive payload decoding attempts
            // without panicking.
            let _ = wire::decode_request(frame.opcode, frame.payload);
            let _ = wire::decode_response(frame.payload);
            let _ = wire::decode_stats(frame.payload);
            let _ = wire::decode_batch_header(frame.payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Service robustness over the loopback transport
// ---------------------------------------------------------------------------

type DynService = Service<BackendEngine<Arc<dyn KvBackend>>>;

fn service_over(table_keys: u64) -> (DynService, Arc<dyn KvBackend>) {
    let table: Arc<dyn KvBackend> = Arc::new(ShardedTable::with_capacity(2, 4_096));
    for k in 0..table_keys {
        let _ = table.insert(k, k).unwrap();
    }
    (Service::new(BackendEngine(table.clone())), table)
}

/// The malformed inputs every server must reject with an `ERR` frame (and
/// close) instead of panicking or executing garbage.
fn poison_frames() -> Vec<(&'static str, Vec<u8>)> {
    let mut cases = Vec::new();
    cases.push(("bad magic", vec![0x00u8; 16]));
    cases.push(("bad version", {
        let mut b = vec![wire::MAGIC, 99, 0x01, 0, 8, 0, 0, 0];
        b.extend_from_slice(&7u64.to_le_bytes());
        b
    }));
    cases.push(("nonzero reserved byte", {
        let mut b = vec![wire::MAGIC, wire::VERSION, 0x01, 7, 8, 0, 0, 0];
        b.extend_from_slice(&7u64.to_le_bytes());
        b
    }));
    cases.push(("unknown opcode", {
        let mut b = Vec::new();
        wire::put_header(&mut b, 0x6F, 0);
        b
    }));
    cases.push(("oversized length prefix", {
        let mut b = vec![wire::MAGIC, wire::VERSION, 0x01, 0];
        b.extend_from_slice(&(u32::MAX).to_le_bytes());
        b
    }));
    cases.push(("get with wrong payload size", {
        let mut b = Vec::new();
        wire::put_header(&mut b, 0x01, 3);
        b.extend_from_slice(&[1, 2, 3]);
        b
    }));
    cases.push(("stats with a payload", {
        let mut b = Vec::new();
        wire::put_header(&mut b, 0x06, 4);
        b.extend_from_slice(&[0; 4]);
        b
    }));
    cases.push(("batch count larger than payload", {
        let mut b = Vec::new();
        wire::put_header(&mut b, 0x05, 5);
        b.push(0); // RunAll
        b.extend_from_slice(&100u32.to_le_bytes()); // claims 100 requests, has 0
        b
    }));
    cases.push(("batch with trailing bytes", {
        let mut inner = Vec::new();
        wire::encode_batch(&mut inner, &[Request::Get(1)], BatchPolicy::RunAll);
        // Lie about the payload length to smuggle two extra bytes.
        let mut b = Vec::new();
        wire::put_header(&mut b, 0x05, inner.len() - wire::HEADER_LEN + 2);
        b.extend_from_slice(&inner[wire::HEADER_LEN..]);
        b.extend_from_slice(&[9, 9]);
        b
    }));
    cases.push(("batch with unknown inner opcode", {
        let mut b = Vec::new();
        wire::put_header(&mut b, 0x05, 5 + 9);
        b.push(0);
        b.extend_from_slice(&1u32.to_le_bytes());
        b.push(0x6E); // not an op
        b.extend_from_slice(&1u64.to_le_bytes());
        b
    }));
    cases
}

#[test]
fn poison_frames_error_cleanly_and_close() {
    for (label, bytes) in poison_frames() {
        let (mut service, table) = service_over(4);
        let before = table.len();
        let mut out = Vec::new();
        let err = service
            .process(&bytes, &mut out)
            .expect_err(&format!("{label}: must be rejected"));
        // The reply ends with an ERR frame carrying the error's code.
        let mut offset = 0;
        let mut last = None;
        while let Ok(Some((frame, used))) = wire::decode_frame(&out[offset..]) {
            offset += used;
            last = Some((frame.opcode, frame.payload.to_vec()));
        }
        let (opcode, payload) = last.expect(label);
        assert_eq!(opcode, wire::resp::ERR, "{label}");
        assert_eq!(payload[0], err.code(), "{label}");
        // The poisoned frame must not have mutated the table.
        assert_eq!(
            table.len(),
            before,
            "{label}: malformed frame mutated state"
        );
    }
}

#[test]
fn poison_after_valid_pipeline_still_answers_the_valid_prefix() {
    for (label, bytes) in poison_frames() {
        let (mut service, table) = service_over(0);
        let mut input = Vec::new();
        wire::encode_request(&mut input, Request::Insert(900, 9));
        wire::encode_request(&mut input, Request::Get(900));
        input.extend_from_slice(&bytes);
        let mut out = Vec::new();
        assert!(service.process(&input, &mut out).is_err(), "{label}");
        // Two RESP frames then the ERR frame.
        let (f1, u1) = wire::decode_frame(&out).unwrap().unwrap();
        assert_eq!(f1.opcode, wire::resp::RESP, "{label}");
        let (f2, u2) = wire::decode_frame(&out[u1..]).unwrap().unwrap();
        assert_eq!(
            wire::decode_response(f2.payload).unwrap(),
            Response::Value(Some(9)),
            "{label}"
        );
        let (f3, _) = wire::decode_frame(&out[u1 + u2..]).unwrap().unwrap();
        assert_eq!(f3.opcode, wire::resp::ERR, "{label}");
        assert_eq!(table.get(900), Some(9), "{label}");
    }
}

#[test]
fn loopback_client_surfaces_server_errors_and_stays_closed() {
    let table: Arc<dyn KvBackend> = Arc::new(ShardedTable::with_capacity(2, 1_024));
    let mut client = loopback_client(BackendEngine(table));
    assert!(client.insert(1, 10).unwrap().inserted());
    // Inject garbage below the client API, as a desynchronized peer would.
    {
        use std::io::Write;
        let transport = client.get_mut();
        transport.write_all(&[0xAB; 8]).unwrap();
    }
    match client.get(1) {
        Err(NetError::Server { code, message }) => {
            assert_eq!(code, WireError::BadMagic(0xAB).code());
            assert!(message.contains("magic"), "{message}");
        }
        other => panic!("expected a server protocol rejection, got {other:?}"),
    }
    // The loopback connection is closed now, like a real socket.
    assert!(matches!(
        client.get(1),
        Err(NetError::Io(_) | NetError::Closed)
    ));
}

// ---------------------------------------------------------------------------
// TCP path
// ---------------------------------------------------------------------------

fn start_server(shards: usize) -> (DlhtServer, Arc<ShardedTable>) {
    let table = Arc::new(ShardedTable::with_capacity(shards, 16_384));
    let server = DlhtServer::bind("127.0.0.1:0", table.clone()).expect("bind");
    (server, table)
}

#[test]
fn tcp_pipelined_matches_sequential_and_local() {
    let (server, table) = start_server(4);
    let mut seq = DlhtClient::connect(server.local_addr()).unwrap();
    let mut pip = DlhtClient::connect(server.local_addr()).unwrap();
    let mut rng = 0x1C9_u64;
    for round in 0..20 {
        let len = 1 + (splitmix(&mut rng) % 24) as usize;
        let reqs: Vec<Request> = (0..len)
            .map(|_| {
                let k = splitmix(&mut rng) % 64;
                let v = splitmix(&mut rng) % 1_000;
                match splitmix(&mut rng) % 4 {
                    0 => Request::Get(k),
                    1 => Request::Put(k + 1_000, v),
                    2 => Request::Insert(k, v),
                    _ => Request::Delete(k),
                }
            })
            .collect();
        // Pipelined on one connection, then replayed sequentially on the
        // other against a *fresh* key range must observe its own writes in
        // submission order. (Interleaving between the two connections is
        // avoided by alternating rounds.)
        let resps = if round % 2 == 0 {
            pip.pipelined(&reqs).unwrap()
        } else {
            reqs.iter().map(|r| seq.request(*r).unwrap()).collect()
        };
        assert_eq!(resps.len(), reqs.len());
    }
    // Spot-check convergence against the real table through a third client.
    let mut check = DlhtClient::connect(server.local_addr()).unwrap();
    for k in 0..64u64 {
        assert_eq!(check.get(k).unwrap(), table.get(k), "key {k}");
    }
    server.shutdown();
}

#[test]
fn tcp_concurrent_clients_and_typed_stats() {
    let (server, table) = start_server(4);
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut client = DlhtClient::connect(addr).unwrap();
                let base = t * 10_000;
                for k in 0..200u64 {
                    assert!(client.insert(base + k, k).unwrap().inserted());
                }
                let reqs: Vec<Request> = (0..200u64).map(|k| Request::Get(base + k)).collect();
                for (k, r) in client.pipelined(&reqs).unwrap().into_iter().enumerate() {
                    assert_eq!(r, Response::Value(Some(k as u64)));
                }
            });
        }
    });
    assert_eq!(table.len(), 800);
    let mut client = DlhtClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.table.occupied_slots, 800);
    assert_eq!(stats.table, table.stats(), "typed stats must match local");
    assert_eq!(client.server_len().unwrap(), 800);
    let counters = server.shutdown();
    assert_eq!(counters.connections, 5);
    assert_eq!(counters.protocol_errors, 0);
    assert!(counters.ops >= 4 * 400);
}

#[test]
fn ycsb_runs_over_the_wire_through_the_remote_backend() {
    use dlht_workloads::ycsb::{run_ycsb, YcsbMix};
    let (server, table) = start_server(4);
    let remote = RemoteBackend::connect(server.local_addr().to_string()).expect("connect");
    dlht_workloads::prepopulate_batched(&remote, 2_000, 128);
    assert_eq!(table.len(), 2_000);
    let r = run_ycsb(
        &remote,
        YcsbMix::A,
        2_000,
        2,
        std::time::Duration::from_millis(40),
        true,
    );
    assert!(r.total_ops > 0);
    // Update-only YCSB F must leave the population unchanged.
    let f = run_ycsb(
        &remote,
        YcsbMix::F,
        2_000,
        2,
        std::time::Duration::from_millis(30),
        true,
    );
    assert!(f.total_ops > 0);
    assert_eq!(remote.len(), 2_000);
    let counters = server.shutdown();
    assert!(counters.batches > 0, "YCSB must use the wire batch path");
}
