//! Integration tests for the unified API redesign: the typed `Dlht<K, V>`
//! facade, reserved-key rejection through **every** entry point (typed
//! facade, `KvBackend` trait object, batch path), and an encode→decode
//! identity property test for the `Inline8` encoding.

use dlht::{
    impl_inline8_codec, BatchPolicy, Dlht, DlhtError, DlhtMap, Inline8, KvBackend, KvCodec,
    Request, Response, TypedBatch, TypedResponse,
};
use dlht_util::splitmix64 as splitmix;

const RESERVED: [u64; 2] = [u64::MAX, u64::MAX - 1];

// ---- reserved-key rejection through every entry point ----------------------

#[test]
fn reserved_keys_rejected_through_typed_facade() {
    let map: Dlht<u64, u64> = Dlht::with_capacity(64);
    for k in RESERVED {
        assert_eq!(
            map.insert(&k, &1),
            Err(DlhtError::ReservedKey),
            "insert {k}"
        );
        assert_eq!(
            map.upsert(&k, &1),
            Err(DlhtError::ReservedKey),
            "upsert {k}"
        );
        assert_eq!(map.get(&k), None, "get {k}");
        assert_eq!(map.remove(&k), None, "remove {k}");
        assert!(!map.contains(&k), "contains {k}");
    }
    assert!(map.is_empty());
    // Signed keys whose two's-complement encoding lands on the reserved
    // words are rejected the same way.
    let signed: Dlht<i64, u64> = Dlht::with_capacity(64);
    assert_eq!(signed.insert(&-1, &1), Err(DlhtError::ReservedKey));
    assert_eq!(signed.insert(&-2, &1), Err(DlhtError::ReservedKey));
    assert!(signed.insert(&-3, &1).unwrap());
}

#[test]
fn reserved_keys_rejected_through_trait_object() {
    let map = DlhtMap::with_capacity(64);
    let backend: &dyn KvBackend = &map;
    for k in RESERVED {
        assert_eq!(
            backend.insert(k, 1),
            Err(DlhtError::ReservedKey),
            "insert {k}"
        );
        assert_eq!(
            backend.upsert(k, 1),
            Err(DlhtError::ReservedKey),
            "upsert {k}"
        );
        assert_eq!(backend.get(k), None, "get {k}");
        assert_eq!(backend.put(k, 1), None, "put {k}");
        assert_eq!(backend.delete(k), None, "delete {k}");
    }
    assert!(backend.is_empty());
}

#[test]
fn reserved_keys_rejected_through_the_batch_path() {
    let map = DlhtMap::with_capacity(64);
    let backend: &dyn KvBackend = &map;
    for k in RESERVED {
        let out = backend.execute_batch(
            &[
                Request::Insert(k, 1),
                Request::Get(k),
                Request::Put(k, 2),
                Request::Delete(k),
            ],
            BatchPolicy::RunAll,
        );
        assert_eq!(
            out[0],
            Response::Inserted(Err(DlhtError::ReservedKey)),
            "{k}"
        );
        assert_eq!(out[1], Response::Value(None), "{k}");
        assert_eq!(out[2], Response::Updated(None), "{k}");
        assert_eq!(out[3], Response::Deleted(None), "{k}");
    }
    // With StopOnFailure, the reserved-key insert terminates the batch.
    let out = backend.execute_batch(
        &[Request::Insert(u64::MAX, 1), Request::Insert(7, 70)],
        BatchPolicy::StopOnFailure,
    );
    assert!(!out[0].succeeded());
    assert_eq!(out[1], Response::Skipped);
    assert_eq!(backend.get(7), None, "skipped request must not execute");
}

#[test]
fn reserved_keys_rejected_for_every_baseline_kind() {
    use dlht_baselines::MapKind;
    for kind in MapKind::all() {
        let map = kind.build(1_024);
        for k in RESERVED {
            assert!(
                map.insert(k, 1).is_err(),
                "{}: reserved key {k} must be rejected",
                kind.name()
            );
            assert_eq!(map.get(k), None, "{}", kind.name());
        }
    }
}

// ---- Inline8 encode→decode identity ---------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OrderId(u64);

impl Inline8 for OrderId {
    fn to_word(self) -> u64 {
        self.0
    }
    fn from_word(word: u64) -> Self {
        OrderId(word)
    }
}
impl_inline8_codec!(OrderId);

fn assert_roundtrip<T: Inline8 + PartialEq + std::fmt::Debug>(x: T) {
    assert_eq!(T::from_word(x.to_word()), x);
}

#[test]
fn inline8_roundtrip_property() {
    let mut rng = 0x1D8_u64;
    for _ in 0..10_000 {
        let w = splitmix(&mut rng);
        assert_roundtrip(w); // u64
        assert_roundtrip(w as i64); // i64
        assert_roundtrip(((w >> 32) as u32, w as u32)); // u32 pair
        assert_roundtrip(w.to_le_bytes()); // [u8; 8]
        assert_roundtrip(OrderId(w)); // newtype
                                      // Narrow types roundtrip from their truncated representation.
        assert_roundtrip(w as u32);
        assert_roundtrip(w as u32 as i32);
        assert_roundtrip(w as u16);
        assert_roundtrip(w as u8);
    }
    // Boundary values.
    for w in [0, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 48) - 1] {
        assert_roundtrip(w);
        assert_roundtrip(w as i64);
        assert_roundtrip(OrderId(w));
    }
}

#[test]
fn inline8_word_and_bytes_encodings_agree() {
    // KvCodec's bytes path (used when an inline key is paired with an
    // out-of-line value) must encode exactly the slot word, little-endian.
    let mut rng = 0xC0DEC_u64;
    for _ in 0..1_000 {
        let w = splitmix(&mut rng);
        let mut buf = Vec::new();
        KvCodec::encode_bytes(&w, &mut buf);
        assert_eq!(buf, w.to_le_bytes());
        assert_eq!(<u64 as KvCodec>::decode_bytes(&buf), w);
        assert_eq!(KvCodec::encode_word(&w), Inline8::to_word(w));
    }
}

#[test]
fn newtype_keys_work_end_to_end() {
    let map: Dlht<OrderId, u64> = Dlht::with_capacity(256);
    assert_eq!(map.mode(), "inlined");
    for i in 0..100u64 {
        assert!(map.insert(&OrderId(i), &(i * 3)).unwrap());
    }
    assert_eq!(map.get(&OrderId(42)), Some(126));
    assert_eq!(
        map.insert(&OrderId(u64::MAX), &0),
        Err(DlhtError::ReservedKey),
        "newtype reserved words reject like raw u64"
    );
    assert_eq!(map.remove(&OrderId(42)), Some(126));
    assert_eq!(map.len(), 99);
}

// ---- the facade and the trait agree ---------------------------------------

#[test]
fn typed_inline_facade_matches_trait_view() {
    let typed: Dlht<u64, u64> = Dlht::with_capacity(256);
    typed.insert(&3, &33).unwrap();
    typed.upsert(&4, &44).unwrap();
    let backend: &dyn KvBackend = typed.inline_map().unwrap();
    assert_eq!(backend.get(3), Some(33));
    assert_eq!(backend.get(4), Some(44));
    assert_eq!(backend.len(), typed.len());
    let out = backend.execute_batch(&[Request::Get(3), Request::Get(4)], BatchPolicy::RunAll);
    assert_eq!(out[0], Response::Value(Some(33)));
    assert_eq!(out[1], Response::Value(Some(44)));
}

// ---- typed batches through the facade --------------------------------------

#[test]
fn typed_batch_decodes_newtype_values() {
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Score(u32);
    impl Inline8 for Score {
        fn to_word(self) -> u64 {
            self.0 as u64
        }
        fn from_word(word: u64) -> Self {
            Score(word as u32)
        }
    }
    impl_inline8_codec!(Score);

    let map: Dlht<OrderId, Score> = Dlht::with_capacity(256);
    let mut batch: TypedBatch<OrderId, Score> = TypedBatch::with_capacity(3);
    for round in 0..5u64 {
        batch.clear();
        batch.push_insert(&OrderId(round), &Score(round as u32 * 10));
        batch.push_get(&OrderId(round));
        batch.push_put(&OrderId(round), &Score(1));
        map.execute(&mut batch, BatchPolicy::RunAll).unwrap();
        assert_eq!(batch.response(0), Some(TypedResponse::Inserted(Ok(true))));
        assert_eq!(
            batch.response(1),
            Some(TypedResponse::Value(Some(Score(round as u32 * 10))))
        );
        assert_eq!(
            batch.response(2),
            Some(TypedResponse::Updated(Some(Score(round as u32 * 10))))
        );
    }
    assert_eq!(map.len(), 5);
}

#[test]
fn get_many_into_matches_get_many_and_reuses_buffers() {
    let map: Dlht<u64, u64> = Dlht::with_capacity(1024);
    for k in 0..200u64 {
        map.insert(&k, &(k ^ 0xFF)).unwrap();
    }
    let keys: Vec<u64> = (0..256).collect();
    let alloc_free = map.get_many(&keys);
    let mut reused = Vec::new();
    for _ in 0..2 {
        map.get_many_into(&keys, &mut reused);
    }
    assert_eq!(alloc_free, reused);
    assert_eq!(reused.iter().filter(|v| v.is_some()).count(), 200);
}
