//! TTL and expiry under churn: the cache persona's time-based guarantees.
//!
//! * An entry is **never served past its deadline** — lazy expiry on the
//!   read path makes this true even before any reaper pass runs.
//! * The background reaper drains an expiry storm (every entry's deadline
//!   inside one short window) all the way to zero: no items, no retired
//!   indexes parked in the epoch collector, no unreclaimed bytes.
//! * `touch` extends deadlines race-free while three other threads churn
//!   the rest of the key space — the touched key stays servable, the
//!   engine never panics, and expired reads never surface values.

use dlht_core::{CacheConfig, CacheMap, EvictionPolicy, ManualClock};
use dlht_workloads::{cache_key_bytes, CacheOp, ExpiryStorm};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn manual_cache(capacity: usize) -> (Arc<ManualClock>, CacheMap) {
    let clock = Arc::new(ManualClock::new(1));
    let map = CacheMap::with_clock(
        CacheConfig {
            capacity,
            memory_budget: 0,
            eviction: EvictionPolicy::Lru,
            ..CacheConfig::default()
        },
        clock.clone(),
    );
    (clock, map)
}

/// Walk the clock one second at a time past a spread of deadlines; at every
/// step each key must be served iff its deadline is still ahead — with no
/// reaper pass at all, so the guarantee is purely the read path's.
#[test]
fn entries_are_never_served_past_their_deadline() {
    let (clock, map) = manual_cache(1 << 12);
    let mut session = map.session();
    let ttls: Vec<i64> = (1..=32).collect();
    let mut key_buf = [0u8; 24];
    for (i, &ttl) in ttls.iter().enumerate() {
        let key = cache_key_bytes(&mut key_buf, i as u64);
        session
            .set(key, format!("value{ttl}").as_bytes(), 0, ttl)
            .unwrap();
    }
    // deadline for ttl is 1 + ttl; the entry is dead once now >= 1 + ttl.
    for step in 0..40u32 {
        let now = 1 + step;
        for (i, &ttl) in ttls.iter().enumerate() {
            let key = cache_key_bytes(&mut key_buf, i as u64);
            let deadline = 1 + ttl as u32;
            let served = session.get_with(key, |view| view.value.to_vec());
            if now < deadline {
                assert_eq!(
                    served.as_deref(),
                    Some(format!("value{ttl}").as_bytes()),
                    "ttl {ttl} must be served at now={now}"
                );
            } else {
                assert_eq!(served, None, "ttl {ttl} served past deadline at now={now}");
            }
        }
        clock.advance(1);
    }
    // Lazy expiry is logical, not physical: no reaper ran, so one pass now
    // reclaims every dead entry at once.
    session.reap();
    assert_eq!(map.len(), 0);
    session.quiesce();
}

/// The worst case for the reaper: every entry dies inside one window. The
/// sweep must drain the cache to *zero* — items, retired indexes, and
/// pending reclamation bytes all reach 0, so an expiry storm cannot leave
/// memory parked.
#[test]
fn reaper_drains_an_expiry_storm_to_zero() {
    let keys = 50_000u64;
    let (clock, map) = manual_cache(keys as usize * 2);
    let mut session = map.session();
    let storm = ExpiryStorm::new(keys, 7, 1, 8, 48);
    let horizon = storm.horizon_secs();
    let value = vec![0x5Au8; 48];
    let mut key_buf = [0u8; 24];
    for op in storm {
        let CacheOp::Set { key, exptime, .. } = op else {
            panic!("storms are all sets");
        };
        session
            .set(cache_key_bytes(&mut key_buf, key), &value, 0, exptime)
            .unwrap();
    }
    assert_eq!(map.len(), keys);
    let before = map.stats();
    assert!(before.value_bytes > 0);

    clock.advance(horizon as u32 + 1);
    let mut sweeps = 0;
    while !map.is_empty() || map.retired_indexes() > 0 || map.stats().pending_reclaim_bytes > 0 {
        session.reap();
        sweeps += 1;
        assert!(sweeps < 32, "storm failed to drain after {sweeps} sweeps");
    }
    let after = map.stats();
    assert_eq!(after.expired, keys, "every entry expired exactly once");
    assert_eq!(after.value_bytes, 0, "all record bytes reclaimed");
    assert_eq!(map.retired_indexes(), 0, "no retired indexes parked");
    assert_eq!(after.pending_reclaim_bytes, 0, "no bytes awaiting the GC");
    session.quiesce();
}

/// Four threads against one clock: a toucher keeps one hot key alive by
/// extending its deadline, two churners set/get/delete short-TTL keys, and
/// the driver advances time. The hot key must be served at every read (its
/// deadline is always pushed out ahead of the clock), churned keys must
/// never be served past theirs, and nothing may panic or deadlock.
#[test]
fn touch_extends_deadlines_race_free_under_churn() {
    let (clock, map) = manual_cache(1 << 14);
    let hot = b"hot:key";
    {
        let mut session = map.session();
        session.set(hot, b"alive", 0, 1_000).unwrap();
    }
    let stop = AtomicBool::new(false);
    let hot_reads = AtomicU64::new(0);
    let stale_serves = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Toucher: push the hot deadline far past anything the driver
        // advances, forever.
        scope.spawn(|| {
            let mut session = map.session();
            while !stop.load(Ordering::Relaxed) {
                assert!(session.touch(hot, 1_000), "hot key vanished under touch");
                session.quiesce();
            }
        });
        // Two churners over a disjoint key range with 1–3 s TTLs; every
        // get cross-checks the lazy-expiry guarantee from a racing thread.
        for worker in 0..2u64 {
            let (map, stop, stale_serves) = (&map, &stop, &stale_serves);
            scope.spawn(move || {
                let mut session = map.session();
                let mut key_buf = [0u8; 24];
                let mut x = 0x1234_5678u64 ^ (worker << 32);
                while !stop.load(Ordering::Relaxed) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let id = 1_000 + (x >> 33) % 512;
                    let key = cache_key_bytes(&mut key_buf, id);
                    match (x >> 8) % 4 {
                        0 => {
                            let ttl = 1 + (x % 3) as i64;
                            let deadline = map.now() + ttl as u32;
                            session.set(key, &deadline.to_le_bytes(), 0, ttl).unwrap();
                        }
                        1 => {
                            session.delete(key);
                        }
                        _ => {
                            // The stored value carries the deadline the
                            // writer computed. The writer's and the engine's
                            // clock samples can differ by a few driver ticks
                            // under preemption, so allow that much skew —
                            // a real lazy-expiry bug serves entries
                            // *arbitrarily* far past their deadline and
                            // blows through any skew allowance.
                            let served = session.get_with(key, |view| {
                                let mut b = [0u8; 4];
                                b.copy_from_slice(view.value);
                                u32::from_le_bytes(b)
                            });
                            if let Some(deadline) = served {
                                if map.now() > deadline + 8 {
                                    stale_serves.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    session.quiesce();
                }
            });
        }
        // Reader on the hot key: must hit every time.
        scope.spawn(|| {
            let mut session = map.session();
            while !stop.load(Ordering::Relaxed) {
                let hit = session.get_with(hot, |view| view.value.to_vec());
                assert_eq!(
                    hit.as_deref(),
                    Some(&b"alive"[..]),
                    "hot key must stay servable"
                );
                hot_reads.fetch_add(1, Ordering::Relaxed);
                session.quiesce();
            }
        });
        // Driver: advance time well past the churners' TTLs (but never
        // past the toucher's 1000 s horizon within one refresh), reaping
        // as a background reaper would.
        let mut session = map.session();
        for _ in 0..60 {
            clock.advance(1);
            session.reap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        hot_reads.load(Ordering::Relaxed) > 0,
        "reader made progress"
    );
    assert_eq!(
        stale_serves.load(Ordering::Relaxed),
        0,
        "a churned key was served past its deadline"
    );
    // The hot key survived 60 s of clock because touch kept moving its
    // deadline; one final check through a fresh session.
    let mut session = map.session();
    assert_eq!(
        session.get_with(hot, |v| v.value.to_vec()).as_deref(),
        Some(&b"alive"[..])
    );
    session.quiesce();
}
