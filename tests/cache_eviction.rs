//! Eviction under a memory budget: the cache persona's memory-awareness.
//!
//! * Filling far past the budget must keep `index_bytes + record bytes`
//!   under the watermark at every observation point — the budget is a hard
//!   ceiling enforced inline by stores, not advice for a lagging janitor.
//! * On a zipfian (hot-set) trace, LRU eviction must beat FIFO on
//!   hit-ratio: recency tracking keeps the hot set resident where insert
//!   order evicts it blindly.
//! * An evicted key answers a miss (`NOT_FOUND` on the wire), and **never**
//!   a stale value — re-filling after eviction serves exactly the newest
//!   write.

use dlht_core::{CacheConfig, CacheMap, CacheSession, EvictionPolicy};
use dlht_workloads::{cache_key_bytes, CacheOp, ZipfianChurn};
use std::collections::HashMap;

const VALUE_LEN: usize = 64;

fn budgeted(policy: EvictionPolicy, capacity: usize, budget: u64) -> CacheMap {
    CacheMap::new(CacheConfig {
        capacity,
        memory_budget: budget,
        eviction: policy,
        ..CacheConfig::default()
    })
}

/// Pick a budget that holds roughly `fraction_permille`‰ of `population`
/// entries' record bytes on top of the index (a budget below the index
/// alone would, by design, evict everything).
fn budget_for(population: u64, fraction_permille: u64) -> u64 {
    let probe = CacheMap::new(CacheConfig {
        capacity: population as usize * 2,
        memory_budget: 0,
        ..CacheConfig::default()
    });
    let mut session = probe.session();
    let value = vec![0u8; VALUE_LEN];
    let mut key_buf = [0u8; 24];
    for id in 0..population {
        session
            .set(cache_key_bytes(&mut key_buf, id), &value, 0, 0)
            .unwrap();
    }
    let stats = probe.stats();
    stats.index_bytes + stats.value_bytes * fraction_permille / 1000
}

/// Insert 4× more data than the budget admits; after every store the
/// resident gauge must already be back under the watermark.
#[test]
fn resident_bytes_never_exceed_the_budget() {
    let population = 40_000u64;
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo] {
        let budget = budget_for(population, 250);
        let map = budgeted(policy, population as usize * 2, budget);
        let mut session = map.session();
        let value = vec![0xEEu8; VALUE_LEN];
        let mut key_buf = [0u8; 24];
        for id in 0..population {
            session
                .set(cache_key_bytes(&mut key_buf, id), &value, 0, 0)
                .unwrap();
            if id % 1024 == 0 {
                let stats = map.stats();
                assert!(
                    stats.total_bytes() <= budget,
                    "{policy:?}: resident {} B over budget {} B after {} stores",
                    stats.total_bytes(),
                    budget,
                    id + 1
                );
            }
        }
        session.reap();
        let stats = map.stats();
        assert!(
            stats.total_bytes() <= budget,
            "{policy:?}: final state over budget"
        );
        assert!(
            stats.evicted > 0,
            "{policy:?}: filling 4x the budget must evict"
        );
        assert!(
            map.len() < population,
            "{policy:?}: not everything can be resident"
        );
        assert!(
            !map.is_empty(),
            "{policy:?}: eviction must not empty the cache"
        );
        session.quiesce();
    }
}

/// Same seed, same zipfian cache-aside trace, same budget — only the
/// eviction policy differs. LRU must end with strictly more hits.
#[test]
fn lru_beats_fifo_on_zipfian_hit_ratio() {
    let population = 20_000u64;
    let budget = budget_for(population, 200);
    let mut hits_by_policy = Vec::new();
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo] {
        let map = budgeted(policy, population as usize * 2, budget);
        let mut session = map.session();
        let mut churn = ZipfianChurn::new(population, 0.99, 0xFEED, VALUE_LEN);
        let value = vec![0xABu8; VALUE_LEN];
        let mut key_buf = [0u8; 24];
        let mut hits = 0u64;
        let mut lookups = 0u64;
        for _ in 0..300_000 {
            let op = churn.next_op();
            let key = cache_key_bytes(&mut key_buf, op.key());
            match op {
                CacheOp::Get { .. } => {
                    lookups += 1;
                    if session.get_with(key, |_| ()).is_some() {
                        hits += 1;
                    } else {
                        session.set(key, &value, 0, 0).unwrap();
                    }
                }
                CacheOp::Set { .. } => {
                    session.set(key, &value, 0, 0).unwrap();
                }
                CacheOp::Delete { .. } => {
                    session.delete(key);
                }
                CacheOp::Touch { .. } => {
                    session.touch(key, 0);
                }
            }
        }
        let stats = map.stats();
        assert!(stats.total_bytes() <= budget, "{policy:?}: over budget");
        assert!(
            stats.evicted > 0,
            "{policy:?}: the trace must overflow the budget"
        );
        hits_by_policy.push((policy, hits, lookups));
        session.quiesce();
    }
    let (_, lru_hits, lru_lookups) = hits_by_policy[0];
    let (_, fifo_hits, fifo_lookups) = hits_by_policy[1];
    assert_eq!(
        lru_lookups, fifo_lookups,
        "identical traces by construction"
    );
    assert!(
        lru_hits > fifo_hits,
        "LRU must beat FIFO on a hot-set trace: {lru_hits} vs {fifo_hits} hits \
         over {lru_lookups} lookups"
    );
}

/// Track every write's generation; under heavy eviction a read returns
/// either the newest generation or nothing — an evicted key must never
/// resurrect an old value, and deleting it reports absent.
#[test]
fn evicted_keys_answer_not_found_never_stale() {
    let population = 8_000u64;
    let budget = budget_for(population, 150);
    let map = budgeted(EvictionPolicy::Lru, population as usize * 2, budget);
    let mut session = map.session();
    let mut newest: HashMap<u64, u64> = HashMap::new();
    let mut key_buf = [0u8; 24];

    let mut write = |session: &mut CacheSession<'_>,
                     newest: &mut HashMap<u64, u64>,
                     id: u64,
                     generation: u64| {
        let key = cache_key_bytes(&mut key_buf, id);
        let mut value = vec![0u8; VALUE_LEN];
        value[..8].copy_from_slice(&generation.to_le_bytes());
        session.set(key, &value, 0, 0).unwrap();
        newest.insert(id, generation);
    };

    // Two full passes: generation 1 then generation 2, each overflowing the
    // budget several times over, so plenty of generation-1 entries get
    // evicted before (and after) their generation-2 rewrite.
    for generation in 1..=2u64 {
        for id in 0..population {
            write(&mut session, &mut newest, id, generation * 1_000_000 + id);
        }
    }

    let mut resident = 0u64;
    let mut evicted = 0u64;
    for id in 0..population {
        let mut kb = [0u8; 24];
        let key = cache_key_bytes(&mut kb, id);
        match session.get_with(key, |view| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&view.value[..8]);
            u64::from_le_bytes(b)
        }) {
            Some(generation) => {
                resident += 1;
                assert_eq!(
                    generation, newest[&id],
                    "key {id} served generation {generation}, newest is {}",
                    newest[&id]
                );
            }
            None => {
                evicted += 1;
                // The wire answer for this state is NOT_FOUND, and so says
                // the engine: deleting an absent key reports false.
                assert!(!session.delete(key), "evicted key {id} must be absent");
            }
        }
    }
    assert!(
        evicted > 0,
        "the trace must actually evict ({resident} resident)"
    );
    assert!(resident > 0, "the budget holds a working set");
    session.quiesce();
}
