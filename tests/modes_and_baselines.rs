//! Integration tests across the public modes (Inlined / Allocator / HashSet /
//! single-thread) and the baseline implementations driven through the shared
//! `KvBackend` interface.

use dlht::alloc::AllocatorKind;
use dlht::{DlhtAllocMap, DlhtConfig, DlhtSet, KvBackend, SingleThreadMap};
use dlht_baselines::MapKind;
use dlht_workloads::{prepopulate, run_workload, WorkloadSpec};
use std::time::Duration;

#[test]
fn every_map_kind_survives_the_default_workloads() {
    for kind in MapKind::all() {
        let map = kind.build(20_000);
        prepopulate(map.as_ref(), 2_000);
        let get = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(2_000, 2, Duration::from_millis(25)),
        );
        assert!(get.total_ops > 0, "{}", kind.name());
        assert_eq!(
            map.len(),
            2_000,
            "{}: Get workload must not mutate",
            kind.name()
        );
    }
}

#[test]
fn allocator_mode_namespaces_isolate_tables() {
    let map = DlhtAllocMap::new(
        DlhtConfig::for_capacity(10_000)
            .with_variable_size(true)
            .with_namespaces(true),
        AllocatorKind::Pool.build(),
        0,
        0,
    );
    let mut s = map.session();
    for id in 0..500u64 {
        s.insert(1, &id.to_le_bytes(), format!("user-{id}").as_bytes())
            .unwrap();
        s.insert(2, &id.to_le_bytes(), &[id as u8; 64]).unwrap();
    }
    assert_eq!(map.len(), 1_000);
    for id in (0..500u64).step_by(7) {
        assert_eq!(
            s.get(1, &id.to_le_bytes()).unwrap(),
            format!("user-{id}").into_bytes()
        );
        assert_eq!(s.get(2, &id.to_le_bytes()).unwrap(), vec![id as u8; 64]);
    }
    // Deleting from namespace 1 leaves namespace 2 intact.
    for id in 0..500u64 {
        assert!(s.delete(1, &id.to_le_bytes()));
    }
    s.quiesce();
    assert_eq!(map.len(), 500);
    assert!(s.get(1, &3u64.to_le_bytes()).is_none());
    assert!(s.get(2, &3u64.to_le_bytes()).is_some());
}

#[test]
fn hashset_lock_manager_is_exclusive_under_contention() {
    let locks = DlhtSet::with_capacity(1_024);
    let mut holders = 0u32;
    // Single-threaded sanity of try_lock_all / unlock_all semantics.
    assert!(locks.try_lock_all(&[1, 2, 3]).unwrap());
    assert!(!locks.try_lock_all(&[3, 4]).unwrap());
    assert!(!locks.contains(4), "partial acquisition must roll back");
    locks.unlock_all(&[1, 2, 3]);
    assert!(locks.is_empty());
    holders += 1;
    assert_eq!(holders, 1);
}

#[test]
fn single_thread_variant_matches_concurrent_results() {
    let concurrent = dlht::DlhtMap::with_capacity(10_000);
    let mut single = SingleThreadMap::with_capacity(10_000);
    let mut state = 42u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..20_000 {
        let k = rng() % 2_000;
        match rng() % 4 {
            0 => {
                let a = concurrent
                    .insert(k, k)
                    .map(|o| o.inserted())
                    .unwrap_or(false);
                let b = single.insert(k, k).map(|o| o.inserted()).unwrap_or(false);
                assert_eq!(a, b);
            }
            1 => assert_eq!(concurrent.delete(k), single.delete(k)),
            2 => assert_eq!(concurrent.get(k), single.get(k)),
            _ => assert_eq!(concurrent.put(k, k + 9), single.put(k, k + 9)),
        }
    }
    assert_eq!(concurrent.len(), single.len());
}

#[test]
fn dlht_and_baselines_agree_on_a_deterministic_trace() {
    // Apply the same operation trace to DLHT and to each baseline that
    // supports the full API; final contents must agree.
    let trace: Vec<(u8, u64)> = (0..5_000u64)
        .map(|i| (((i * 2_654_435_761) % 4) as u8, (i * 31) % 700))
        .collect();
    let reference = MapKind::Dlht.build(10_000);
    for kind in [
        MapKind::Clht,
        MapKind::Growt,
        MapKind::Cuckoo,
        MapKind::Tbb,
        MapKind::Mica,
    ] {
        let candidate = kind.build(10_000);
        for &(op, key) in &trace {
            match op {
                0 => {
                    let _ = candidate.insert(key, key);
                    let _ = reference.insert(key, key);
                }
                1 => {
                    candidate.delete(key);
                    reference.delete(key);
                }
                2 => {
                    candidate.get(key);
                    reference.get(key);
                }
                _ => {
                    // Updates: skip for maps without Put support (CLHT).
                    if candidate.features().non_blocking_puts {
                        candidate.put(key, key + 1);
                        reference.put(key, key + 1);
                    }
                }
            }
        }
        for key in 0..700u64 {
            assert_eq!(
                candidate.get(key).is_some(),
                reference.get(key).is_some(),
                "{} diverged from DLHT on key {key}",
                kind.name()
            );
        }
        // Reset the reference for the next baseline by replaying deletes.
        for key in 0..700u64 {
            reference.delete(key);
        }
    }
}
