//! Memcache text-protocol battery: poison lines, seeded fuzz, a
//! BTreeMap-oracle differential replay, and a TCP end-to-end session.
//!
//! The parser's contract under attack is the point: every malformed line
//! must be *answered* (`ERROR`/`CLIENT_ERROR`/`SERVER_ERROR`), never
//! panicked on, and must leave no half-executed state behind — a rejected
//! storage header still swallows its data block so the next pipelined
//! command parses cleanly, and framing-destroying input closes the
//! connection instead of guessing. The differential replay mirrors
//! `model_differential.rs`: seeded op sequences run through the real
//! protocol text against a `BTreeMap` model with explicit TTL bookkeeping
//! on a manual clock.

use dlht_core::{CacheConfig, CacheMap, CacheSession, ManualClock};
use dlht_net::memcache::MemcacheConn;
use dlht_net::{Drive, ServerConfig};
use dlht_util::splitmix64 as splitmix;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn run(
    conn: &mut MemcacheConn,
    session: &mut CacheSession<'_>,
    input: &[u8],
) -> (Vec<u8>, usize, Drive) {
    let mut out = Vec::new();
    let (consumed, drive) = conn.process(session, input, &mut out);
    (out, consumed, drive)
}

/// A response is "an answer" if every line of it is a protocol token —
/// poison must never produce silence on a complete line, and never a panic.
fn is_error_answer(out: &[u8]) -> bool {
    !out.is_empty()
        && (out.starts_with(b"ERROR")
            || out.starts_with(b"CLIENT_ERROR")
            || out.starts_with(b"SERVER_ERROR"))
}

/// The 15 hand-written poison lines: each one a distinct way to hold the
/// protocol wrong. Sent to a fresh connection, each must be answered with
/// an error (or close the connection for framing poison) — and must leave
/// the cache empty.
#[test]
fn poison_lines_are_answered_never_panicked_on() {
    let long_key = "k".repeat(251);
    let huge_count = "set k 0 0 18446744073709551616\r\n\r\n".to_string();
    let poisons: Vec<(Vec<u8>, bool)> = vec![
        // (input, framing_destroying: connection must close)
        (b"bogus command\r\n".to_vec(), false), // 1: unknown command
        (b"\r\n".to_vec(), false),              // 2: empty line
        (b"get\r\n".to_vec(), false),           // 3: get with no key
        (format!("get {long_key}\r\n").into_bytes(), false), // 4: oversize key
        (
            format!("set {long_key} 0 0 3\r\nabc\r\n").into_bytes(),
            false,
        ), // 5: oversize store key
        (b"set k notanumber 0 3\r\nabc\r\n".to_vec(), false), // 6: bad flags
        (b"set k 0 zzz 3\r\nabc\r\n".to_vec(), false), // 7: bad exptime
        (b"set k 0 0 banana\r\n".to_vec(), true), // 8: unparseable byte count
        (huge_count.into_bytes(), true),        // 9: byte count overflows u64
        (b"set k 0 0 2097152\r\n".to_vec(), true), // 10: value above MAX_VALUE
        (b"set k 0 0 3\r\nabcXX".to_vec(), true), // 11: data block without CRLF
        (b"set k 0 0 3 maybe\r\nabc\r\n".to_vec(), false), // 12: junk where noreply goes
        (b"incr k five\r\n".to_vec(), false),   // 13: non-numeric delta
        (b"touch k\r\n".to_vec(), false),       // 14: touch missing exptime
        (b"delete\r\n".to_vec(), false),        // 15: delete with no key
    ];
    assert_eq!(poisons.len(), 15);
    for (i, (poison, closes)) in poisons.iter().enumerate() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, _, drive) = run(&mut conn, &mut session, poison);
        assert!(
            is_error_answer(&out),
            "poison #{}: expected an error answer, got {:?}",
            i + 1,
            String::from_utf8_lossy(&out)
        );
        if *closes {
            assert!(
                matches!(drive, Drive::CloseError),
                "poison #{}: framing poison must close the connection",
                i + 1
            );
        } else {
            assert!(
                matches!(drive, Drive::Keep),
                "poison #{}: recoverable poison must keep the connection",
                i + 1
            );
            // No half-executed state: the very next command works normally.
            let (out, _, drive) = run(&mut conn, &mut session, b"set ok 0 0 2\r\nhi\r\nget ok\r\n");
            assert_eq!(
                out,
                b"STORED\r\nVALUE ok 0 2\r\nhi\r\nEND\r\n".to_vec(),
                "poison #{}: connection must recover",
                i + 1
            );
            assert!(matches!(drive, Drive::Keep));
            session.delete(b"ok");
        }
        assert_eq!(map.len(), 0, "poison #{}: nothing may be stored", i + 1);
        session.quiesce();
    }
}

/// A poison command split across reads at every byte boundary behaves
/// exactly like the same bytes sent whole (the CRLF-split case from the
/// issue: the split must not turn a reject into a store or a panic).
#[test]
fn poison_split_across_reads_behaves_like_whole() {
    let poison = b"set k notanumber 0 3\r\nabc\r\nget k\r\n";
    for split in 1..poison.len() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let mut pending: Vec<u8> = Vec::new();
        let mut out = Vec::new();
        for part in [&poison[..split], &poison[split..]] {
            pending.extend_from_slice(part);
            let (consumed, drive) = conn.process(&mut session, &pending, &mut out);
            assert!(matches!(drive, Drive::Keep), "split at {split}");
            pending.drain(..consumed);
        }
        assert_eq!(
            out,
            b"CLIENT_ERROR bad command line format\r\nEND\r\n".to_vec(),
            "split at {split}"
        );
        assert_eq!(map.len(), 0, "split at {split}: reject must not store");
    }
}

/// Seeded random byte soup — printable tokens, raw bytes, truncated
/// commands — fed in random-sized chunks. The parser must uphold its
/// consumed-bytes contract and never panic, whatever arrives.
#[test]
fn seeded_fuzz_never_panics_and_never_overconsumes() {
    let vocab: &[&[u8]] = &[
        b"get",
        b"gets",
        b"set",
        b"add",
        b"replace",
        b"delete",
        b"touch",
        b"incr",
        b"decr",
        b"flush_all",
        b"stats",
        b"version",
        b"noreply",
        b"k",
        b"0",
        b"-1",
        b"3",
        b"abc",
        b"99999999999999999999",
        b"\xff\xfe",
        b" ",
        b"\r",
        b"\n",
        b"\r\n",
        b"quit",
    ];
    for seed in 0..40u64 {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut input = Vec::new();
        for _ in 0..200 {
            let tok = vocab[(splitmix(&mut rng) as usize) % vocab.len()];
            input.extend_from_slice(tok);
            if splitmix(&mut rng).is_multiple_of(3) {
                input.extend_from_slice(b"\r\n");
            } else if splitmix(&mut rng).is_multiple_of(7) {
                input.push(b' ');
            }
        }
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let mut pending: Vec<u8> = Vec::new();
        let mut offset = 0usize;
        while offset < input.len() {
            let chunk = 1 + (splitmix(&mut rng) as usize) % 64;
            let end = (offset + chunk).min(input.len());
            pending.extend_from_slice(&input[offset..end]);
            offset = end;
            let mut out = Vec::new();
            let (consumed, drive) = conn.process(&mut session, &pending, &mut out);
            assert!(consumed <= pending.len(), "seed {seed}: overconsumed");
            pending.drain(..consumed);
            if !matches!(drive, Drive::Keep) {
                // Connection-level close: the server would drop the peer;
                // model that with a fresh connection on the rest.
                conn = MemcacheConn::new();
                pending.clear();
            }
        }
        session.quiesce();
    }
}

// ---------------------------------------------------------------------------
// Differential replay against a BTreeMap oracle
// ---------------------------------------------------------------------------

/// The oracle entry: what a correct cache must serve for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ModelEntry {
    flags: u32,
    value: Vec<u8>,
    /// Absolute cache-clock deadline (0 = never). Same convention as the
    /// engine: dead once `deadline <= now`.
    deadline: u32,
}

struct Model {
    entries: BTreeMap<Vec<u8>, ModelEntry>,
    now: u32,
}

impl Model {
    fn live(&self, key: &[u8]) -> Option<&ModelEntry> {
        self.entries
            .get(key)
            .filter(|e| e.deadline == 0 || e.deadline > self.now)
    }

    fn deadline_for(&self, exptime: i64) -> u32 {
        match exptime {
            0 => 0,
            e if e < 0 => 1,
            e => (self.now as u64 + e as u64).min(u32::MAX as u64) as u32,
        }
    }
}

/// Seeded sequences of set/add/replace/delete/touch/get (plus clock
/// advances), rendered as real protocol text through [`MemcacheConn`], with
/// every response validated against the model *before* the model advances.
#[test]
fn differential_replay_against_btreemap_oracle() {
    let stress = std::env::var("DLHT_STRESS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1);
    for seed in 0..8 * stress {
        let clock = Arc::new(ManualClock::new(1));
        let map = CacheMap::with_clock(CacheConfig::default(), clock.clone());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let mut model = Model {
            entries: BTreeMap::new(),
            now: 1,
        };
        let mut rng = seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(9);
        for step in 0..600 {
            let key = format!("key{}", splitmix(&mut rng) % 24).into_bytes();
            let op = splitmix(&mut rng) % 100;
            let (input, expected): (Vec<u8>, Vec<u8>) = if op < 35 {
                // get
                let expected = match model.live(&key) {
                    Some(e) => {
                        let mut r = Vec::new();
                        r.extend_from_slice(b"VALUE ");
                        r.extend_from_slice(&key);
                        r.extend_from_slice(
                            format!(" {} {}\r\n", e.flags, e.value.len()).as_bytes(),
                        );
                        r.extend_from_slice(&e.value);
                        r.extend_from_slice(b"\r\nEND\r\n");
                        r
                    }
                    None => b"END\r\n".to_vec(),
                };
                let mut input = b"get ".to_vec();
                input.extend_from_slice(&key);
                input.extend_from_slice(b"\r\n");
                (input, expected)
            } else if op < 75 {
                // set / add / replace
                let flags = (splitmix(&mut rng) % 1000) as u32;
                let exptime = match splitmix(&mut rng) % 4 {
                    0 => 0i64,
                    1 => -1,
                    _ => 1 + (splitmix(&mut rng) % 9) as i64,
                };
                let value = format!("v{}", splitmix(&mut rng) % 1000).into_bytes();
                let verb = match splitmix(&mut rng) % 3 {
                    0 => "set",
                    1 => "add",
                    _ => "replace",
                };
                let alive = model.live(&key).is_some();
                let stores = match verb {
                    "set" => true,
                    "add" => !alive,
                    _ => alive,
                };
                if stores {
                    model.entries.insert(
                        key.clone(),
                        ModelEntry {
                            flags,
                            value: value.clone(),
                            deadline: model.deadline_for(exptime),
                        },
                    );
                }
                let input = {
                    let mut i = format!("{verb} ").into_bytes();
                    i.extend_from_slice(&key);
                    i.extend_from_slice(
                        format!(" {flags} {exptime} {}\r\n", value.len()).as_bytes(),
                    );
                    i.extend_from_slice(&value);
                    i.extend_from_slice(b"\r\n");
                    i
                };
                let expected = if stores {
                    b"STORED\r\n".to_vec()
                } else {
                    b"NOT_STORED\r\n".to_vec()
                };
                (input, expected)
            } else if op < 85 {
                // delete
                let alive = model.live(&key).is_some();
                model.entries.remove(&key);
                let mut input = b"delete ".to_vec();
                input.extend_from_slice(&key);
                input.extend_from_slice(b"\r\n");
                let expected = if alive {
                    b"DELETED\r\n".to_vec()
                } else {
                    b"NOT_FOUND\r\n".to_vec()
                };
                (input, expected)
            } else if op < 95 {
                // touch
                let exptime = 1 + (splitmix(&mut rng) % 9) as i64;
                let alive = model.live(&key).is_some();
                if alive {
                    let deadline = model.deadline_for(exptime);
                    model
                        .entries
                        .get_mut(&key)
                        .expect("live entry exists")
                        .deadline = deadline;
                }
                let mut input = b"touch ".to_vec();
                input.extend_from_slice(&key);
                input.extend_from_slice(format!(" {exptime}\r\n").as_bytes());
                let expected = if alive {
                    b"TOUCHED\r\n".to_vec()
                } else {
                    b"NOT_FOUND\r\n".to_vec()
                };
                (input, expected)
            } else {
                // advance the clock 1–3 seconds: entries cross their
                // deadlines between commands, exactly like wall time.
                let delta = 1 + (splitmix(&mut rng) % 3) as u32;
                clock.advance(delta);
                model.now += delta;
                continue;
            };
            let (out, consumed, drive) = run(&mut conn, &mut session, &input);
            assert_eq!(consumed, input.len(), "seed {seed} step {step}");
            assert!(matches!(drive, Drive::Keep), "seed {seed} step {step}");
            assert_eq!(
                out,
                expected,
                "seed {seed} step {step}: {:?} answered {:?}, model wanted {:?}",
                String::from_utf8_lossy(&input),
                String::from_utf8_lossy(&out),
                String::from_utf8_lossy(&expected)
            );
            if step % 97 == 0 {
                session.reap();
            }
        }
        // Final state check: after a full reap the live populations agree
        // exactly (the reaper removes the expired tail, nothing else).
        session.reap();
        let model_live = model
            .entries
            .iter()
            .filter(|(_, e)| e.deadline == 0 || e.deadline > model.now)
            .count() as u64;
        assert_eq!(
            map.len(),
            model_live,
            "seed {seed}: live populations diverged"
        );
        session.quiesce();
    }
}

// ---------------------------------------------------------------------------
// TCP end-to-end
// ---------------------------------------------------------------------------

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line
}

/// A stock memcache session against the real server: text in, text out,
/// through the event loop, worker pool, and a real `CacheSession`.
#[test]
fn tcp_end_to_end_memcache_session() {
    let cache = Arc::new(CacheMap::new(CacheConfig {
        memory_budget: 0,
        ..CacheConfig::default()
    }));
    let server = dlht_net::bind_ephemeral_memcache(cache.clone(), ServerConfig::default());
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    send_line(&mut writer, "set greeting 7 0 5\r\nhello\r\n");
    assert_eq!(read_line(&mut reader), "STORED\r\n");
    send_line(&mut writer, "get greeting\r\n");
    assert_eq!(read_line(&mut reader), "VALUE greeting 7 5\r\n");
    assert_eq!(read_line(&mut reader), "hello\r\n");
    assert_eq!(read_line(&mut reader), "END\r\n");
    send_line(&mut writer, "add greeting 0 0 2\r\nxx\r\n");
    assert_eq!(read_line(&mut reader), "NOT_STORED\r\n");
    send_line(&mut writer, "touch greeting 60\r\n");
    assert_eq!(read_line(&mut reader), "TOUCHED\r\n");
    send_line(&mut writer, "set n 0 0 1\r\n5\r\nincr n 37\r\n");
    assert_eq!(read_line(&mut reader), "STORED\r\n");
    assert_eq!(read_line(&mut reader), "42\r\n");
    send_line(&mut writer, "delete greeting\r\n");
    assert_eq!(read_line(&mut reader), "DELETED\r\n");
    send_line(&mut writer, "get greeting\r\n");
    assert_eq!(read_line(&mut reader), "END\r\n");
    send_line(&mut writer, "stats\r\n");
    let mut saw_items = false;
    loop {
        let line = read_line(&mut reader);
        if line == "END\r\n" {
            break;
        }
        assert!(line.starts_with("STAT "), "stats line: {line:?}");
        if line.starts_with("STAT curr_items 1") {
            saw_items = true;
        }
    }
    assert!(saw_items, "stats must report the one remaining item");

    // quit closes the connection cleanly (EOF, no error counted).
    send_line(&mut writer, "quit\r\n");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "quit answers nothing, then EOF");
    let counters = server.counters();
    assert_eq!(counters.protocol_errors, 0, "clean session, clean quit");
    server.shutdown();
}

/// Framing poison over TCP: the server answers the error, then closes —
/// and other connections keep working.
#[test]
fn tcp_framing_poison_closes_only_its_connection() {
    let cache = Arc::new(CacheMap::new(CacheConfig::default()));
    let server = dlht_net::bind_ephemeral_memcache(cache.clone(), ServerConfig::default());

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    send_line(&mut writer, "set k 0 0 banana\r\n");
    assert_eq!(
        read_line(&mut reader),
        "CLIENT_ERROR bad data chunk length\r\n"
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closed after framing poison");

    // The server is still fine for a well-behaved peer.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    send_line(&mut writer, "set k 0 0 1\r\nv\r\nget k\r\n");
    assert_eq!(read_line(&mut reader), "STORED\r\n");
    assert_eq!(read_line(&mut reader), "VALUE k 0 1\r\n");
    assert_eq!(read_line(&mut reader), "v\r\n");
    assert_eq!(read_line(&mut reader), "END\r\n");
    let counters = server.counters();
    assert_eq!(counters.protocol_errors, 1, "the poison counted once");
    server.shutdown();
}
