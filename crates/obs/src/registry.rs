//! The metrics registry: named [`Counter`]/[`Gauge`]/[`Histogram`]
//! instruments plus callback-backed metrics, snapshotted into Prometheus
//! text or JSON.
//!
//! Counters and gauges are striped across cache-line-padded per-lane
//! atomic cells (one lane per worker thread) so hot-path increments never
//! contend; reads fold the lanes. Registration is cold-path (startup) and
//! may panic on programmer error (duplicate names); everything the server
//! data path touches is wait-free and panic-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dlht_util::{CachePadded, Mutex};

use crate::hist::Histogram;
use crate::json::Json;
use crate::HistogramSnapshot;

/// Round a lane-count hint up to a power of two (min 1) so lane selection
/// is a mask, not a modulo.
fn lane_count(hint: usize) -> usize {
    hint.max(1).next_power_of_two()
}

#[derive(Debug)]
struct Lanes {
    cells: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
}

impl Lanes {
    fn new(hint: usize) -> Arc<Lanes> {
        let n = lane_count(hint);
        Arc::new(Lanes {
            cells: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            mask: n - 1,
        })
    }

    // HOT: per-request counter bump on the server data path; panic-free.
    #[inline]
    fn add(&self, lane: usize, n: u64) {
        // ORDERING: statistical counter cells — nothing is published through
        // them and reads tolerate skew, so Relaxed.
        if let Some(cell) = self.cells.get(lane & self.mask) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    // HOT: gauge decrement may run on any thread (drop guards); panic-free.
    #[inline]
    fn sub(&self, lane: usize, n: u64) {
        // ORDERING: see add() — per-lane cells may individually wrap, the
        // wrapping_add fold in value() restores the true total.
        if let Some(cell) = self.cells.get(lane & self.mask) {
            cell.fetch_sub(n, Ordering::Relaxed);
        }
    }

    fn value(&self) -> u64 {
        // ORDERING: Relaxed — a scrape is a statistical snapshot; lanes are
        // folded with wrapping_add so a lane that went "negative" (inc on
        // lane A, dec on lane B) still sums to the true non-negative total.
        self.cells
            .iter()
            .fold(0u64, |acc, c| acc.wrapping_add(c.load(Ordering::Relaxed)))
    }
}

/// A monotonically increasing counter, striped per lane. Clones share the
/// cells.
#[derive(Debug, Clone)]
pub struct Counter {
    lanes: Arc<Lanes>,
}

impl Counter {
    /// A registry-independent counter (tests, ad-hoc use).
    pub fn unregistered(lanes_hint: usize) -> Counter {
        Counter {
            lanes: Lanes::new(lanes_hint),
        }
    }

    // HOT: called per request/frame on the server data path.
    /// Add `n` to the lane's cell, wait-free.
    #[inline]
    pub fn add(&self, lane: usize, n: u64) {
        self.lanes.add(lane, n);
    }

    // HOT: called per request/frame on the server data path.
    /// Increment the lane's cell by one, wait-free.
    #[inline]
    pub fn incr(&self, lane: usize) {
        self.lanes.add(lane, 1);
    }

    /// Fold all lanes into the current total.
    pub fn value(&self) -> u64 {
        self.lanes.value()
    }
}

/// A gauge (can go up and down), striped per lane. Increments and
/// decrements may land on different lanes; the folded total is what
/// matters. Clones share the cells.
#[derive(Debug, Clone)]
pub struct Gauge {
    lanes: Arc<Lanes>,
}

impl Gauge {
    /// A registry-independent gauge (tests, ad-hoc use).
    pub fn unregistered(lanes_hint: usize) -> Gauge {
        Gauge {
            lanes: Lanes::new(lanes_hint),
        }
    }

    // HOT: connection-accept path.
    /// Add `n` to the lane's cell, wait-free.
    #[inline]
    pub fn add(&self, lane: usize, n: u64) {
        self.lanes.add(lane, n);
    }

    // HOT: connection-teardown (drop-guard) path.
    /// Subtract `n` from the lane's cell, wait-free.
    #[inline]
    pub fn sub(&self, lane: usize, n: u64) {
        self.lanes.sub(lane, n);
    }

    /// Fold all lanes into the current total (wrapping fold — see module
    /// docs — so cross-lane inc/dec pairs cancel exactly).
    pub fn value(&self) -> u64 {
        self.lanes.value()
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Counter whose value is computed at scrape time (e.g. folded from an
    /// engine's own stats).
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Gauge computed at scrape time.
    GaugeFn(Box<dyn Fn() -> u64 + Send + Sync>),
}

struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// The set of registered metrics. Registration happens at startup (cold,
/// lock-guarded, panics on duplicate name+labels); instruments are handles
/// that record without touching the registry; [`MetricsRegistry::snapshot`]
/// walks the set for exposition.
pub struct MetricsRegistry {
    lanes_hint: usize,
    metrics: Mutex<Vec<Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("lanes_hint", &self.lanes_hint)
            .finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// A registry whose striped instruments get `lanes_hint` lanes
    /// (rounded up to a power of two; pass the worker count).
    pub fn new(lanes_hint: usize) -> MetricsRegistry {
        MetricsRegistry {
            lanes_hint,
            metrics: Mutex::new(Vec::new()),
        }
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name: {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut metrics = self.metrics.lock();
        assert!(
            !metrics.iter().any(|m| m.name == name && m.labels == labels),
            "duplicate metric registered: {name} {labels:?}"
        );
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument,
        });
    }

    /// Register a counter (name should end in `_total`).
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register a labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::unregistered(self.lanes_hint);
        self.register(name, help, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register a labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let g = Gauge::unregistered(self.lanes_hint);
        self.register(name, help, labels, Instrument::Gauge(g.clone()));
        g
    }

    /// Register a latency histogram (values in nanoseconds).
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register a labelled latency histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let h = Histogram::new();
        self.register(name, help, labels, Instrument::Histogram(h.clone()));
        h
    }

    /// Register a counter whose value is computed at scrape time.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Instrument::CounterFn(Box::new(f)));
    }

    /// Register a gauge whose value is computed at scrape time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Instrument::GaugeFn(Box::new(f)));
    }

    /// Capture every metric's current value. Safe to call while recording
    /// continues; callback metrics run their closures here.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        let samples = metrics
            .iter()
            .map(|m| {
                let value = match &m.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.value()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.value()),
                    Instrument::Histogram(h) => SampleValue::Histogram(Box::new(h.snapshot())),
                    Instrument::CounterFn(f) => SampleValue::Counter(f()),
                    Instrument::GaugeFn(f) => SampleValue::Gauge(f()),
                };
                MetricSample {
                    name: m.name.clone(),
                    help: m.help.clone(),
                    labels: m.labels.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// One metric's captured value.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Monotone counter total.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(u64),
    /// Full histogram state (boxed: the 128-bin snapshot dwarfs the
    /// scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One metric captured at snapshot time.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name (no label suffix).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SampleValue,
}

/// A point-in-time capture of the whole registry, renderable as
/// Prometheus text or JSON.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Every registered metric, in registration order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Look up the first sample with this family name (any labels).
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Sum a counter/gauge family across all label sets.
    pub fn total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => *v,
                SampleValue::Histogram(h) => h.count(),
            })
            .sum()
    }

    /// Render Prometheus text exposition format (version 0.0.4): `# HELP`
    /// and `# TYPE` once per family (first-seen order), histogram families
    /// as cumulative `_bucket{le="..."}` + `_sum` + `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen_families: Vec<&str> = Vec::new();
        for sample in &self.samples {
            if !seen_families.iter().any(|f| *f == sample.name) {
                seen_families.push(&sample.name);
                let kind = match sample.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                out.push_str("# HELP ");
                out.push_str(&sample.name);
                out.push(' ');
                out.push_str(&escape_help(&sample.help));
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(&sample.name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
            }
            match &sample.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    out.push_str(&sample.name);
                    render_labels(&mut out, &sample.labels, None);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (upper, cum) in h.cumulative_buckets() {
                        cumulative = cum;
                        out.push_str(&sample.name);
                        out.push_str("_bucket");
                        // `le` bounds stay integer nanoseconds (the `_ns`
                        // family suffix documents the unit) so they render
                        // exactly and parse back losslessly.
                        render_labels(&mut out, &sample.labels, Some(&upper.to_string()));
                        out.push(' ');
                        out.push_str(&cum.to_string());
                        out.push('\n');
                    }
                    out.push_str(&sample.name);
                    out.push_str("_bucket");
                    render_labels(&mut out, &sample.labels, Some("+Inf"));
                    out.push(' ');
                    out.push_str(&cumulative.to_string());
                    out.push('\n');
                    out.push_str(&sample.name);
                    out.push_str("_sum");
                    render_labels(&mut out, &sample.labels, None);
                    out.push(' ');
                    out.push_str(&h.sum_ns().to_string());
                    out.push('\n');
                    out.push_str(&sample.name);
                    out.push_str("_count");
                    render_labels(&mut out, &sample.labels, None);
                    out.push(' ');
                    out.push_str(&h.count().to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON document (schema `dlht-obs/v1`):
    /// counters/gauges as numbers, histograms as percentile summaries plus
    /// non-empty buckets.
    pub fn to_json(&self) -> Json {
        let metrics: Vec<Json> = self
            .samples
            .iter()
            .map(|s| {
                let labels = Json::obj(
                    s.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
                );
                match &s.value {
                    SampleValue::Counter(v) => Json::obj([
                        ("name".to_string(), Json::from(s.name.as_str())),
                        ("type".to_string(), Json::from("counter")),
                        ("labels".to_string(), labels),
                        ("value".to_string(), Json::from(*v)),
                    ]),
                    SampleValue::Gauge(v) => Json::obj([
                        ("name".to_string(), Json::from(s.name.as_str())),
                        ("type".to_string(), Json::from("gauge")),
                        ("labels".to_string(), labels),
                        ("value".to_string(), Json::from(*v)),
                    ]),
                    SampleValue::Histogram(h) => {
                        let sum = h.summary();
                        let buckets: Vec<Json> = h
                            .nonzero_buckets()
                            .map(|(lo, hi, c)| {
                                Json::obj([
                                    ("lower_ns".to_string(), Json::from(lo)),
                                    ("upper_ns".to_string(), Json::from(hi)),
                                    ("count".to_string(), Json::from(c)),
                                ])
                            })
                            .collect();
                        Json::obj([
                            ("name".to_string(), Json::from(s.name.as_str())),
                            ("type".to_string(), Json::from("histogram")),
                            ("labels".to_string(), labels),
                            ("count".to_string(), Json::from(sum.samples)),
                            ("mean_ns".to_string(), Json::from(sum.mean_ns)),
                            ("p50_ns".to_string(), Json::from(sum.p50_ns)),
                            ("p90_ns".to_string(), Json::from(sum.p90_ns)),
                            ("p99_ns".to_string(), Json::from(sum.p99_ns)),
                            ("p999_ns".to_string(), Json::from(sum.p999_ns)),
                            ("max_ns".to_string(), Json::from(sum.max_ns)),
                            ("buckets".to_string(), Json::Arr(buckets)),
                        ])
                    }
                }
            })
            .collect();
        Json::obj([
            ("schema".to_string(), Json::from("dlht-obs/v1")),
            ("metrics".to_string(), Json::Arr(metrics)),
        ])
    }
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_across_lanes() {
        let c = Counter::unregistered(4);
        c.incr(0);
        c.incr(1);
        c.incr(2);
        c.add(3, 10);
        c.incr(7); // wraps to lane 3 via the mask
        assert_eq!(c.value(), 14);
    }

    #[test]
    fn gauges_cancel_across_lanes() {
        let g = Gauge::unregistered(4);
        g.add(0, 5);
        g.sub(2, 3); // different lane than the increment
        assert_eq!(g.value(), 2);
        g.sub(1, 2);
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let reg = MetricsRegistry::new(2);
        let c = reg.counter("test_ops_total", "Operations served");
        let g = reg.gauge_with("test_occupancy", "Live entries", &[("shard", "0")]);
        let h = reg.histogram_with("test_latency_ns", "Latency", &[("op", "get")]);
        reg.gauge_fn("test_workers", "Worker count", &[], || 4);
        c.add(0, 7);
        g.add(0, 3);
        h.record(100);
        h.record(1000);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# HELP test_ops_total Operations served"));
        assert!(text.contains("# TYPE test_ops_total counter"));
        assert!(text.contains("test_ops_total 7"));
        assert!(text.contains("test_occupancy{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE test_latency_ns histogram"));
        assert!(text.contains("test_latency_ns_bucket{op=\"get\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_latency_ns_sum{op=\"get\"} 1100"));
        assert!(text.contains("test_latency_ns_count{op=\"get\"} 2"));
        assert!(text.contains("test_workers 4"));
    }

    #[test]
    fn snapshot_json_has_schema_and_percentiles() {
        let reg = MetricsRegistry::new(1);
        let h = reg.histogram("lat_ns", "latency");
        for _ in 0..100 {
            h.record(500);
        }
        let json = reg.snapshot().to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("dlht-obs/v1")
        );
        let metrics = json.get("metrics").and_then(Json::as_array).unwrap();
        let m = &metrics[0];
        assert_eq!(m.get("type").and_then(Json::as_str), Some("histogram"));
        assert_eq!(m.get("count").and_then(Json::as_u64), Some(100));
        assert!(m.get("p99_ns").and_then(Json::as_u64).unwrap() <= 500);
        // Reparses cleanly (integral f64s come back as the exact variant,
        // so compare fields, not variants).
        let reparsed = Json::parse(&json.render()).unwrap();
        let m = &reparsed.get("metrics").and_then(Json::as_array).unwrap()[0];
        assert_eq!(m.get("mean_ns").and_then(Json::as_f64), Some(500.0));
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_registration_panics() {
        let reg = MetricsRegistry::new(1);
        let _a = reg.counter("dup_total", "a");
        let _b = reg.counter("dup_total", "b");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new(1);
        let _g = reg.gauge_with("esc", "x", &[("k", "a\"b\\c")]);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("esc{k=\"a\\\"b\\\\c\"} 0"));
    }

    #[test]
    fn snapshot_total_sums_label_sets() {
        let reg = MetricsRegistry::new(1);
        let a = reg.counter_with("multi_total", "x", &[("op", "get")]);
        let b = reg.counter_with("multi_total", "x", &[("op", "put")]);
        a.add(0, 3);
        b.add(0, 4);
        assert_eq!(reg.snapshot().total("multi_total"), 7);
    }
}
