//! Log2-bucketed latency histograms — one bucketing scheme shared by the
//! bench harness (single-threaded [`LocalHistogram`]) and the server hot
//! path (lock-free [`AtomicHistogram`]).
//!
//! The value axis is split into [`GROUPS`] power-of-two groups, each
//! linearly subdivided into [`SUB`] buckets ([`BINS`] bins total, ~128),
//! giving a fixed worst-case relative error of `1/SUB` (25% bucket width,
//! so every percentile is reported as a bucket lower bound within one
//! octave quarter of the true value) over 1 ns .. ~4.3 s. Samples past the
//! top group land in the last bin; the exact maximum is tracked separately.
//!
//! Both histogram flavours snapshot into the same [`HistogramSnapshot`],
//! which merges associatively (per-thread or per-process histograms can be
//! combined in any order) and extracts the fixed percentile set every
//! `BENCH_*.json` record and `/metrics` scrape reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two groups (group g covers `[2^g, 2^(g+1))` ns).
pub const GROUPS: usize = 32;

/// Linear subdivisions per group (`2^SUB_BITS`).
pub const SUB: usize = 1 << SUB_BITS;

/// log2 of [`SUB`].
pub const SUB_BITS: usize = 2;

/// Total bin count (`GROUPS * SUB`).
pub const BINS: usize = GROUPS * SUB;

/// Map a nanosecond sample to its bin index. Always in `0..BINS`.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    let ns = ns.max(1);
    let msb = 63 - ns.leading_zeros() as usize;
    if msb >= GROUPS {
        return BINS - 1;
    }
    let sub = if msb < SUB_BITS {
        0
    } else {
        ((ns >> (msb - SUB_BITS)) as usize) & (SUB - 1)
    };
    msb * SUB + sub
}

/// Lower bound of bin `bin` in nanoseconds (monotonically non-decreasing
/// in `bin`). Out-of-range bins clamp to the last bin's lower bound.
pub fn bucket_lower(bin: usize) -> u64 {
    let bin = bin.min(BINS - 1);
    let msb = bin / SUB;
    let sub = (bin % SUB) as u64;
    if msb < SUB_BITS {
        1u64 << msb
    } else {
        (1u64 << msb) + (sub << (msb - SUB_BITS))
    }
}

/// Exclusive upper bound of bin `bin` in nanoseconds (`u64::MAX` for the
/// last bin, which also absorbs everything past the top group). In the
/// lowest groups (`msb < SUB_BITS`) several bins share a lower bound, so
/// the upper bound is the next *distinct* bound, not just `lower(bin+1)`.
pub fn bucket_upper(bin: usize) -> u64 {
    let lo = bucket_lower(bin);
    for next in bin + 1..BINS {
        let v = bucket_lower(next);
        if v > lo {
            return v;
        }
    }
    u64::MAX
}

/// A lock-free multi-producer latency histogram: every cell is a relaxed
/// atomic, so any number of threads can [`AtomicHistogram::record`]
/// concurrently with snapshots. Cloned handles ([`Arc`]) share the cells.
#[derive(Debug)]
pub struct AtomicHistogram {
    bins: [AtomicU64; BINS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    // HOT: called on the server data path for every request; must stay
    // panic-free (audit rule `no-panic-hot-path`).
    /// Record one latency sample, wait-free.
    #[inline]
    pub fn record(&self, ns: u64) {
        // ORDERING: independent statistical cells — no cell orders another,
        // snapshots tolerate tearing, so Relaxed everywhere.
        if let Some(bin) = self.bins.get(bucket_of(ns)) {
            bin.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        // ORDERING: a monotone statistical counter; Relaxed reads suffice.
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the cells. Concurrent recording may tear
    /// across cells (a sample can appear in `count` before its bin), never
    /// within one; [`HistogramSnapshot`] percentiles use the bin totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ORDERING: see record() — cells are independent, Relaxed loads.
        let mut bins = [0u64; BINS];
        for (dst, src) in bins.iter_mut().zip(self.bins.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            bins,
            sum_ns: u128::from(self.sum_ns.load(Ordering::Relaxed)),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A shareable handle to an [`AtomicHistogram`] — what
/// [`crate::MetricsRegistry::histogram`] hands out. Clones record into the
/// same cells.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<AtomicHistogram>,
}

impl Histogram {
    /// A fresh histogram handle (registry-independent; tests and ad-hoc
    /// instrumentation).
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(AtomicHistogram::new()),
        }
    }

    // HOT: one call per served request on the server data path.
    /// Record one latency sample, wait-free.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.inner.record(ns);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner.snapshot()
    }
}

/// Single-threaded histogram with the same bucketing — the bench harness's
/// per-thread recorder (no atomics, exact `u128` sum).
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    bins: [u64; BINS],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LocalHistogram {
            bins: [0; BINS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        if let Some(bin) = self.bins.get_mut(bucket_of(ns)) {
            *bin += 1;
        }
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (exact, not bucketed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// A copy of the cells in the shared snapshot shape.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bins: self.bins,
            sum_ns: self.sum_ns,
            max_ns: self.max_ns,
        }
    }
}

/// An immutable copy of a histogram's cells: mergeable (associatively —
/// any merge order yields the same totals) and the place percentiles are
/// extracted.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    bins: [u64; BINS],
    sum_ns: u128,
    max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            bins: [0; BINS],
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total samples across the bins. (On a snapshot taken mid-recording
    /// this is the authoritative count — the percentile walk uses the same
    /// bins, so the two can never disagree.)
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (exact, not bucketed).
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / count as f64
        }
    }

    /// Largest recorded sample (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Per-bin `(lower_ns, upper_ns, count)` triples, non-empty bins only.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_lower(b), bucket_upper(b), c))
    }

    /// Cumulative counts at each bin upper bound, non-empty bins only —
    /// the shape of Prometheus `_bucket{le="..."}` samples (the final
    /// `+Inf` bucket is the caller's job).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (b, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((bucket_upper(b), seen));
        }
        out
    }

    /// Latency at percentile `p` (0.0..=100.0), in nanoseconds, reported
    /// as the matching bucket's lower bound (`1/SUB` relative precision).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_lower(b);
            }
        }
        self.max_ns
    }

    /// The fixed percentile set every benchmark record and scrape reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            samples: self.count(),
            mean_ns: self.mean_ns(),
            p50_ns: self.percentile_ns(50.0),
            p90_ns: self.percentile_ns(90.0),
            p99_ns: self.percentile_ns(99.0),
            p999_ns: self.percentile_ns(99.9),
            max_ns: self.max_ns,
        }
    }
}

/// The fixed percentile set captured into every `BENCH_*.json` data point
/// and `/metrics.json` histogram entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples (0 when latency recording was off).
    pub samples: u64,
    /// Mean latency in nanoseconds (exact, not bucketed).
    pub mean_ns: f64,
    /// Median latency (bucket lower bound, `1/SUB` relative precision).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Largest recorded sample (exact).
    pub max_ns: u64,
}

/// Mix a key into a stable 64-bit fingerprint (SplitMix64 finalizer) so
/// trace rings and logs never carry raw keys.
#[inline]
pub fn key_fingerprint(key: u64) -> u64 {
    let mut state = key;
    dlht_util::splitmix64(&mut state)
}

/// FNV-1a over arbitrary bytes — the byte-string twin of
/// [`key_fingerprint`] for the memcache persona's keys.
#[inline]
pub fn bytes_fingerprint(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_and_lower_bound_are_consistent() {
        for ns in [0u64, 1, 2, 3, 7, 50, 100, 1_000, 5_000, 1_000_000, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b < BINS, "sample {ns} -> bin {b}");
            if (63 - ns.max(1).leading_zeros() as usize) < GROUPS {
                assert!(
                    bucket_lower(b) <= ns.max(1),
                    "lower({b}) = {} > {ns}",
                    bucket_lower(b)
                );
                assert!(ns.max(1) < bucket_upper(b), "{ns} >= upper({b})");
            }
        }
    }

    #[test]
    fn bucket_lower_is_monotonic() {
        let mut last = 0;
        for b in 0..BINS {
            let v = bucket_lower(b);
            assert!(v >= last, "bin {b}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn atomic_and_local_agree() {
        let atomic = AtomicHistogram::new();
        let mut local = LocalHistogram::new();
        let mut seed = 42u64;
        for _ in 0..10_000 {
            let ns = dlht_util::splitmix64(&mut seed) % 10_000_000;
            atomic.record(ns);
            local.record(ns);
        }
        let a = atomic.snapshot();
        let l = local.snapshot();
        assert_eq!(a.count(), l.count());
        assert_eq!(a.max_ns(), l.max_ns());
        assert_eq!(a.sum_ns(), l.sum_ns());
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile_ns(p), l.percentile_ns(p));
        }
    }

    #[test]
    fn percentiles_are_monotonic_in_p() {
        let mut h = LocalHistogram::new();
        let mut seed = 7u64;
        for _ in 0..5_000 {
            h.record(dlht_util::splitmix64(&mut seed) % 1_000_000);
        }
        let s = h.snapshot();
        let mut last = 0;
        for p in 1..=100 {
            let v = s.percentile_ns(f64::from(p));
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut seed = 99u64;
        let parts: Vec<LocalHistogram> = (0..4)
            .map(|_| {
                let mut h = LocalHistogram::new();
                for _ in 0..1_000 {
                    h.record(dlht_util::splitmix64(&mut seed) % 100_000);
                }
                h
            })
            .collect();
        // (((a+b)+c)+d) vs (a+((b+c)+d)).
        let mut left = parts[0].snapshot();
        for p in &parts[1..] {
            left.merge(&p.snapshot());
        }
        let mut mid = parts[1].snapshot();
        mid.merge(&parts[2].snapshot());
        mid.merge(&parts[3].snapshot());
        let mut right = parts[0].snapshot();
        right.merge(&mid);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum_ns(), right.sum_ns());
        assert_eq!(left.max_ns(), right.max_ns());
        for p in [50.0, 99.0, 99.9] {
            assert_eq!(left.percentile_ns(p), right.percentile_ns(p));
        }
    }

    #[test]
    fn overflow_samples_land_in_the_last_bin() {
        let mut h = LocalHistogram::new();
        h.record(u64::MAX);
        h.record(10_000_000_000); // 10 s, past the top group
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max_ns(), u64::MAX);
        assert_eq!(bucket_of(u64::MAX), BINS - 1);
    }

    #[test]
    fn fingerprints_are_stable_and_spread() {
        assert_eq!(key_fingerprint(1), key_fingerprint(1));
        assert_ne!(key_fingerprint(1), key_fingerprint(2));
        assert_eq!(bytes_fingerprint(b"abc"), bytes_fingerprint(b"abc"));
        assert_ne!(bytes_fingerprint(b"abc"), bytes_fingerprint(b"abd"));
    }
}
