//! A strict parser for the Prometheus text exposition format (version
//! 0.0.4) — the validation half of [`crate::MetricsSnapshot::render_prometheus`].
//! `dlht_server --probe --expect-metric` and CI use it to assert a scrape
//! both parses and carries expected values.

/// One parsed sample line: family-or-series name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The sample name as written (e.g. `dlht_ops_total` or
    /// `dlht_request_latency_ns_bucket`).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`/`-Inf`/`NaN` map to the f64 equivalents).
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == ':'
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

/// Parse a full exposition document. Every non-comment line must be a
/// well-formed sample; `# HELP`/`# TYPE` lines are validated for name
/// syntax. Errors carry the 1-based line number.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(body) = rest
                .strip_prefix("HELP ")
                .or_else(|| rest.strip_prefix("TYPE "))
            {
                let name = body.split_whitespace().next().unwrap_or("");
                if name.is_empty()
                    || !name.chars().enumerate().all(|(i, c)| {
                        if i == 0 {
                            is_name_start(c)
                        } else {
                            is_name_char(c)
                        }
                    })
                {
                    return Err(format!(
                        "line {lineno}: bad metric name in comment: {line:?}"
                    ));
                }
                if rest.starts_with("TYPE ") {
                    let kind = body.split_whitespace().nth(1).unwrap_or("");
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                    }
                }
            }
            // Other comments are permitted free text.
            continue;
        }
        samples.push(parse_sample_line(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let mut chars = line.char_indices().peekable();
    // Name.
    let mut name_end = 0;
    while let Some(&(i, c)) = chars.peek() {
        let ok = if i == 0 {
            is_name_start(c)
        } else {
            is_name_char(c)
        };
        if !ok {
            break;
        }
        name_end = i + c.len_utf8();
        chars.next();
    }
    if name_end == 0 {
        return Err(format!("missing metric name in {line:?}"));
    }
    let name = line[..name_end].to_string();
    let rest = line[name_end..].trim_start();

    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close =
            find_label_close(body).ok_or_else(|| format!("unclosed label set in {line:?}"))?;
        (
            parse_labels(&body[..close])?,
            body[close + 1..].trim_start(),
        )
    } else {
        (Vec::new(), rest)
    };

    // Value, optionally followed by a timestamp (which we accept and drop).
    let mut parts = rest.split_whitespace();
    let value_text = parts
        .next()
        .ok_or_else(|| format!("missing value in {line:?}"))?;
    let value =
        parse_value(value_text).ok_or_else(|| format!("bad value {value_text:?} in {line:?}"))?;
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("bad timestamp {ts:?} in {line:?}"));
        }
    }
    if parts.next().is_some() {
        return Err(format!("trailing tokens in {line:?}"));
    }
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Index of the closing `}` of a label body, honouring quoted strings with
/// backslash escapes.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("missing '=' in labels {body:?}"))?;
        let key = rest[..eq].trim();
        if key.is_empty()
            || !key.chars().enumerate().all(|(i, c)| {
                if i == 0 {
                    is_name_start(c)
                } else {
                    is_name_char(c)
                }
            })
        {
            return Err(format!("bad label name {key:?}"));
        }
        let after = rest[eq + 1..].trim_start();
        let after = after
            .strip_prefix('"')
            .ok_or_else(|| format!("label value for {key:?} is not quoted"))?;
        let mut value = String::new();
        let mut consumed = None;
        let mut escaped = false;
        for (i, c) in after.char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape \\{other} in label {key:?}")),
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                other => value.push(other),
            }
        }
        let consumed = consumed.ok_or_else(|| format!("unterminated label value for {key:?}"))?;
        labels.push((key.to_string(), value));
        rest = after[consumed..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels in {body:?}"));
        }
    }
    Ok(labels)
}

/// Sum every sample named exactly `name` across label sets — the probe's
/// `--expect-metric name>=N` aggregation.
pub fn sum_samples(samples: &[PromSample], name: &str) -> Option<f64> {
    let mut total = 0.0;
    let mut found = false;
    for s in samples.iter().filter(|s| s.name == name) {
        found = true;
        if s.value.is_finite() {
            total += s.value;
        }
    }
    found.then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn round_trips_registry_output() {
        let reg = MetricsRegistry::new(2);
        let c = reg.counter("rt_ops_total", "ops");
        let h = reg.histogram_with("rt_lat_ns", "latency with \"quotes\"", &[("op", "get")]);
        c.add(0, 42);
        h.record(100);
        h.record(200_000);
        let text = reg.snapshot().render_prometheus();
        let samples = parse_prometheus(&text).expect("parses");
        assert_eq!(sum_samples(&samples, "rt_ops_total"), Some(42.0));
        let count = samples
            .iter()
            .find(|s| s.name == "rt_lat_ns_count")
            .unwrap();
        assert_eq!(count.value, 2.0);
        assert_eq!(count.label("op"), Some("get"));
        // `le` is a label, so "+Inf" stays literal text there.
        let inf = samples
            .iter()
            .find(|s| s.name == "rt_lat_ns_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn parses_labels_with_escapes_and_timestamps() {
        let text = "a_total{k=\"v\\\"x\\\\y\",z=\"w\"} 5 1700000000\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples[0].label("k"), Some("v\"x\\y"));
        assert_eq!(samples[0].label("z"), Some("w"));
        assert_eq!(samples[0].value, 5.0);
    }

    #[test]
    fn special_values_parse() {
        let samples = parse_prometheus("a +Inf\nb -Inf\nc NaN\nd 1.5e3\n").unwrap();
        assert_eq!(samples[0].value, f64::INFINITY);
        assert_eq!(samples[1].value, f64::NEG_INFINITY);
        assert!(samples[2].value.is_nan());
        assert_eq!(samples[3].value, 1500.0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_prometheus("1bad_name 3\n").is_err());
        assert!(parse_prometheus("name{unclosed=\"x\" 3\n").is_err());
        assert!(parse_prometheus("name{k=unquoted} 3\n").is_err());
        assert!(parse_prometheus("name\n").is_err());
        assert!(parse_prometheus("name 1 2 3\n").is_err());
        assert!(parse_prometheus("# TYPE x banana\n").is_err());
        let err = parse_prometheus("ok 1\nbad\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn sum_samples_distinguishes_absent_from_zero() {
        let samples = parse_prometheus("zeroed_total 0\n").unwrap();
        assert_eq!(sum_samples(&samples, "zeroed_total"), Some(0.0));
        assert_eq!(sum_samples(&samples, "missing_total"), None);
    }
}
