//! Minimal dependency-free JSON: just enough to emit the schema-versioned
//! `BENCH_*.json` lines the scenario harness writes and to parse them back in
//! `bench_report`. Not a general-purpose library — unsigned integers keep
//! full `u64` precision (so seeds and op counts round-trip exactly), other
//! numbers are `f64`, objects preserve insertion order, and parse errors
//! report byte offsets.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact at full `u64` range (the recorded
    /// seed must reproduce the run bit-for-bit). The parser produces this
    /// variant for any digits-only number that fits.
    UInt(u64),
    /// Any other number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (insertion order on emit).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Member lookup on an object (first match; `None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number (exact integers above 2^53 lose
    /// precision in the cast).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (must consume the whole input bar whitespace).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                at: pos,
                what: "trailing characters after the document",
            });
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        // Exact integer: render without a fractional part.
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        // Rust's shortest-roundtrip float formatting is valid JSON.
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &[u8], what: &'static str) -> Result<(), ParseError> {
    if bytes.len() - *pos >= lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { at: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            at: *pos,
            what: "unexpected end of input",
        }),
        Some(b'n') => expect(bytes, pos, b"null", "expected null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, b"true", "expected true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, b"false", "expected false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b":", "expected ':' after object key")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            at: *pos,
            what: "expected '\"'",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    at: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            at: *pos,
                            what: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| ParseError {
                            at: *pos,
                            what: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            at: *pos,
                            what: "invalid \\u escape",
                        })?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| ParseError {
                        at: start,
                        what: "invalid UTF-8",
                    })?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| ParseError {
        at: start,
        what: "invalid number",
    })?;
    // Digits-only numbers parse at full u64 precision (exact seeds/counts);
    // everything else goes through f64.
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
        at: start,
        what: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_compact_and_ordered() {
        let j = Json::obj([
            ("type".to_string(), Json::from("point")),
            ("mops".to_string(), Json::from(12.5)),
            ("ops".to_string(), Json::from(1_000_000u64)),
            ("ok".to_string(), Json::from(true)),
            ("tags".to_string(), Json::Arr(vec![Json::from("a")])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"type":"point","mops":12.5,"ops":1000000,"ok":true,"tags":["a"]}"#
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(3.0f64).render(), "3");
        assert_eq!(Json::from(3.25f64).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn u64_values_round_trip_exactly_above_2_53() {
        let big = (1u64 << 53) + 1; // not representable in f64
        let j = Json::from(big);
        assert_eq!(j.render(), "9007199254740993");
        assert_eq!(Json::parse(&j.render()).unwrap().as_u64(), Some(big));
        let max = Json::from(u64::MAX);
        assert_eq!(Json::parse(&max.render()).unwrap().as_u64(), Some(u64::MAX));
        // Digits-only input comes back as the exact variant.
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Num(-42.0));
    }

    #[test]
    fn parse_round_trips_emitted_records() {
        let line = r#"{"type":"point","series":"DLHT \"x\"","axes":{"threads":4},"mops":153.2,"lat":{"p99_ns":640},"neg":-1.5e3,"null":null}"#;
        let j = Json::parse(line).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("point"));
        assert_eq!(
            j.get("axes")
                .and_then(|a| a.get("threads"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(j.get("mops").and_then(Json::as_f64), Some(153.2));
        assert_eq!(j.get("neg").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(j.get("null"), Some(&Json::Null));
        // And the render→parse cycle is stable.
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        let err = Json::parse("  x").unwrap_err();
        assert_eq!(err.at, 2);
        assert!(err.to_string().contains("byte 2"));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ unicode: ünïcödé \u{1}";
        let j = Json::from(s);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}
