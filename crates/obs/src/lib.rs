//! `dlht-obs`: the observability layer shared by the DLHT server and the
//! bench harness — a metrics registry of striped counters/gauges and
//! lock-free latency histograms, Prometheus text + JSON exposition, and a
//! strict exposition parser for probes and tests.
//!
//! Dependency-free (only `dlht-util` for `CachePadded`/`Mutex`/
//! `splitmix64`). Everything the server data path calls is tagged
//! `// HOT:` and panic-free so `dlht_audit`'s `no-panic-hot-path` rule
//! holds across the workspace.
//!
//! Layout:
//! - [`hist`] — the log2/sub-bucketed histogram family: one bucketing
//!   scheme ([`BINS`] bins) for both the server's [`AtomicHistogram`] and
//!   the bench harness's [`LocalHistogram`], with mergeable
//!   [`HistogramSnapshot`]s and p50/p90/p99/p999 extraction.
//! - [`registry`] — [`MetricsRegistry`] of named instruments; counters
//!   and gauges stripe across cache-line-padded per-worker lanes.
//! - [`json`] — the dependency-free JSON emitter/parser (moved here from
//!   `dlht-bench` so the server can serve `/metrics.json` without a
//!   dependency cycle; the bench crate re-exports it).
//! - [`expo`] — Prometheus text-format parser
//!   ([`parse_prometheus`]) for `--probe --expect-metric` and CI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod expo;
pub mod hist;
pub mod json;
pub mod registry;

pub use expo::{parse_prometheus, sum_samples, PromSample};
pub use hist::{
    bucket_lower, bucket_of, bucket_upper, bytes_fingerprint, key_fingerprint, AtomicHistogram,
    Histogram, HistogramSnapshot, LatencySummary, LocalHistogram, BINS, GROUPS, SUB,
};
pub use registry::{Counter, Gauge, MetricSample, MetricsRegistry, MetricsSnapshot, SampleValue};
