//! Concurrency correctness for the metrics layer: the atomic histogram
//! against an exact Vec oracle under multi-thread hammering, plus
//! registry snapshots taken while recording is in flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dlht_obs::{bucket_lower, bucket_of, Histogram, LocalHistogram, MetricsRegistry};

const THREADS: usize = 4;
const PER_THREAD: usize = 50_000;

/// Four threads hammer one shared histogram; every thread also keeps its
/// exact sample list. Afterwards the histogram must agree bin-for-bin
/// with the oracle — no lost updates — and percentiles must match a
/// sort-based computation to within one bucket.
#[test]
fn concurrent_records_match_vec_oracle() {
    let hist = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = hist.clone();
            thread::spawn(move || {
                let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ (t as u64);
                let mut samples = Vec::with_capacity(PER_THREAD);
                for _ in 0..PER_THREAD {
                    // Mix of fast-path and tail latencies (1 ns .. ~16 ms).
                    let ns = (dlht_util::splitmix64(&mut seed) % 16_000_000).max(1);
                    hist.record(ns);
                    samples.push(ns);
                }
                samples
            })
        })
        .collect();

    let mut all: Vec<u64> = Vec::with_capacity(THREADS * PER_THREAD);
    for h in handles {
        all.extend(h.join().unwrap());
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count(), (THREADS * PER_THREAD) as u64, "lost updates");
    assert_eq!(
        snap.sum_ns(),
        all.iter().map(|&n| u128::from(n)).sum::<u128>()
    );
    assert_eq!(snap.max_ns(), *all.iter().max().unwrap());

    // Bin-for-bin agreement with a sequential oracle.
    let mut oracle = LocalHistogram::new();
    for &ns in &all {
        oracle.record(ns);
    }
    let oracle_snap = oracle.snapshot();
    let a: Vec<_> = snap.nonzero_buckets().collect();
    let b: Vec<_> = oracle_snap.nonzero_buckets().collect();
    assert_eq!(a, b, "bin contents diverged from oracle");

    // Percentiles agree with an exact sort to within the bucket's own
    // resolution: the bucketed percentile is the lower bound of the bucket
    // holding the exact percentile sample.
    all.sort_unstable();
    for p in [50.0, 90.0, 99.0, 99.9] {
        let rank = ((p / 100.0) * all.len() as f64).ceil().max(1.0) as usize - 1;
        let exact = all[rank];
        let bucketed = snap.percentile_ns(p);
        assert_eq!(
            bucketed,
            bucket_lower(bucket_of(exact)),
            "p{p}: bucketed {bucketed} vs exact {exact}"
        );
    }
}

/// Merging per-thread histograms must equal recording into one shared
/// histogram, regardless of merge order.
#[test]
fn per_thread_merge_equals_shared_recording() {
    let shared = Histogram::new();
    let mut locals: Vec<LocalHistogram> = Vec::new();
    let mut seed = 7u64;
    for _ in 0..THREADS {
        let mut local = LocalHistogram::new();
        for _ in 0..10_000 {
            let ns = dlht_util::splitmix64(&mut seed) % 1_000_000;
            shared.record(ns);
            local.record(ns);
        }
        locals.push(local);
    }
    let mut forward = locals[0].snapshot();
    for l in &locals[1..] {
        forward.merge(&l.snapshot());
    }
    let mut backward = locals[THREADS - 1].snapshot();
    for l in locals[..THREADS - 1].iter().rev() {
        backward.merge(&l.snapshot());
    }
    let shared_snap = shared.snapshot();
    for s in [&forward, &backward] {
        assert_eq!(s.count(), shared_snap.count());
        assert_eq!(s.sum_ns(), shared_snap.sum_ns());
        assert_eq!(s.max_ns(), shared_snap.max_ns());
        for p in [50.0, 99.0, 99.9] {
            assert_eq!(s.percentile_ns(p), shared_snap.percentile_ns(p));
        }
    }
}

/// Snapshots taken while recorders are running must be internally
/// consistent (monotone percentiles, count equals the bin total by
/// construction) and monotone over time for counters.
#[test]
fn registry_snapshot_while_recording() {
    let reg = Arc::new(MetricsRegistry::new(THREADS));
    let ops = reg.counter("ops_total", "ops");
    let inflight = reg.gauge("inflight", "in-flight ops");
    let lat = reg.histogram("lat_ns", "latency");
    let stop = Arc::new(AtomicBool::new(false));

    let recorders: Vec<_> = (0..THREADS)
        .map(|lane| {
            let ops = ops.clone();
            let inflight = inflight.clone();
            let lat = lat.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                let mut seed = lane as u64 + 1;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    inflight.add(lane, 1);
                    lat.record(dlht_util::splitmix64(&mut seed) % 100_000);
                    ops.incr(lane);
                    // Decrement on a different lane than the increment to
                    // exercise the wrapping fold.
                    inflight.sub(lane + 1, 1);
                    n += 1;
                }
                n
            })
        })
        .collect();

    let mut last_ops = 0u64;
    let mut last_lat = 0u64;
    for _ in 0..50 {
        let snap = reg.snapshot();
        let ops_now = snap.total("ops_total");
        let lat_now = snap.total("lat_ns");
        assert!(ops_now >= last_ops, "counter went backwards");
        assert!(lat_now >= last_lat, "histogram count went backwards");
        last_ops = ops_now;
        last_lat = lat_now;
        // The gauge transient stays within ±THREADS of zero (a relaxed
        // scrape may see a sub before its paired add, wrapping briefly).
        let inflight_now = snap.total("inflight");
        assert!(
            inflight_now <= THREADS as u64 || inflight_now >= u64::MAX - THREADS as u64,
            "gauge fold broke: {inflight_now}"
        );
        if let Some(sample) = snap.get("lat_ns") {
            if let dlht_obs::SampleValue::Histogram(h) = &sample.value {
                let mut prev = 0;
                for p in [50.0, 90.0, 99.0, 99.9] {
                    let v = h.percentile_ns(p);
                    assert!(v >= prev);
                    prev = v;
                }
            }
        }
        thread::yield_now();
    }

    stop.store(true, Ordering::Relaxed);
    let total: u64 = recorders.into_iter().map(|h| h.join().unwrap()).sum();
    let snap = reg.snapshot();
    assert_eq!(snap.total("ops_total"), total);
    assert_eq!(snap.total("lat_ns"), total);
    assert_eq!(snap.total("inflight"), 0);
}
