//! Software prefetching (§3.3).
//!
//! DLHT overlaps the memory latency of one request with useful work on other
//! requests by issuing non-binding prefetches for every bin of a batch before
//! executing the batch, and by exposing [`prefetch_read`] for
//! coroutine-style clients that want to prefetch a key's bin, yield, and issue
//! the request later.

/// Issue a read prefetch hint for the cache line containing `ptr`.
///
/// On x86_64 this is `prefetcht0`; on other architectures it is a no-op (the
/// algorithms remain correct, only the latency-hiding benefit disappears).
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    // Miri has no model for prefetch hints (and would reject the possibly
    // dangling pointer), so the intrinsic is compiled out under it.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        // SAFETY: prefetch is a hint; it never faults, even on invalid
        // addresses, and has no architectural side effects.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8)
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        let _ = ptr;
    }
}

/// Issue a prefetch hint with "write intent" for the cache line containing
/// `ptr` (used for bins about to be CASed by Inserts/Deletes in a batch).
#[inline(always)]
pub fn prefetch_write<T>(ptr: *const T) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        // _MM_HINT_ET0 is not exposed on stable; T0 into L1 is the closest
        // hint and what the reference implementations use in practice.
        // SAFETY: prefetch is a hint; it never faults, even on invalid
        // addresses, and has no architectural side effects.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8)
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        let _ = ptr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_safe_no_op_behaviourally() {
        let data = vec![1u8; 4096];
        prefetch_read(data.as_ptr());
        prefetch_write(data.as_ptr());
        // Even wild (but non-dereferenced) pointers must not fault.
        prefetch_read(0xdead_beef_usize as *const u8);
        assert_eq!(data[0], 1);
    }
}
