//! Structural statistics used by the occupancy study (§5.1.5) and the
//! power-efficiency model (Fig. 4).

use crate::index::Index;

/// A snapshot of the current index generation's structure.
///
/// The all-zero [`Default`] snapshot is what [`crate::KvBackend::stats`]
/// reports for designs without a DLHT-style index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Bins in the current index.
    pub bins: usize,
    /// Link buckets in the pool.
    pub link_buckets: usize,
    /// Link buckets already chained to bins.
    pub links_used: usize,
    /// Slots holding a Valid or Shadow entry.
    pub occupied_slots: usize,
    /// Slots reachable right now (primary + chained link buckets).
    pub addressable_slots: usize,
    /// Slots if every link bucket were chained — the denominator the paper
    /// uses when it reports "occupancy until resize".
    pub max_slots: usize,
    /// `occupied_slots / max_slots`.
    pub occupancy: f64,
    /// Resizes since table creation.
    pub resizes: u64,
    /// Generation number of the current index (0 = never resized).
    pub generation: u32,
    /// Approximate bytes used by index structures (not Allocator-mode values).
    pub index_bytes: usize,
}

impl TableStats {
    /// Capture statistics from an index.
    pub(crate) fn capture(idx: &Index, resizes: u64) -> TableStats {
        let occupied = idx.occupied_slots();
        let max_slots = idx.max_slots();
        TableStats {
            bins: idx.num_bins(),
            link_buckets: idx.num_links(),
            links_used: idx.links_used(),
            occupied_slots: occupied,
            addressable_slots: idx.addressable_slots(),
            max_slots,
            occupancy: if max_slots == 0 {
                0.0
            } else {
                occupied as f64 / max_slots as f64
            },
            resizes,
            generation: idx.generation(),
            index_bytes: idx.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlhtConfig;

    #[test]
    fn capture_on_empty_index() {
        let idx = Index::new(64, &DlhtConfig::new(64), 0);
        let s = TableStats::capture(&idx, 0);
        assert_eq!(s.bins, 64);
        assert_eq!(s.occupied_slots, 0);
        assert_eq!(s.occupancy, 0.0);
        assert_eq!(s.max_slots, 64 * 3 + 8 * 4);
        assert_eq!(s.generation, 0);
        assert!(s.index_bytes >= 64 * 64);
    }
}
