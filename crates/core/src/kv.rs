//! The unified operations API: one [`KvBackend`] trait implemented by every
//! table in the repository — DLHT's own modes and all the baseline
//! hashtables — so workloads, benchmarks, and applications drive any of them
//! interchangeably through the same `Request`/`Response` batch vocabulary.
//!
//! This replaces the historical split where `dlht-baselines` carried a second,
//! incompatible `ConcurrentMap` + `BatchOp`/`BatchResult` interface next to
//! the core's `Request`/`Response`. The trait is deliberately the paper's
//! operation set (§3.2): Get / Insert / Put / Delete, plus the
//! order-preserving batch entry point of §3.3.

use crate::batch::{Batch, BatchPolicy, Request, Response};
use crate::error::{DlhtError, InsertOutcome};
use crate::map::DlhtMap;
use crate::set::DlhtSet;
use crate::sharded::ShardedTable;
use crate::stats::TableStats;
use crate::table::RawTable;

/// Feature matrix entries (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFeatures {
    /// "closed-addressing" or "open-addressing".
    pub collision_handling: &'static str,
    /// Non-blocking Gets.
    pub lock_free_gets: bool,
    /// Supports pure Puts (update-only) without locks.
    pub non_blocking_puts: bool,
    /// Supports pure Inserts without locks.
    pub non_blocking_inserts: bool,
    /// Deletes that immediately free index slots.
    pub deletes_free_slots: bool,
    /// Supports growing the index at all.
    pub resizable: bool,
    /// Resizes do not block all other operations.
    pub non_blocking_resize: bool,
    /// Uses software prefetching to overlap memory accesses.
    pub overlaps_memory_accesses: bool,
    /// Values (≤ 8 B) are stored inline in the index.
    pub inline_values: bool,
}

impl MapFeatures {
    /// The feature set of DLHT itself (with batching).
    pub const fn dlht() -> MapFeatures {
        MapFeatures {
            collision_handling: "closed-addressing",
            lock_free_gets: true,
            non_blocking_puts: true,
            non_blocking_inserts: true,
            deletes_free_slots: true,
            resizable: true,
            non_blocking_resize: true,
            overlaps_memory_accesses: true,
            inline_values: true,
        }
    }
}

/// Thread-safe map over 8-byte keys and values — the single operations API
/// every table in the repository implements (§5's evaluation harness shape).
///
/// Semantics follow the paper's operation set:
///
/// * [`KvBackend::insert`] never overwrites: an existing key yields
///   `Ok(InsertOutcome::AlreadyExists(_))`, and designs that cannot
///   accommodate the key report `Err` (`TableFull`, `ReservedKey`, ...).
/// * [`KvBackend::put`] never inserts: it updates an existing key and returns
///   the previous value, or `None` when the key is absent or the design
///   cannot express a pure update (e.g. CLHT).
/// * [`KvBackend::delete`] returns the removed value when present.
/// * [`KvBackend::execute_batch`] executes requests **in submission order**
///   unless a design documents otherwise (DRAMHiT-like reordering).
pub trait KvBackend: Send + Sync {
    /// Look up `key`.
    fn get(&self, key: u64) -> Option<u64>;

    /// Whether `key` is present.
    fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; fails (without overwriting) if the key exists.
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError>;

    /// Update an existing key's value; returns the previous value (`None` if
    /// the key is absent or the design cannot express a pure update).
    fn put(&self, key: u64, value: u64) -> Option<u64>;

    /// Remove `key`, returning its value if it was present.
    fn delete(&self, key: u64) -> Option<u64>;

    /// Insert if absent, otherwise update. Returns the previous value on
    /// update, `Ok(None)` on a fresh insert — and **propagates** insert errors
    /// (table full, reserved key) instead of swallowing them.
    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        loop {
            match self.insert(key, value)? {
                InsertOutcome::Inserted => return Ok(None),
                InsertOutcome::AlreadyExists(existing) => {
                    // The key existed; try to overwrite. A concurrent delete
                    // may remove it between the two calls — retry the insert
                    // then.
                    if let Some(prev) = self.put(key, value) {
                        return Ok(Some(prev));
                    }
                    // `put` failed but the key is still present: this design
                    // cannot express a pure update (e.g. CLHT, sets). Report
                    // the existing value rather than spinning forever.
                    if self.contains(key) {
                        return Ok(Some(existing));
                    }
                }
            }
        }
    }

    /// Number of live keys (may be linear-time).
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Feature flags for Table 1.
    fn features(&self) -> MapFeatures;

    /// Structural statistics. Designs without a DLHT-style index report the
    /// default (all-zero) snapshot.
    fn stats(&self) -> TableStats {
        TableStats::default()
    }

    /// Retired-but-not-yet-freed index generations (a proxy for resize memory
    /// still awaiting epoch reclamation, captured per data point by the
    /// benchmark harness). Designs without DLHT-style index retirement
    /// report 0.
    fn retired_indexes(&self) -> usize {
        0
    }

    /// Whether [`KvBackend::execute`] actually overlaps memory accesses
    /// (software prefetching) rather than falling back to a loop.
    fn supports_batching(&self) -> bool {
        false
    }

    /// Issue a software prefetch for wherever `key` lives (a bin, a home
    /// cell, a bucket). A no-op by default; designs with prefetch support
    /// override it — it is what a [`crate::Pipeline`] calls at submit time.
    fn prefetch_key(&self, _key: u64) {}

    /// Execute the queued requests of `batch`, one [`Response`] per request
    /// in submission-slot order, into the batch's own (reused) response
    /// storage. Execution itself follows submission order unless the design
    /// documents otherwise (DRAMHiT-like reordering under
    /// [`BatchPolicy::Unordered`]).
    ///
    /// This is the steady-state entry point: a warm [`Batch`] executes with
    /// zero heap allocations. The default implementation loops over the
    /// single-request operations (see [`execute_serial`]); designs with
    /// software prefetching override it.
    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        execute_serial(self, batch, policy)
    }

    /// [`KvBackend::execute`] for a batch whose requests were already
    /// prefetched individually (via [`KvBackend::prefetch_key`], as the
    /// [`crate::Pipeline`] does at submit time): designs with an up-front
    /// prefetch sweep skip it here rather than prefetch every bin twice.
    /// Defaults to plain [`KvBackend::execute`].
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.execute(batch, policy)
    }

    /// One-shot convenience over [`KvBackend::execute`]: copies `requests`
    /// into a temporary [`Batch`] and returns its responses. Allocates per
    /// call — hot paths should hold a reusable [`Batch`] instead.
    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        let mut batch = Batch::from(requests);
        self.execute(&mut batch, policy);
        batch.into_responses()
    }
}

/// Execute a batch serially through `backend`'s single-request operations,
/// honoring the [`BatchPolicy`] contract. This is the body of the default
/// [`KvBackend::execute`]; overriders that only add a prefetch sweep
/// (e.g. the MICA-like baseline) delegate here so the batch contract lives in
/// one place.
pub fn execute_serial<B: KvBackend + ?Sized>(backend: &B, batch: &mut Batch, policy: BatchPolicy) {
    let (requests, out) = batch.begin_execution();
    let mut stopped = false;
    for req in requests {
        if stopped {
            out.push(Response::Skipped);
            continue;
        }
        let resp = match *req {
            Request::Get(k) => Response::Value(backend.get(k)),
            Request::Put(k, v) => Response::Updated(backend.put(k, v)),
            Request::Insert(k, v) => Response::Inserted(backend.insert(k, v)),
            Request::Delete(k) => Response::Deleted(backend.delete(k)),
        };
        if policy.stops_on_failure() && !resp.succeeded() {
            stopped = true;
        }
        out.push(resp);
    }
}

/// Blanket impl so `Arc<M>` can be used wherever a backend is expected.
impl<M: KvBackend + ?Sized> KvBackend for std::sync::Arc<M> {
    fn get(&self, key: u64) -> Option<u64> {
        (**self).get(key)
    }
    fn contains(&self, key: u64) -> bool {
        (**self).contains(key)
    }
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        (**self).insert(key, value)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        (**self).put(key, value)
    }
    fn delete(&self, key: u64) -> Option<u64> {
        (**self).delete(key)
    }
    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        (**self).upsert(key, value)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn features(&self) -> MapFeatures {
        (**self).features()
    }
    fn stats(&self) -> TableStats {
        (**self).stats()
    }
    fn retired_indexes(&self) -> usize {
        (**self).retired_indexes()
    }
    fn supports_batching(&self) -> bool {
        (**self).supports_batching()
    }
    fn prefetch_key(&self, key: u64) {
        (**self).prefetch_key(key)
    }
    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        (**self).execute(batch, policy)
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        (**self).execute_prefetched(batch, policy)
    }
    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        (**self).execute_batch(requests, policy)
    }
}

/// Blanket impl so `Box<M>` can be used wherever a backend is expected.
impl<M: KvBackend + ?Sized> KvBackend for Box<M> {
    fn get(&self, key: u64) -> Option<u64> {
        (**self).get(key)
    }
    fn contains(&self, key: u64) -> bool {
        (**self).contains(key)
    }
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        (**self).insert(key, value)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        (**self).put(key, value)
    }
    fn delete(&self, key: u64) -> Option<u64> {
        (**self).delete(key)
    }
    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        (**self).upsert(key, value)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn features(&self) -> MapFeatures {
        (**self).features()
    }
    fn stats(&self) -> TableStats {
        (**self).stats()
    }
    fn retired_indexes(&self) -> usize {
        (**self).retired_indexes()
    }
    fn supports_batching(&self) -> bool {
        (**self).supports_batching()
    }
    fn prefetch_key(&self, key: u64) {
        (**self).prefetch_key(key)
    }
    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        (**self).execute(batch, policy)
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        (**self).execute_prefetched(batch, policy)
    }
    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        (**self).execute_batch(requests, policy)
    }
}

impl KvBackend for DlhtMap {
    fn get(&self, key: u64) -> Option<u64> {
        DlhtMap::get(self, key)
    }
    fn contains(&self, key: u64) -> bool {
        DlhtMap::contains(self, key)
    }
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        DlhtMap::insert(self, key, value)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        DlhtMap::put(self, key, value)
    }
    fn delete(&self, key: u64) -> Option<u64> {
        DlhtMap::delete(self, key)
    }
    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        DlhtMap::upsert(self, key, value)
    }
    fn len(&self) -> usize {
        DlhtMap::len(self)
    }
    fn name(&self) -> &'static str {
        "DLHT"
    }
    fn features(&self) -> MapFeatures {
        MapFeatures::dlht()
    }
    fn stats(&self) -> TableStats {
        DlhtMap::stats(self)
    }
    fn retired_indexes(&self) -> usize {
        self.raw().retired_indexes()
    }
    fn supports_batching(&self) -> bool {
        true
    }
    fn prefetch_key(&self, key: u64) {
        DlhtMap::prefetch(self, key)
    }
    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        DlhtMap::execute(self, batch, policy)
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.raw().execute_prefetched(batch, policy)
    }
    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        DlhtMap::execute_batch(self, requests, policy)
    }
}

impl KvBackend for RawTable {
    fn get(&self, key: u64) -> Option<u64> {
        RawTable::get(self, key)
    }
    fn contains(&self, key: u64) -> bool {
        RawTable::contains(self, key)
    }
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        RawTable::insert(self, key, value)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        RawTable::put(self, key, value)
    }
    fn delete(&self, key: u64) -> Option<u64> {
        RawTable::delete(self, key)
    }
    fn len(&self) -> usize {
        RawTable::len(self)
    }
    fn name(&self) -> &'static str {
        "DLHT-raw"
    }
    fn features(&self) -> MapFeatures {
        MapFeatures::dlht()
    }
    fn stats(&self) -> TableStats {
        RawTable::stats(self)
    }
    fn retired_indexes(&self) -> usize {
        RawTable::retired_indexes(self)
    }
    fn supports_batching(&self) -> bool {
        true
    }
    fn prefetch_key(&self, key: u64) {
        RawTable::prefetch(self, key)
    }
    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        RawTable::execute(self, batch, policy)
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        RawTable::execute_prefetched(self, batch, policy)
    }
    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        RawTable::execute_batch(self, requests, policy)
    }
}

/// The sharded front through the unified API: same per-key semantics as
/// [`DlhtMap`], with shard-local (independent) resizes and per-shard-run
/// batch execution — see [`ShardedTable`].
impl KvBackend for ShardedTable {
    fn get(&self, key: u64) -> Option<u64> {
        ShardedTable::get(self, key)
    }
    fn contains(&self, key: u64) -> bool {
        ShardedTable::contains(self, key)
    }
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        ShardedTable::insert(self, key, value)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        ShardedTable::put(self, key, value)
    }
    fn delete(&self, key: u64) -> Option<u64> {
        ShardedTable::delete(self, key)
    }
    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        ShardedTable::upsert(self, key, value)
    }
    fn len(&self) -> usize {
        ShardedTable::len(self)
    }
    fn name(&self) -> &'static str {
        "DLHT-Sharded"
    }
    fn features(&self) -> MapFeatures {
        MapFeatures::dlht()
    }
    fn stats(&self) -> TableStats {
        ShardedTable::stats(self)
    }
    fn retired_indexes(&self) -> usize {
        ShardedTable::retired_indexes(self)
    }
    fn supports_batching(&self) -> bool {
        true
    }
    fn prefetch_key(&self, key: u64) {
        ShardedTable::prefetch(self, key)
    }
    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        ShardedTable::execute(self, batch, policy)
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        ShardedTable::execute_prefetched(self, batch, policy)
    }
    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        ShardedTable::execute_batch(self, requests, policy)
    }
}

/// The HashSet mode through the unified API: values are ignored on insert
/// (stored as the given word) and a member key reads back its stored word.
/// `put` is not meaningful for a set and returns `None` — and batches go
/// through the serial default so `execute(Put(..))` agrees with `put`
/// (delegating to the raw table would let a batch update a member's stored
/// word, which the single-request surface cannot express). Callers that want
/// the prefetched batch engine underneath can drop to [`DlhtSet::raw`].
impl KvBackend for DlhtSet {
    fn get(&self, key: u64) -> Option<u64> {
        self.raw().get(key)
    }
    fn contains(&self, key: u64) -> bool {
        DlhtSet::contains(self, key)
    }
    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.raw().insert(key, value)
    }
    fn put(&self, _key: u64, _value: u64) -> Option<u64> {
        None
    }
    fn delete(&self, key: u64) -> Option<u64> {
        self.raw().delete(key)
    }
    fn len(&self) -> usize {
        DlhtSet::len(self)
    }
    fn name(&self) -> &'static str {
        "DLHT-set"
    }
    fn features(&self) -> MapFeatures {
        MapFeatures {
            non_blocking_puts: false,
            ..MapFeatures::dlht()
        }
    }
    fn stats(&self) -> TableStats {
        DlhtSet::stats(self)
    }
    fn retired_indexes(&self) -> usize {
        self.raw().retired_indexes()
    }
    fn prefetch_key(&self, key: u64) {
        self.raw().prefetch(key)
    }
    // `supports_batching` stays false and `execute` stays the serial default
    // so the batch surface matches the single-request one (no Puts on sets).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlhtConfig;

    fn as_backend(map: &DlhtMap) -> &dyn KvBackend {
        map
    }

    #[test]
    fn trait_object_roundtrip() {
        let map = DlhtMap::with_capacity(256);
        let b = as_backend(&map);
        assert!(b.insert(1, 10).unwrap().inserted());
        assert_eq!(b.get(1), Some(10));
        assert_eq!(b.put(1, 11), Some(10));
        assert_eq!(b.delete(1), Some(11));
        assert!(b.is_empty());
        assert_eq!(b.name(), "DLHT");
        assert!(b.features().non_blocking_resize);
        assert!(b.supports_batching());
    }

    #[test]
    fn default_upsert_propagates_table_full() {
        // A tiny non-resizing table must eventually report TableFull through
        // upsert rather than masking it as "no previous value".
        let map = DlhtMap::with_config(DlhtConfig::new(2).with_resizing(false));
        let mut saw_full = false;
        for k in 0..1_000u64 {
            match KvBackend::upsert(&map, k, k) {
                Ok(_) => {}
                Err(DlhtError::TableFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_full, "table-full must surface through upsert");
    }

    #[test]
    fn default_batch_honors_stop_on_failure() {
        let set = DlhtSet::with_capacity(64);
        let reqs = [
            Request::Insert(1, 0),
            Request::Insert(1, 0), // duplicate -> failure
            Request::Insert(2, 0),
        ];
        let out = KvBackend::execute_batch(&set, &reqs, BatchPolicy::StopOnFailure);
        assert!(out[0].succeeded());
        assert!(!out[1].succeeded());
        assert_eq!(out[2], Response::Skipped);
        assert!(!KvBackend::contains(&set, 2));
    }

    #[test]
    fn trait_execute_reuses_batch_storage() {
        let map = DlhtMap::with_capacity(256);
        let backend: &dyn KvBackend = &map;
        let mut batch = Batch::with_capacity(2);
        for round in 0..8u64 {
            batch.clear();
            batch.push_insert(round, round * 7);
            batch.push_get(round);
            backend.execute(&mut batch, BatchPolicy::RunAll);
            assert_eq!(batch.responses()[1], Response::Value(Some(round * 7)));
        }
        assert_eq!(map.len(), 8);
    }

    #[test]
    fn arc_and_box_blankets_delegate() {
        let arc = std::sync::Arc::new(DlhtMap::with_capacity(64));
        assert!(arc.insert(3, 30).unwrap().inserted());
        assert_eq!(KvBackend::get(&arc, 3), Some(30));
        let boxed: Box<dyn KvBackend> = Box::new(DlhtMap::with_capacity(64));
        assert!(boxed.insert(4, 40).unwrap().inserted());
        assert_eq!(boxed.get(4), Some(40));
        assert_eq!(boxed.stats().occupied_slots, 1);
    }

    #[test]
    fn reserved_keys_rejected_via_trait_and_batch() {
        let map = DlhtMap::with_capacity(64);
        let b: &dyn KvBackend = &map;
        assert_eq!(b.insert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        assert_eq!(b.insert(u64::MAX - 1, 1), Err(DlhtError::ReservedKey));
        assert_eq!(b.upsert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        let out = b.execute_batch(&[Request::Insert(u64::MAX, 1)], BatchPolicy::RunAll);
        assert_eq!(out[0], Response::Inserted(Err(DlhtError::ReservedKey)));
    }
}
