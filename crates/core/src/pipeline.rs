//! Bounded prefetch pipeline: DRAMHiT-style submission with DLHT's
//! no-reorder guarantee.
//!
//! Where a [`crate::Batch`] overlaps memory latencies *within* one call, a
//! [`Pipeline`] keeps a stream of operations in flight *across* calls: every
//! [`Pipeline::submit`] issues the software prefetch for the request's bin
//! immediately, and the request executes only once up to `depth` later
//! requests have been submitted behind it (or on [`Pipeline::poll`] /
//! [`Pipeline::drain`]). By the time a request executes, its cache line has
//! had the whole pipeline depth worth of work to arrive — the interface shape
//! DRAMHiT uses to reach memory-bandwidth-bound throughput, but with
//! **order-preserving completion**: responses always come back in submission
//! order, the property §5.3.3 shows a lock manager needs to avoid deadlock.
//!
//! ```
//! use dlht_core::{DlhtMap, Pipeline, Request, Response};
//!
//! let map = DlhtMap::with_capacity(1024);
//! map.insert(7, 700).unwrap();
//!
//! let mut pipe = Pipeline::new(&map, 8);
//! let mut hits = 0;
//! for key in 0..100u64 {
//!     // Prefetch now, execute once the pipeline is full.
//!     if let Some(Response::Value(Some(_))) = pipe.submit(Request::Get(key)) {
//!         hits += 1;
//!     }
//! }
//! for resp in pipe.drain() {
//!     if matches!(resp, Response::Value(Some(_))) {
//!         hits += 1;
//!     }
//! }
//! assert_eq!(hits, 1);
//! ```

use crate::batch::{Batch, BatchPolicy, Request, Response};
use crate::kv::KvBackend;
use std::collections::VecDeque;

/// Anything that can prefetch a key's location and execute a [`Batch`] — the
/// engine a [`Pipeline`] drives.
///
/// Implemented by every [`KvBackend`] (via the blanket impl below) and by the
/// slot-cached [`crate::Session`]. The split from `KvBackend` exists because
/// executors need not be `Send + Sync`: a `Session` is deliberately pinned to
/// its creating thread.
pub trait BatchExecutor {
    /// Issue a software prefetch for wherever `key` lives (best effort; a
    /// no-op for engines without prefetch support).
    ///
    /// Named distinctly from [`KvBackend::prefetch_key`] so importing both
    /// traits never makes method calls ambiguous.
    fn issue_prefetch(&self, key: u64);

    /// Execute the batch, filling its response storage (same contract as
    /// [`KvBackend::execute`]).
    fn run(&self, batch: &mut Batch, policy: BatchPolicy);

    /// [`BatchExecutor::run`] for a batch whose requests were already
    /// prefetched one by one via [`BatchExecutor::issue_prefetch`]: engines
    /// with an up-front prefetch sweep skip it here instead of issuing every
    /// prefetch twice.
    fn run_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.run(batch, policy);
    }
}

impl<B: KvBackend + ?Sized> BatchExecutor for B {
    fn issue_prefetch(&self, key: u64) {
        KvBackend::prefetch_key(self, key);
    }

    fn run(&self, batch: &mut Batch, policy: BatchPolicy) {
        KvBackend::execute(self, batch, policy);
    }

    fn run_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        KvBackend::execute_prefetched(self, batch, policy);
    }
}

/// A bounded in-flight window of operations over a [`BatchExecutor`].
///
/// Up to `depth` submitted requests are held *pending*: prefetched but not
/// yet executed. When the window fills, the oldest `depth/2` pending requests
/// execute as one batch (amortizing the enter/leave announcement) and their
/// responses queue up for retrieval — strictly in submission order.
///
/// # Completion order
///
/// Responses are returned in exactly the order their requests were submitted,
/// at every depth; a pipeline of depth 1 is behaviourally identical to
/// calling the single-request operations in a loop.
///
/// # Cost model
///
/// On DLHT with resizing enabled, each submit-time prefetch must announce
/// itself to the index-GC registry (the §3.2.5 enter/leave protocol) before
/// it can compute the bin address, so a pipeline pays per-request
/// announcement overhead that the discrete batch path amortizes over the
/// whole window. The flush path skips its usual prefetch sweep (the requests
/// were already prefetched at submit), but when raw throughput on one table
/// matters more than streaming submission, prefer [`crate::Batch`].
///
/// # Dropping
///
/// Dropping a pipeline **executes** any still-pending requests (discarding
/// their responses), so a submitted write always takes effect. Call
/// [`Pipeline::drain`] first when the responses matter.
#[must_use = "a Pipeline executes requests only when driven (submit/poll/drain); \
              dropping it unused discards the prefetch window"]
pub struct Pipeline<'a, E: BatchExecutor + ?Sized> {
    exec: &'a E,
    depth: usize,
    /// How many pending requests execute per flush: `max(depth / 2, 1)`, so a
    /// full window keeps at least half its prefetch distance after a flush.
    chunk: usize,
    flush_policy: BatchPolicy,
    pending: VecDeque<Request>,
    ready: VecDeque<Response>,
    scratch: Batch,
}

impl<'a, E: BatchExecutor + ?Sized> Pipeline<'a, E> {
    /// Create a pipeline of at most `depth` in-flight requests over `exec`
    /// (`depth` is clamped to at least 1). Executes with
    /// [`BatchPolicy::RunAll`]; streams have no meaningful "stop the batch"
    /// boundary.
    pub fn new(exec: &'a E, depth: usize) -> Self {
        Self::with_flush_policy(exec, depth, BatchPolicy::RunAll)
    }

    /// [`Pipeline::new`] with an explicit flush policy. The only other policy
    /// that makes sense for a stream is [`BatchPolicy::Unordered`], which lets
    /// reordering engines (the DRAMHiT-like baseline) run each flushed chunk
    /// natively out of order; responses still come back in submission order.
    pub fn with_flush_policy(exec: &'a E, depth: usize, flush_policy: BatchPolicy) -> Self {
        let depth = depth.max(1);
        Pipeline {
            exec,
            depth,
            chunk: (depth / 2).max(1),
            flush_policy,
            pending: VecDeque::with_capacity(depth),
            ready: VecDeque::with_capacity(depth),
            scratch: Batch::with_capacity((depth / 2).max(1)),
        }
    }

    /// The configured maximum number of in-flight (pending) requests.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Requests submitted but not yet executed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Responses executed but not yet retrieved.
    pub fn ready(&self) -> usize {
        self.ready.len()
    }

    /// Submit a request: its prefetch is issued immediately, execution is
    /// deferred until the in-flight window fills (or a poll/drain).
    ///
    /// Returns the oldest completed response, if one is available — in steady
    /// state every submit returns exactly one response, lag `depth` behind
    /// the submission stream.
    // HOT: per-op path on the pipelined client loop — must not panic.
    pub fn submit(&mut self, request: Request) -> Option<Response> {
        self.exec.issue_prefetch(request.key());
        self.pending.push_back(request);
        if self.pending.len() >= self.depth {
            self.flush_n(self.chunk);
        }
        self.ready.pop_front()
    }

    /// Retrieve the oldest response, executing pending requests if none is
    /// ready yet. Returns `None` only when the pipeline is empty.
    // HOT: per-op path on the pipelined client loop — must not panic.
    pub fn poll(&mut self) -> Option<Response> {
        if self.ready.is_empty() && !self.pending.is_empty() {
            self.flush_n(self.chunk.min(self.pending.len()));
        }
        self.ready.pop_front()
    }

    /// Execute every pending request now (responses become retrievable via
    /// [`Pipeline::poll`] / [`Pipeline::drain`]).
    pub fn flush(&mut self) {
        let n = self.pending.len();
        self.flush_n(n);
    }

    /// Execute everything still pending and append all remaining responses to
    /// `out`, in submission order. Returns how many responses were appended.
    /// `out` is not cleared, so a caller-provided buffer can accumulate.
    pub fn drain_into(&mut self, out: &mut Vec<Response>) -> usize {
        self.flush();
        let n = self.ready.len();
        out.reserve(n);
        while let Some(resp) = self.ready.pop_front() {
            out.push(resp);
        }
        n
    }

    /// Convenience over [`Pipeline::drain_into`] allocating a fresh vector.
    pub fn drain(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Execute the oldest `n` pending requests as one batch.
    // HOT: per-op path under Pipeline::submit/poll — must not panic.
    fn flush_n(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.scratch.clear();
        // Bounded by whatever is actually pending: a caller-supplied `n`
        // larger than the queue flushes everything rather than panicking.
        for _ in 0..n {
            match self.pending.pop_front() {
                Some(req) => self.scratch.push(req),
                None => break,
            }
        }
        self.exec
            .run_prefetched(&mut self.scratch, self.flush_policy);
        self.ready.extend(self.scratch.responses().iter().copied());
    }
}

impl<E: BatchExecutor + ?Sized> Drop for Pipeline<'_, E> {
    fn drop(&mut self) {
        // A submitted request must take effect even if the caller never
        // polled for its response — but not while unwinding from a panic in
        // the executor itself, where re-executing would panic again and turn
        // the unwind into a process abort.
        if !std::thread::panicking() {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::DlhtMap;

    #[test]
    fn depth_is_clamped_and_reported() {
        let map = DlhtMap::with_capacity(64);
        let pipe = Pipeline::new(&map, 0);
        assert_eq!(pipe.depth(), 1);
        let pipe = Pipeline::new(&map, 32);
        assert_eq!(pipe.depth(), 32);
    }

    #[test]
    fn responses_preserve_submission_order() {
        let map = DlhtMap::with_capacity(1024);
        for k in 0..64u64 {
            let _ = map.insert(k, k * 3).unwrap();
        }
        let mut pipe = Pipeline::new(&map, 8);
        let mut got = Vec::new();
        for k in 0..64u64 {
            if let Some(r) = pipe.submit(Request::Get(k)) {
                got.push(r);
            }
        }
        pipe.drain_into(&mut got);
        assert_eq!(got.len(), 64);
        for (k, r) in got.iter().enumerate() {
            assert_eq!(*r, Response::Value(Some(k as u64 * 3)));
        }
    }

    #[test]
    fn dependent_requests_observe_earlier_submissions() {
        // Insert then Get of the same key through the pipeline: the Get must
        // see the Insert because execution is strictly in submission order.
        let map = DlhtMap::with_capacity(1024);
        let mut pipe = Pipeline::new(&map, 16);
        let mut out = Vec::new();
        for k in 0..50u64 {
            for req in [
                Request::Insert(k, k + 1),
                Request::Get(k),
                Request::Delete(k),
            ] {
                if let Some(r) = pipe.submit(req) {
                    out.push(r);
                }
            }
        }
        pipe.drain_into(&mut out);
        assert_eq!(out.len(), 150);
        for k in 0..50usize {
            assert_eq!(out[3 * k + 1], Response::Value(Some(k as u64 + 1)));
            assert_eq!(out[3 * k + 2], Response::Deleted(Some(k as u64 + 1)));
        }
        assert!(map.is_empty());
    }

    #[test]
    fn in_flight_stays_bounded_by_depth() {
        let map = DlhtMap::with_capacity(1024);
        let mut pipe = Pipeline::new(&map, 8);
        for k in 0..1000u64 {
            pipe.submit(Request::Get(k));
            assert!(pipe.in_flight() < 8 + 1, "window must stay bounded");
        }
    }

    #[test]
    fn drop_executes_pending_writes() {
        let map = DlhtMap::with_capacity(64);
        {
            let mut pipe = Pipeline::new(&map, 32);
            pipe.submit(Request::Insert(5, 50));
            // Dropped without poll/drain.
        }
        assert_eq!(map.get(5), Some(50));
    }

    #[test]
    fn poll_on_empty_pipeline_is_none() {
        let map = DlhtMap::with_capacity(64);
        let mut pipe = Pipeline::new(&map, 4);
        assert_eq!(pipe.poll(), None);
        pipe.submit(Request::Get(1));
        assert_eq!(pipe.poll(), Some(Response::Value(None)));
        assert_eq!(pipe.poll(), None);
    }
}
