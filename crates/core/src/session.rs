//! Per-thread submission sessions (§3.2.5 + §3.3).
//!
//! Every DLHT request must announce itself to the [`crate::registry::ThreadRegistry`]
//! so retired indexes can be garbage-collected after a resize. The plain
//! operations look the announcement slot up through a thread-local on every
//! call; a [`Session`] claims the slot **once** and reuses it, making the
//! per-request overhead exactly the two stores the paper describes — and it
//! is the factory for the [`Pipeline`] submission interface.
//!
//! ```
//! use dlht_core::{Batch, BatchPolicy, DlhtMap, Request, Response};
//!
//! let map = DlhtMap::with_capacity(1024);
//! let session = map.session(); // per-thread handle
//!
//! // Slot-cached single operations...
//! session.insert(1, 100).unwrap();
//! assert_eq!(session.get(1), Some(100));
//!
//! // ...reusable batches...
//! let mut batch = Batch::with_capacity(2);
//! batch.push_put(1, 101);
//! batch.push_get(1);
//! session.execute(&mut batch, BatchPolicy::RunAll);
//! assert_eq!(batch.responses()[1], Response::Value(Some(101)));
//!
//! // ...and bounded prefetch pipelines.
//! let mut pipe = session.pipeline(16);
//! pipe.submit(Request::Delete(1));
//! assert_eq!(pipe.drain()[0], Response::Deleted(Some(101)));
//! ```

use crate::batch::{Batch, BatchPolicy};
use crate::error::{DlhtError, InsertOutcome};
use crate::header::SlotState;
use crate::pipeline::{BatchExecutor, Pipeline};
use crate::table::{EnterGuard, RawTable};
use std::marker::PhantomData;

/// A per-thread handle over a [`RawTable`] (or any mode wrapping one) with a
/// pre-claimed registry announcement slot.
///
/// `Session` is deliberately **not** `Send`/`Sync`: the cached slot belongs to
/// the creating thread. Create one session per worker thread (they are cheap)
/// and drive batches or a [`Pipeline`] through it.
pub struct Session<'t> {
    table: &'t RawTable,
    /// The claimed announcement slot; `None` when resizing is disabled and
    /// the enter/leave protocol is skipped entirely (§3.4.5).
    slot: Option<usize>,
    /// Pins the session to its creating thread.
    _not_send: PhantomData<*mut ()>,
}

impl<'t> Session<'t> {
    pub(crate) fn new(table: &'t RawTable) -> Self {
        let slot = table
            .config()
            .resizing
            .then(|| table.registry().slot_for_current_thread());
        Session {
            table,
            slot,
            _not_send: PhantomData,
        }
    }

    #[inline]
    pub(crate) fn enter(&self) -> EnterGuard<'t> {
        match self.slot {
            Some(slot) => self.table.enter_with_slot(slot),
            None => self.table.enter(),
        }
    }

    /// The table this session operates on.
    pub fn table(&self) -> &'t RawTable {
        self.table
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let guard = self.enter();
        let r = self.table.get_guarded(guard.index_ptr(), key);
        drop(guard);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; fails (without overwriting) if the key exists.
    pub fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        let guard = self.enter();
        let r = self
            .table
            .insert_guarded(guard.index_ptr(), key, value, SlotState::Valid);
        drop(guard);
        r
    }

    /// Update an existing key's value; returns the previous value.
    pub fn put(&self, key: u64, value: u64) -> Option<u64> {
        let guard = self.enter();
        let r = self.table.put_guarded(guard.index_ptr(), key, value);
        drop(guard);
        r
    }

    /// Delete `key`, returning its value if it was present.
    pub fn delete(&self, key: u64) -> Option<u64> {
        let guard = self.enter();
        let r = self.table.delete_guarded(guard.index_ptr(), key);
        drop(guard);
        r
    }

    /// Issue a software prefetch for the bin `key` hashes to.
    pub fn prefetch(&self, key: u64) {
        let guard = self.enter();
        // SAFETY: protected by the guard.
        let idx = unsafe { &*guard.index_ptr() };
        idx.prefetch_bin(idx.bin_of(key));
        drop(guard);
    }

    /// Execute `batch` in order with the prefetch sweep, reusing the batch's
    /// response storage — see [`RawTable::execute`]. One enter/leave
    /// announcement (through the cached slot) covers the whole batch.
    pub fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        let guard = self.enter();
        self.table
            .execute_entered(guard.index_ptr(), batch, policy, true);
        drop(guard);
    }

    /// [`Session::execute`] without the up-front prefetch sweep, for batches
    /// whose requests were already prefetched one by one (the pipeline's
    /// flush path).
    pub fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        let guard = self.enter();
        self.table
            .execute_entered(guard.index_ptr(), batch, policy, false);
        drop(guard);
    }

    /// Open a bounded prefetch [`Pipeline`] of `depth` in-flight requests
    /// submitting through this session.
    pub fn pipeline(&self, depth: usize) -> Pipeline<'_, Self> {
        Pipeline::new(self, depth)
    }
}

impl BatchExecutor for Session<'_> {
    fn issue_prefetch(&self, key: u64) {
        Session::prefetch(self, key);
    }

    fn run(&self, batch: &mut Batch, policy: BatchPolicy) {
        Session::execute(self, batch, policy);
    }

    fn run_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        Session::execute_prefetched(self, batch, policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Request, Response};
    use crate::config::DlhtConfig;
    use crate::map::DlhtMap;

    #[test]
    fn session_single_ops_roundtrip() {
        let map = DlhtMap::with_capacity(256);
        let s = map.session();
        assert!(s.insert(1, 10).unwrap().inserted());
        assert_eq!(s.get(1), Some(10));
        assert!(s.contains(1));
        assert_eq!(s.put(1, 11), Some(10));
        assert_eq!(s.delete(1), Some(11));
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn session_without_resizing_skips_the_registry() {
        let map = DlhtMap::with_config(DlhtConfig::new(64).with_resizing(false));
        let s = map.session();
        assert!(s.slot.is_none());
        assert!(s.insert(2, 20).unwrap().inserted());
        assert_eq!(s.get(2), Some(20));
    }

    #[test]
    fn session_batches_and_pipeline_share_the_cached_slot() {
        let map = DlhtMap::with_capacity(1024);
        let s = map.session();
        let mut batch = Batch::new();
        for k in 0..32u64 {
            batch.push_insert(k, k);
        }
        s.execute(&mut batch, BatchPolicy::RunAll);
        assert!(batch.responses().iter().all(|r| r.succeeded()));

        let mut pipe = s.pipeline(8);
        let mut hits = 0usize;
        for k in 0..64u64 {
            if let Some(Response::Value(Some(_))) = pipe.submit(Request::Get(k)) {
                hits += 1;
            }
        }
        for r in pipe.drain() {
            if matches!(r, Response::Value(Some(_))) {
                hits += 1;
            }
        }
        assert_eq!(hits, 32);
    }

    #[test]
    fn sessions_survive_resizes() {
        let map = DlhtMap::with_config(DlhtConfig::new(4).with_chunk_bins(2));
        let s = map.session();
        for k in 0..2_000u64 {
            let _ = s.insert(k, k).unwrap();
        }
        assert!(map.resizes() > 0, "the tiny index must have grown");
        for k in 0..2_000u64 {
            assert_eq!(s.get(k), Some(k), "key {k} lost across resize");
        }
    }
}
