//! The Allocator mode (§3.1, mode 2): keys and/or values larger than 8 bytes
//! are stored in out-of-line records obtained from a [`ValueAllocator`]; the
//! slot's value word holds a [`TaggedPtr`] to the record.
//!
//! Features implemented here, as described by the paper:
//!
//! * **Pointer API** instead of Put (§3.2.1): a Get can expose the record so
//!   the client modifies the value in place; blind overwrites are expressed as
//!   delete+insert.
//! * **Variable-size keys and values in a single index** (§3.4.1): when
//!   enabled, every record carries its own key/value lengths.
//! * **Namespaces** (§3.4.2): a 12-bit namespace id packed in the tagged
//!   pointer; keys in different namespaces never conflict.
//! * **Epoch-based GC for deletes** (§3.2.3): deleted records are retired to
//!   a [`dlht_epoch::Collector`] and freed two epochs later.
//!
//! Threads interact through an [`AllocSession`], which owns the thread's epoch
//! handle. Call [`AllocSession::quiesce`] between batches (the paper's
//! "periodically performs a call from all threads to advance the epoch").

use crate::config::DlhtConfig;
use crate::error::{DlhtError, InsertOutcome};
use crate::stats::TableStats;
use crate::table::RawTable;
use crate::tagged_ptr::TaggedPtr;
use dlht_alloc::ValueAllocator;
use dlht_epoch::{Collector, LocalHandle};
use dlht_hash::WyHash;
use std::sync::Arc;

/// Maximum supported key length in bytes.
pub const MAX_KEY_LEN: usize = u16::MAX as usize;

/// Record header used when variable-size keys/values are enabled.
#[repr(C)]
struct VarHeader {
    key_len: u16,
    _pad: u16,
    val_len: u32,
}

const VAR_HEADER_LEN: usize = std::mem::size_of::<VarHeader>();

/// Concurrent map for out-of-line (≥ 8 B) keys and values.
pub struct DlhtAllocMap {
    table: RawTable,
    allocator: Arc<dyn ValueAllocator>,
    collector: Arc<Collector>,
    /// Fixed key/value lengths used when `config.variable_size` is false.
    fixed_key_len: usize,
    fixed_val_len: usize,
}

impl DlhtAllocMap {
    /// Create an Allocator-mode map.
    ///
    /// `fixed_key_len` / `fixed_val_len` define the record layout when
    /// variable-size support is disabled in `config`; they are ignored (and
    /// may be 0) when it is enabled.
    pub fn new(
        config: DlhtConfig,
        allocator: Arc<dyn ValueAllocator>,
        fixed_key_len: usize,
        fixed_val_len: usize,
    ) -> Self {
        DlhtAllocMap {
            table: RawTable::with_config(config),
            allocator,
            collector: Arc::new(Collector::new()),
            fixed_key_len,
            fixed_val_len,
        }
    }

    /// Convenience constructor sized for `keys` fixed-size pairs.
    pub fn with_capacity(keys: usize, key_len: usize, val_len: usize) -> Self {
        Self::new(
            DlhtConfig::for_capacity(keys),
            dlht_alloc::AllocatorKind::Pool.build(),
            key_len,
            val_len,
        )
    }

    /// Open a per-thread session. Each thread should keep its session for the
    /// duration of its work and call [`AllocSession::quiesce`] periodically.
    pub fn session(&self) -> AllocSession<'_> {
        let handle = self
            .collector
            .register()
            .expect("too many concurrent sessions");
        AllocSession { map: self, handle }
    }

    /// Structural statistics of the index.
    pub fn stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Number of live keys (linear scan).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The epoch collector (exposed for coordinated shutdown in tests).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// The active configuration.
    pub fn config(&self) -> &DlhtConfig {
        self.table.config()
    }

    // ---- record layout helpers -------------------------------------------------

    fn record_size(&self, key_len: usize, val_len: usize) -> usize {
        if self.config().variable_size {
            VAR_HEADER_LEN + key_len + val_len
        } else {
            self.fixed_key_len + self.fixed_val_len
        }
    }

    /// Key word + whether the key is inlined exactly (no record verification
    /// needed).
    fn key_word(&self, namespace: u16, key: &[u8]) -> (u64, bool) {
        if key.len() == 8 && !self.config().namespaces {
            let word = u64::from_le_bytes(key.try_into().unwrap());
            if !crate::bucket::is_reserved_key(word) {
                return (word, true);
            }
        }
        // Fingerprint path: hash the namespace and key; collisions are
        // resolved by verifying against the record.
        let mut fp = WyHash::hash_bytes_seeded(key, namespace as u64 + 1);
        if crate::bucket::is_reserved_key(fp) {
            fp ^= 1;
        }
        (fp, false)
    }

    /// Write a record and return its pointer.
    fn write_record(&self, key: &[u8], value: &[u8]) -> *mut u8 {
        let size = self.record_size(key.len(), value.len());
        let ptr = self.allocator.alloc(size);
        // SAFETY: `ptr` is a fresh allocation of `size` bytes.
        unsafe {
            if self.config().variable_size {
                let header = VarHeader {
                    key_len: key.len() as u16,
                    _pad: 0,
                    val_len: value.len() as u32,
                };
                std::ptr::copy_nonoverlapping(
                    (&header as *const VarHeader).cast::<u8>(),
                    ptr,
                    VAR_HEADER_LEN,
                );
                std::ptr::copy_nonoverlapping(key.as_ptr(), ptr.add(VAR_HEADER_LEN), key.len());
                std::ptr::copy_nonoverlapping(
                    value.as_ptr(),
                    ptr.add(VAR_HEADER_LEN + key.len()),
                    value.len(),
                );
            } else {
                debug_assert_eq!(key.len(), self.fixed_key_len);
                debug_assert_eq!(value.len(), self.fixed_val_len);
                std::ptr::copy_nonoverlapping(key.as_ptr(), ptr, key.len());
                std::ptr::copy_nonoverlapping(value.as_ptr(), ptr.add(key.len()), value.len());
            }
        }
        ptr
    }

    /// Decode a record into (key bytes, value bytes) slices.
    ///
    /// # Safety
    /// `ptr` must point to a live record written by [`Self::write_record`]
    /// with the same configuration.
    unsafe fn read_record<'a>(&self, ptr: *const u8) -> (&'a [u8], &'a [u8]) {
        // SAFETY: caller contract — `ptr` is a live record laid out by
        // `write_record` under the same configuration, so the header (in
        // variable mode) and the key/value ranges are all in bounds.
        unsafe {
            if self.config().variable_size {
                let header = &*(ptr as *const VarHeader);
                let key =
                    std::slice::from_raw_parts(ptr.add(VAR_HEADER_LEN), header.key_len as usize);
                let value = std::slice::from_raw_parts(
                    ptr.add(VAR_HEADER_LEN + header.key_len as usize),
                    header.val_len as usize,
                );
                (key, value)
            } else {
                let key = std::slice::from_raw_parts(ptr, self.fixed_key_len);
                let value =
                    std::slice::from_raw_parts(ptr.add(self.fixed_key_len), self.fixed_val_len);
                (key, value)
            }
        }
    }

    fn free_record(&self, ptr: *mut u8, key_len: usize, val_len: usize) {
        let size = self.record_size(key_len, val_len);
        // SAFETY: the record was allocated with exactly this size.
        unsafe { self.allocator.dealloc(ptr, size) };
    }

    /// Validate lengths against the configuration.
    fn check_lengths(&self, key: &[u8], value: &[u8]) -> Result<(), DlhtError> {
        if key.is_empty() || key.len() > MAX_KEY_LEN {
            return Err(DlhtError::KeyTooLong);
        }
        if !self.config().variable_size
            && (key.len() != self.fixed_key_len || value.len() != self.fixed_val_len)
        {
            return Err(DlhtError::KeyTooLong);
        }
        Ok(())
    }
}

impl Drop for DlhtAllocMap {
    fn drop(&mut self) {
        // Free every record still referenced by the index. Exclusive access.
        let mut ptrs = Vec::new();
        self.table.for_each(|_, value_word| {
            ptrs.push(TaggedPtr(value_word));
        });
        for tp in ptrs {
            let ptr = tp.ptr();
            if ptr.is_null() {
                continue;
            }
            // SAFETY: exclusive access; record is live.
            let (k, v) = unsafe { self.read_record(ptr) };
            let (kl, vl) = (k.len(), v.len());
            self.free_record(ptr, kl, vl);
        }
    }
}

/// Per-thread session over a [`DlhtAllocMap`].
pub struct AllocSession<'a> {
    map: &'a DlhtAllocMap,
    handle: LocalHandle,
}

impl AllocSession<'_> {
    /// Insert `key -> value` under `namespace`. Returns `Ok(false)` if the key
    /// already exists (the existing value is left untouched).
    pub fn insert(&mut self, namespace: u16, key: &[u8], value: &[u8]) -> Result<bool, DlhtError> {
        self.map.check_lengths(key, value)?;
        let (word, _exact) = self.map.key_word(namespace, key);
        let record = self.map.write_record(key, value);
        let inline_size = if key.len() <= 8 { key.len() } else { 0 };
        let tagged = match TaggedPtr::pack(record, namespace, inline_size) {
            Ok(t) => t,
            Err(e) => {
                self.map.free_record(record, key.len(), value.len());
                return Err(e);
            }
        };
        match self.map.table.insert(word, tagged.0) {
            Ok(InsertOutcome::Inserted) => Ok(true),
            Ok(InsertOutcome::AlreadyExists(_)) => {
                // The paper notes the Insert may fail after allocating; the
                // allocation is released before returning (§3.2.2 Allocator).
                self.map.free_record(record, key.len(), value.len());
                Ok(false)
            }
            Err(e) => {
                self.map.free_record(record, key.len(), value.len());
                Err(e)
            }
        }
    }

    /// Issue a software prefetch for the index bin `key` hashes to under
    /// `namespace` — the batch/pipeline interoperation hook (§3.3): prefetch
    /// a handful of keys, then issue the lookups, so the random index
    /// accesses overlap.
    pub fn prefetch(&mut self, namespace: u16, key: &[u8]) {
        let (word, _) = self.map.key_word(namespace, key);
        self.map.table.prefetch(word);
    }

    /// Look up `key`, invoking `f` on the value bytes without copying them
    /// (the pointer API of §3.2.1).
    pub fn get_with<R>(
        &mut self,
        namespace: u16,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> Option<R> {
        let (word, exact) = self.map.key_word(namespace, key);
        let value_word = self.map.table.get(word)?;
        let tagged = TaggedPtr(value_word);
        let ptr = tagged.ptr();
        if ptr.is_null() {
            return None;
        }
        // SAFETY: the record cannot be freed before this session's next
        // quiescent point (epoch GC).
        let (rec_key, rec_val) = unsafe { self.map.read_record(ptr) };
        if tagged.namespace() != namespace {
            return None;
        }
        if !exact && rec_key != key {
            return None;
        }
        Some(f(rec_val))
    }

    /// Look up `key` and return a copy of its value bytes.
    pub fn get(&mut self, namespace: u16, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(namespace, key, |v| v.to_vec())
    }

    /// Pointer API for in-place modification: returns the raw value pointer
    /// and length. The caller is responsible for coordinating concurrent
    /// writers (e.g. with a lock embedded in the value, as the paper's
    /// transactional clients do) and must not use the pointer after this
    /// session's next [`AllocSession::quiesce`] call.
    // ESCAPE: `&mut self` pins this session between quiescent points, which
    // is the epoch protection here — the record cannot be freed until the
    // caller's next `quiesce`, exactly the documented pointer lifetime.
    pub fn get_value_ptr(&mut self, namespace: u16, key: &[u8]) -> Option<(*mut u8, usize)> {
        let (word, exact) = self.map.key_word(namespace, key);
        let value_word = self.map.table.get(word)?;
        let tagged = TaggedPtr(value_word);
        let ptr = tagged.ptr();
        if ptr.is_null() || tagged.namespace() != namespace {
            return None;
        }
        // SAFETY: record protected by the epoch GC until our next quiescence.
        let (rec_key, rec_val) = unsafe { self.map.read_record(ptr) };
        if !exact && rec_key != key {
            return None;
        }
        // SAFETY: `rec_val` was sliced out of the record at `ptr`, so both
        // pointers are in the same allocation and the offset is in bounds.
        let offset = unsafe { rec_val.as_ptr().offset_from(ptr) } as usize;
        // SAFETY: as above — `ptr + offset` is the value's start, in bounds.
        Some((unsafe { ptr.add(offset) }, rec_val.len()))
    }

    /// Whether `key` exists under `namespace`.
    pub fn contains(&mut self, namespace: u16, key: &[u8]) -> bool {
        self.get_with(namespace, key, |_| ()).is_some()
    }

    /// Delete `key`. The index slot is reclaimed immediately; the record is
    /// freed by the epoch GC two epochs later.
    pub fn delete(&mut self, namespace: u16, key: &[u8]) -> bool {
        let (word, exact) = self.map.key_word(namespace, key);
        // Verify before deleting so a fingerprint collision cannot remove an
        // unrelated pair.
        if !exact && !self.contains(namespace, key) {
            return false;
        }
        let Some(value_word) = self.map.table.delete(word) else {
            return false;
        };
        let tagged = TaggedPtr(value_word);
        let ptr = tagged.ptr();
        if ptr.is_null() {
            return true;
        }
        // SAFETY: we hold the only logical reference for reclamation purposes;
        // concurrent readers are protected by the epoch.
        let (rec_key, rec_val) = unsafe { self.map.read_record(ptr) };
        let (kl, vl) = (rec_key.len(), rec_val.len());
        let allocator = Arc::clone(&self.map.allocator);
        let size = self.map.record_size(kl, vl);
        let addr = ptr as usize;
        self.handle.defer(move || {
            // SAFETY: by the time the epoch GC runs this, no reader can hold
            // the record.
            unsafe { allocator.dealloc(addr as *mut u8, size) };
        });
        true
    }

    /// Announce a quiescent point: retired records from two epochs ago become
    /// freeable, and the global epoch advances once all sessions have done so.
    pub fn quiesce(&mut self) {
        self.handle.quiescent();
    }

    /// Number of records retired by this session and not yet freed.
    pub fn pending_garbage(&self) -> usize {
        self.handle.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_alloc::{AllocatorKind, CountingAllocator, SystemAllocator};

    fn var_map() -> DlhtAllocMap {
        DlhtAllocMap::new(
            DlhtConfig::new(256)
                .with_variable_size(true)
                .with_namespaces(true),
            AllocatorKind::System.build(),
            0,
            0,
        )
    }

    #[test]
    fn fixed_size_insert_get_delete() {
        let map = DlhtAllocMap::with_capacity(100, 8, 32);
        let mut s = map.session();
        let key = 42u64.to_le_bytes();
        let value = [7u8; 32];
        assert!(s.insert(0, &key, &value).unwrap());
        assert!(!s.insert(0, &key, &value).unwrap());
        assert_eq!(s.get(0, &key).unwrap(), value.to_vec());
        assert!(s.delete(0, &key));
        assert!(!s.delete(0, &key));
        assert_eq!(s.get(0, &key), None);
    }

    #[test]
    fn variable_sizes_in_one_index() {
        let map = var_map();
        let mut s = map.session();
        // The paper's example: a 2-byte key with a 5-byte value next to a
        // 128-byte key with a 1024-byte value (§3.4.1).
        assert!(s.insert(0, b"ab", b"hello").unwrap());
        let big_key = vec![9u8; 128];
        let big_val = vec![3u8; 1024];
        assert!(s.insert(0, &big_key, &big_val).unwrap());
        assert_eq!(s.get(0, b"ab").unwrap(), b"hello".to_vec());
        assert_eq!(s.get(0, &big_key).unwrap(), big_val);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn namespaces_do_not_conflict() {
        let map = var_map();
        let mut s = map.session();
        assert!(s.insert(1, b"same-key", b"one").unwrap());
        assert!(s.insert(2, b"same-key", b"two").unwrap());
        assert_eq!(s.get(1, b"same-key").unwrap(), b"one".to_vec());
        assert_eq!(s.get(2, b"same-key").unwrap(), b"two".to_vec());
        assert!(s.delete(1, b"same-key"));
        assert_eq!(s.get(1, b"same-key"), None);
        assert_eq!(s.get(2, b"same-key").unwrap(), b"two".to_vec());
    }

    #[test]
    fn invalid_namespace_is_rejected() {
        let map = var_map();
        let mut s = map.session();
        assert_eq!(s.insert(4096, b"k", b"v"), Err(DlhtError::InvalidNamespace));
    }

    #[test]
    fn pointer_api_allows_in_place_update() {
        let map = DlhtAllocMap::with_capacity(16, 8, 8);
        let mut s = map.session();
        let key = 1u64.to_le_bytes();
        s.insert(0, &key, &0u64.to_le_bytes()).unwrap();
        let (ptr, len) = s.get_value_ptr(0, &key).unwrap();
        assert_eq!(len, 8);
        // SAFETY: single-threaded test, pointer valid until quiesce.
        unsafe { std::ptr::copy_nonoverlapping(99u64.to_le_bytes().as_ptr(), ptr, 8) };
        assert_eq!(s.get(0, &key).unwrap(), 99u64.to_le_bytes().to_vec());
    }

    #[test]
    fn get_with_reads_without_copying() {
        let map = var_map();
        let mut s = map.session();
        s.insert(0, b"k1", b"abcdef").unwrap();
        let len = s.get_with(0, b"k1", |v| v.len()).unwrap();
        assert_eq!(len, 6);
        assert!(s.get_with(0, b"nope", |_| ()).is_none());
    }

    #[test]
    fn deleted_records_are_freed_after_quiescence() {
        let counting = Arc::new(CountingAllocator::new(SystemAllocator::new()));
        let map = DlhtAllocMap::new(
            DlhtConfig::new(64).with_variable_size(true),
            counting.clone() as Arc<dyn ValueAllocator>,
            0,
            0,
        );
        {
            let mut s = map.session();
            for i in 0..50u64 {
                s.insert(0, &i.to_le_bytes(), &[1u8; 64]).unwrap();
            }
            for i in 0..50u64 {
                assert!(s.delete(0, &i.to_le_bytes()));
            }
            assert_eq!(counting.deallocs(), 0, "records must outlive the epoch");
            for _ in 0..4 {
                s.quiesce();
            }
            assert_eq!(counting.deallocs(), 50);
        }
        drop(map);
        assert_eq!(counting.live(), 0, "every allocation must be released");
    }

    #[test]
    fn drop_frees_live_records() {
        let counting = Arc::new(CountingAllocator::new(SystemAllocator::new()));
        {
            let map = DlhtAllocMap::new(
                DlhtConfig::new(64).with_variable_size(true),
                counting.clone() as Arc<dyn ValueAllocator>,
                0,
                0,
            );
            let mut s = map.session();
            for i in 0..20u64 {
                s.insert(0, &i.to_le_bytes(), &[2u8; 16]).unwrap();
            }
        }
        assert_eq!(counting.live(), 0);
    }

    #[test]
    fn wrong_length_rejected_in_fixed_mode() {
        let map = DlhtAllocMap::with_capacity(16, 8, 16);
        let mut s = map.session();
        assert!(s.insert(0, b"short", &[0u8; 16]).is_err());
        assert!(s.insert(0, &[0u8; 8], &[0u8; 15]).is_err());
    }

    #[test]
    fn concurrent_sessions_insert_and_read() {
        let map = Arc::new(DlhtAllocMap::new(
            DlhtConfig::new(1024).with_variable_size(true),
            AllocatorKind::Pool.build(),
            0,
            0,
        ));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let map = Arc::clone(&map);
                scope.spawn(move || {
                    let mut s = map.session();
                    for i in 0..500u64 {
                        let key = (t * 1_000_000 + i).to_le_bytes();
                        let val = vec![t as u8; 24];
                        assert!(s.insert(0, &key, &val).unwrap());
                        assert_eq!(s.get(0, &key).unwrap(), val);
                        if i % 16 == 0 {
                            s.quiesce();
                        }
                    }
                });
            }
        });
        assert_eq!(map.len(), 2_000);
    }
}
