//! Weakly-consistent snapshot iterator (§3.4.4).
//!
//! The paper offers both a strongly-consistent snapshot (via a same-size index
//! migration that briefly stalls updates) and the weakly-consistent,
//! non-blocking variant its clients prefer. This module implements the latter:
//! the iterator walks the bins, reading each bin under the same seqlock-style
//! version validation that Gets use, so every yielded pair existed at some
//! point during the iteration, but pairs inserted or deleted concurrently may
//! or may not be observed.

use crate::table::RawTable;

/// Weakly-consistent iterator over the live key-value pairs of a table.
///
/// The snapshot is materialized bin-by-bin when the iterator is created, so
/// the iterator itself does not hold the table pinned while the caller
/// processes items.
pub struct Iter<'a> {
    _table: &'a RawTable,
    items: std::vec::IntoIter<(u64, u64)>,
}

impl<'a> Iter<'a> {
    /// Capture a weak snapshot of `table`.
    pub(crate) fn new(table: &'a RawTable) -> Self {
        let mut items = Vec::new();
        table.for_each(|k, v| items.push((k, v)));
        Iter {
            _table: table,
            items: items.into_iter(),
        }
    }

    /// Number of pairs remaining.
    pub fn remaining(&self) -> usize {
        self.items.len()
    }
}

impl Iterator for Iter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        self.items.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use crate::config::DlhtConfig;
    use crate::table::RawTable;

    #[test]
    fn iterates_all_pairs_exactly_once() {
        let t = RawTable::with_config(DlhtConfig::new(128));
        for k in 0..64u64 {
            let _ = t.insert(k, k + 1).unwrap();
        }
        let iter = super::Iter::new(&t);
        assert_eq!(iter.remaining(), 64);
        let mut seen = std::collections::HashSet::new();
        for (k, v) in iter {
            assert_eq!(v, k + 1);
            assert!(seen.insert(k), "key {k} yielded twice");
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn snapshot_is_unaffected_by_later_mutations() {
        let t = RawTable::with_config(DlhtConfig::new(128));
        for k in 0..10u64 {
            let _ = t.insert(k, k).unwrap();
        }
        let iter = super::Iter::new(&t);
        // Mutate after the snapshot was taken.
        for k in 0..10u64 {
            t.delete(k);
        }
        assert_eq!(iter.count(), 10);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn concurrent_iteration_sees_stable_keys() {
        let t = std::sync::Arc::new(RawTable::with_config(DlhtConfig::new(512)));
        for k in 0..100u64 {
            let _ = t.insert(k, 1).unwrap();
        }
        std::thread::scope(|s| {
            // Churn on a disjoint key range.
            {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for round in 0..50u64 {
                        for k in 1_000..1_050u64 {
                            let _ = t.insert(k, round).unwrap();
                        }
                        for k in 1_000..1_050u64 {
                            t.delete(k);
                        }
                    }
                });
            }
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    let stable = super::Iter::new(&t).filter(|(k, _)| *k < 100).count();
                    assert_eq!(stable, 100, "stable keys must always be present");
                });
            }
        });
    }
}
