//! The core table: lock-free Get/Insert/Delete, dw-CAS Put, and the
//! non-blocking parallel resize (§3.2).
//!
//! [`RawTable`] stores 8-byte keys and 8-byte value words. The three public
//! modes are thin wrappers over it: the Inlined map stores values directly in
//! the value word, the HashSet ignores the value word, and the Allocator map
//! stores a tagged pointer in it.

use crate::bucket::{is_reserved_key, transfer_key_for_bin, LinkMeta, PrimaryBucket, NO_LINK};
use crate::config::DlhtConfig;
use crate::error::{DlhtError, InsertOutcome};
use crate::header::{BinHeader, BinState, SlotState, SLOTS_PER_BIN};
use crate::index::Index;
use crate::registry::ThreadRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// Outcome of attempting an operation on one index generation.
enum Probe<T> {
    /// The operation completed with this result.
    Done(T),
    /// The bin is currently being transferred; retry shortly.
    Busy,
    /// The bin has been transferred; retry on the next index.
    Moved,
    /// The bin (or the link-bucket pool) is full; a resize is required.
    NeedResize,
}

/// Core concurrent hashtable over 8-byte keys and 8-byte value words.
///
/// All operations are *practically non-blocking* (§2.1): an operation on key
/// `K_A` never impedes operations on a different key `K_B`; only operations on
/// a bin currently being copied by a resize wait, and only for the duration of
/// that single bin's transfer.
pub struct RawTable {
    current: AtomicPtr<Index>,
    registry: ThreadRegistry,
    config: DlhtConfig,
    /// Indexes that have been replaced but may still be referenced by
    /// in-flight operations. Freed strictly oldest-first.
    retired: Mutex<VecDeque<usize>>,
    resizes: AtomicU64,
}

// SAFETY: all interior state is atomics / mutex-protected; the raw Index
// pointers are managed by the hazard/retire protocol described in registry.rs.
unsafe impl Send for RawTable {}
// SAFETY: as above — shared access goes through atomics, the registry
// handshake, or the retired-list Mutex.
unsafe impl Sync for RawTable {}

/// RAII announcement that the current thread is operating on the table
/// (the paper's per-thread pointer, §3.2.5 "GC old index").
pub(crate) struct EnterGuard<'a> {
    table: &'a RawTable,
    slot: Option<usize>,
    index: *mut Index,
}

impl<'a> EnterGuard<'a> {
    /// The index generation this guard entered on.
    #[inline]
    pub(crate) fn index_ptr(&self) -> *mut Index {
        self.index
    }
}

impl Drop for EnterGuard<'_> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            self.table.registry.clear(slot);
        }
    }
}

impl RawTable {
    /// Create a table from a configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        let initial = Box::into_raw(Box::new(Index::new(config.num_bins, &config, 0)));
        RawTable {
            current: AtomicPtr::new(initial),
            registry: ThreadRegistry::with_capacity(config.max_threads),
            config,
            retired: Mutex::new(VecDeque::new()),
            resizes: AtomicU64::new(0),
        }
    }

    /// Create a table with `num_bins` bins and default configuration.
    pub fn new(num_bins: usize) -> Self {
        Self::with_config(DlhtConfig::new(num_bins))
    }

    /// The active configuration.
    pub fn config(&self) -> &DlhtConfig {
        &self.config
    }

    /// Number of resizes completed or in progress since creation.
    pub fn resizes(&self) -> u64 {
        self.resizes.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Entering / leaving (index garbage collection protocol)
    // ------------------------------------------------------------------

    /// Announce entry into the table and pin the current index generation.
    pub(crate) fn enter(&self) -> EnterGuard<'_> {
        if !self.config.resizing {
            // §3.4.5 / §5.2.5: with resizing disabled the enter/leave
            // notifications are unnecessary and skipped.
            return EnterGuard {
                table: self,
                slot: None,
                index: self.current.load(Ordering::Acquire),
            };
        }
        self.enter_with_slot(self.registry.slot_for_current_thread())
    }

    /// [`RawTable::enter`] with an already-claimed registry slot — the
    /// [`crate::Session`] fast path, which caches its slot at construction and
    /// skips the thread-local lookup on every request.
    pub(crate) fn enter_with_slot(&self, slot: usize) -> EnterGuard<'_> {
        loop {
            // ORDERING: SeqCst on both `current` loads — the load/announce/
            // re-check handshake must be totally ordered against the resizer's
            // swap-then-scan; with weaker orders the re-check could pass while
            // the resizer's scan missed the announcement.
            let p = self.current.load(Ordering::SeqCst);
            self.registry.announce(slot, p as usize);
            // ORDERING: SeqCst — see above; pairs with the first load.
            if self.current.load(Ordering::SeqCst) == p {
                return EnterGuard {
                    table: self,
                    slot: Some(slot),
                    index: p,
                };
            }
            // The index changed between load and announce; re-announce so the
            // resizer never misses us.
        }
    }

    /// The per-table thread registry (used by [`crate::Session`] to claim its
    /// announcement slot once).
    pub(crate) fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// Look up `key`, returning its value word.
    pub fn get(&self, key: u64) -> Option<u64> {
        let guard = self.enter();
        let r = self.get_guarded(guard.index_ptr(), key);
        drop(guard);
        r
    }

    /// Get starting from an already-pinned index generation (batch API).
    pub(crate) fn get_guarded(&self, start: *mut Index, key: u64) -> Option<u64> {
        if is_reserved_key(key) {
            return None;
        }
        self.run_readonly(start, |idx| self.get_in(idx, key))
    }

    /// Insert `key -> value`. Fails with `AlreadyExists` if present.
    pub fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.insert_with_state(key, value, SlotState::Valid)
    }

    /// Shadow-insert `key` (§3.2.2 "Transactions"): the key is claimed (a
    /// second insert fails) but hidden from Get/Put/Delete until
    /// [`RawTable::commit_shadow`] is called.
    pub fn insert_shadow(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.insert_with_state(key, value, SlotState::Shadow)
    }

    /// Commit (`true`) or abort (`false`) a shadow insert. Returns whether a
    /// shadow entry for `key` was found.
    pub fn commit_shadow(&self, key: u64, commit: bool) -> bool {
        if is_reserved_key(key) {
            return false;
        }
        let guard = self.enter();
        let r = self.run_mutating(guard.index_ptr(), |idx| {
            self.finish_shadow_in(idx, key, commit)
        });
        drop(guard);
        r
    }

    /// Update the value of an existing key with a 16-byte dw-CAS (§3.2.4).
    /// Returns the previous value word, or `None` if the key is absent.
    pub fn put(&self, key: u64, value: u64) -> Option<u64> {
        let guard = self.enter();
        let r = self.put_guarded(guard.index_ptr(), key, value);
        drop(guard);
        r
    }

    /// Put starting from an already-pinned index generation (batch API).
    pub(crate) fn put_guarded(&self, start: *mut Index, key: u64, value: u64) -> Option<u64> {
        if is_reserved_key(key) {
            return None;
        }
        self.run_mutating(start, |idx| self.put_in(idx, key, value))
    }

    /// Delete `key`, immediately reclaiming its slot (§3.2.3). Returns the
    /// deleted value word.
    pub fn delete(&self, key: u64) -> Option<u64> {
        let guard = self.enter();
        let r = self.delete_guarded(guard.index_ptr(), key);
        drop(guard);
        r
    }

    /// Delete starting from an already-pinned index generation (batch API).
    pub(crate) fn delete_guarded(&self, start: *mut Index, key: u64) -> Option<u64> {
        if is_reserved_key(key) {
            return None;
        }
        self.run_mutating(start, |idx| self.delete_in(idx, key))
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    fn insert_with_state(
        &self,
        key: u64,
        value: u64,
        state: SlotState,
    ) -> Result<InsertOutcome, DlhtError> {
        let guard = self.enter();
        let r = self.insert_guarded(guard.index_ptr(), key, value, state);
        drop(guard);
        r
    }

    /// Insert starting from an already-pinned index generation (batch API).
    pub(crate) fn insert_guarded(
        &self,
        start: *mut Index,
        key: u64,
        value: u64,
        state: SlotState,
    ) -> Result<InsertOutcome, DlhtError> {
        if is_reserved_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        let mut idx_ptr = start;
        loop {
            // SAFETY: idx_ptr is protected by the guard (entered index) plus
            // the oldest-first retirement rule for newer generations.
            let idx = unsafe { &*idx_ptr };
            match self.insert_in(idx, key, value, state) {
                Probe::Done(outcome) => return Ok(outcome),
                Probe::Busy => std::hint::spin_loop(),
                Probe::Moved => idx_ptr = self.follow_next(idx),
                Probe::NeedResize => {
                    if !self.config.resizing {
                        return Err(DlhtError::TableFull);
                    }
                    idx_ptr = self.grow(idx_ptr);
                }
            }
        }
    }

    /// Drive a read-only closure across Busy/Moved outcomes.
    fn run_readonly<T>(&self, start: *mut Index, mut op: impl FnMut(&Index) -> Probe<T>) -> T {
        let mut idx_ptr = start;
        loop {
            // SAFETY: protected by the caller's EnterGuard.
            let idx = unsafe { &*idx_ptr };
            match op(idx) {
                Probe::Done(v) => return v,
                Probe::Busy => std::hint::spin_loop(),
                Probe::Moved => idx_ptr = self.follow_next(idx),
                Probe::NeedResize => unreachable!("read-only ops never trigger resizes"),
            }
        }
    }

    /// Drive a mutating-but-never-growing closure across Busy/Moved outcomes.
    fn run_mutating<T>(&self, start: *mut Index, mut op: impl FnMut(&Index) -> Probe<T>) -> T {
        let mut idx_ptr = start;
        loop {
            // SAFETY: protected by the caller's EnterGuard.
            let idx = unsafe { &*idx_ptr };
            match op(idx) {
                Probe::Done(v) => return v,
                Probe::Busy => std::hint::spin_loop(),
                Probe::Moved => idx_ptr = self.follow_next(idx),
                Probe::NeedResize => {
                    unreachable!("puts/deletes never trigger resizes")
                }
            }
        }
    }

    #[inline]
    fn follow_next(&self, idx: &Index) -> *mut Index {
        let next = idx.next_ptr();
        debug_assert!(
            !next.is_null(),
            "a bin reported DoneTransfer but the next index is not published"
        );
        next
    }

    // ------------------------------------------------------------------
    // Per-index algorithms
    // ------------------------------------------------------------------

    /// Lock-free Get (§3.2.1): seqlock-style scan validated by the header
    /// version. Usually a single cache line / memory access.
    // HOT: the per-Get probe loop — must not panic.
    fn get_in(&self, idx: &Index, key: u64) -> Probe<Option<u64>> {
        let bin = idx.bin(idx.bin_of(key));
        'retry: loop {
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            match h.bin_state() {
                BinState::InTransfer => return Probe::Busy,
                BinState::DoneTransfer => return Probe::Moved,
                BinState::NoTransfer | BinState::Snapshot => {}
            }
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            let extent = h.occupied_extent();
            for slot in 0..extent {
                if h.slot_state(slot) != SlotState::Valid {
                    continue;
                }
                let Some(pair) = idx.slot_pair(bin, meta, slot) else {
                    continue;
                };
                if pair.load_lo(Ordering::Acquire) != key {
                    continue;
                }
                let value = pair.load_hi(Ordering::Acquire);
                let h2 = BinHeader(bin.header.load(Ordering::Acquire));
                if h2.version() == h.version() {
                    return Probe::Done(Some(value));
                }
                continue 'retry;
            }
            // Not found under this header snapshot; validate it was stable.
            let h2 = BinHeader(bin.header.load(Ordering::Acquire));
            if h2.version() == h.version() {
                return Probe::Done(None);
            }
        }
    }

    /// Scan the bin (under header snapshot `h`) for `key` among slots whose
    /// state is in `states`. Returns (slot index, value word).
    // AUDIT: allow(too_many_arguments) — the argument list mirrors the bin
    // probe state (index, bucket, header snapshot, link meta, key, filters)
    // that every caller already holds; bundling them would just add a struct
    // with one user.
    #[allow(clippy::too_many_arguments)]
    // HOT: inner bin scan shared by Insert/Update/Delete probes.
    fn scan_for_key(
        &self,
        idx: &Index,
        bin: &PrimaryBucket,
        h: BinHeader,
        meta: LinkMeta,
        key: u64,
        include_shadow: bool,
        exclude_slot: Option<usize>,
    ) -> Option<(usize, u64)> {
        let extent = h.occupied_extent();
        for slot in 0..extent {
            if Some(slot) == exclude_slot {
                continue;
            }
            let st = h.slot_state(slot);
            let visible = st == SlotState::Valid || (include_shadow && st == SlotState::Shadow);
            if !visible {
                continue;
            }
            let Some(pair) = idx.slot_pair(bin, meta, slot) else {
                continue;
            };
            if pair.load_lo(Ordering::Acquire) == key {
                return Some((slot, pair.load_hi(Ordering::Acquire)));
            }
        }
        None
    }

    /// Lock-free Insert à la CLHT with bounded chaining (§3.2.2).
    fn insert_in(
        &self,
        idx: &Index,
        key: u64,
        value: u64,
        target_state: SlotState,
    ) -> Probe<InsertOutcome> {
        let bin_no = idx.bin_of(key);
        let bin = idx.bin(bin_no);
        'outer: loop {
            // Step 1: read the header.
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            match h.bin_state() {
                BinState::InTransfer | BinState::Snapshot => return Probe::Busy,
                BinState::DoneTransfer => return Probe::Moved,
                BinState::NoTransfer => {}
            }
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            // Step 2: the key must not already exist (shadow entries count).
            if let Some((_, existing)) = self.scan_for_key(idx, bin, h, meta, key, true, None) {
                // Validate the snapshot the same way a Get does.
                let h2 = BinHeader(bin.header.load(Ordering::Acquire));
                if h2.version() == h.version() {
                    return Probe::Done(InsertOutcome::AlreadyExists(existing));
                }
                continue 'outer;
            }
            // Step 3: find the first Invalid slot.
            let Some(slot) = h.first_invalid_slot() else {
                return Probe::NeedResize;
            };
            // Step 4: claim it by CASing Invalid -> TryInsert.
            let claimed = h.with_slot_state(slot, SlotState::TryInsert);
            if bin
                .header
                .compare_exchange(h.0, claimed.0, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue 'outer;
            }
            // Chain link buckets if the claimed slot lives in one (§3.2.2
            // "Chaining buckets").
            match self.ensure_chained(idx, bin, slot) {
                Ok(()) => {}
                Err(()) => {
                    self.release_slot(bin, slot);
                    return Probe::NeedResize;
                }
            }
            // Step 4.1: fill the slot while it is exclusively ours.
            let meta_now = LinkMeta(bin.link.load(Ordering::Acquire));
            let pair = idx
                .slot_pair(bin, meta_now, slot)
                .expect("claimed slot must be addressable after chaining");
            pair.store(key, value, Ordering::Release);
            // Step 5: publish by CASing TryInsert -> Valid (or Shadow).
            loop {
                let h2 = BinHeader(bin.header.load(Ordering::Acquire));
                match h2.bin_state() {
                    BinState::NoTransfer => {}
                    BinState::InTransfer | BinState::Snapshot => {
                        self.release_slot(bin, slot);
                        return Probe::Busy;
                    }
                    BinState::DoneTransfer => {
                        self.release_slot(bin, slot);
                        return Probe::Moved;
                    }
                }
                debug_assert_eq!(h2.slot_state(slot), SlotState::TryInsert);
                // Re-run the duplicate check (paper: "start over from step 1,
                // but skip steps 3 and 4").
                let meta2 = LinkMeta(bin.link.load(Ordering::Acquire));
                if let Some((_, existing)) =
                    self.scan_for_key(idx, bin, h2, meta2, key, true, Some(slot))
                {
                    self.release_slot(bin, slot);
                    return Probe::Done(InsertOutcome::AlreadyExists(existing));
                }
                let published = h2.with_slot_state(slot, target_state);
                if bin
                    .header
                    .compare_exchange(h2.0, published.0, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Probe::Done(InsertOutcome::Inserted);
                }
            }
        }
    }

    /// Make sure the link bucket(s) needed to address `slot` are chained to
    /// the bin, allocating from the index's pool if necessary. `Err(())`
    /// means the pool is exhausted and a resize is needed.
    fn ensure_chained(&self, idx: &Index, bin: &PrimaryBucket, slot: usize) -> Result<(), ()> {
        let need = crate::bucket::required_chain(slot);
        if need == 0 {
            return Ok(());
        }
        loop {
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            let missing_first = need >= 1 && meta.first() == NO_LINK;
            let missing_pair = need >= 2 && meta.pair() == NO_LINK;
            if need == 1 && !missing_first {
                return Ok(());
            }
            if need == 2 && !missing_pair {
                return Ok(());
            }
            if missing_first && need == 1 {
                let Some(l) = idx.alloc_link_buckets(1) else {
                    return Err(());
                };
                let new_meta = meta.with_first(l);
                // If the CAS fails someone else chained concurrently; the
                // allocated bucket is abandoned (bounded waste, as in the
                // paper's fetch-add allocation scheme).
                let _ = bin.link.compare_exchange(
                    meta.0,
                    new_meta.0,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            if missing_pair {
                let Some(l) = idx.alloc_link_buckets(2) else {
                    return Err(());
                };
                let new_meta = meta.with_pair(l);
                let _ = bin.link.compare_exchange(
                    meta.0,
                    new_meta.0,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            return Ok(());
        }
    }

    /// CAS a slot we own back from TryInsert to Invalid (abort path).
    fn release_slot(&self, bin: &PrimaryBucket, slot: usize) {
        loop {
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            debug_assert_eq!(h.slot_state(slot), SlotState::TryInsert);
            let released = h.with_slot_state(slot, SlotState::Invalid);
            if bin
                .header
                .compare_exchange(h.0, released.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Lock-free Delete with immediate slot reclamation (§3.2.3).
    fn delete_in(&self, idx: &Index, key: u64) -> Probe<Option<u64>> {
        let bin = idx.bin(idx.bin_of(key));
        loop {
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            match h.bin_state() {
                BinState::InTransfer | BinState::Snapshot => return Probe::Busy,
                BinState::DoneTransfer => return Probe::Moved,
                BinState::NoTransfer => {}
            }
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            let Some((slot, value)) = self.scan_for_key(idx, bin, h, meta, key, false, None) else {
                let h2 = BinHeader(bin.header.load(Ordering::Acquire));
                if h2.version() == h.version() {
                    return Probe::Done(None);
                }
                continue;
            };
            let freed = h.with_slot_state(slot, SlotState::Invalid);
            if bin
                .header
                .compare_exchange(h.0, freed.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Probe::Done(Some(value));
            }
        }
    }

    /// Put via dw-CAS on the whole slot (§3.2.4); Inlined mode only.
    fn put_in(&self, idx: &Index, key: u64, value: u64) -> Probe<Option<u64>> {
        let bin = idx.bin(idx.bin_of(key));
        'retry: loop {
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            match h.bin_state() {
                BinState::InTransfer | BinState::Snapshot => return Probe::Busy,
                BinState::DoneTransfer => return Probe::Moved,
                BinState::NoTransfer => {}
            }
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            let extent = h.occupied_extent();
            for slot in 0..extent {
                if h.slot_state(slot) != SlotState::Valid {
                    continue;
                }
                let Some(pair) = idx.slot_pair(bin, meta, slot) else {
                    continue;
                };
                if pair.load_lo(Ordering::Acquire) != key {
                    continue;
                }
                let old = pair.load_hi(Ordering::Acquire);
                // The dw-CAS covers both words: if the slot was deleted and
                // reused for another key, or the resize swapped in a transfer
                // key, the CAS fails and we re-examine the bin.
                // ORDERING: fixed inside AtomicPair::compare_exchange
                // (lock cmpxchg16b is sequentially consistent; the fallback
                // pairs an Acquire lock with a Release fence).
                match pair.compare_exchange((key, old), (key, value)) {
                    Ok(()) => return Probe::Done(Some(old)),
                    Err(_) => continue 'retry,
                }
            }
            let h2 = BinHeader(bin.header.load(Ordering::Acquire));
            if h2.version() == h.version() {
                return Probe::Done(None);
            }
        }
    }

    /// Transition a shadow entry for `key` to Valid (commit) or Invalid
    /// (abort).
    fn finish_shadow_in(&self, idx: &Index, key: u64, commit: bool) -> Probe<bool> {
        let bin = idx.bin(idx.bin_of(key));
        loop {
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            match h.bin_state() {
                BinState::InTransfer | BinState::Snapshot => return Probe::Busy,
                BinState::DoneTransfer => return Probe::Moved,
                BinState::NoTransfer => {}
            }
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            let mut found = None;
            for slot in 0..h.occupied_extent() {
                if h.slot_state(slot) != SlotState::Shadow {
                    continue;
                }
                let Some(pair) = idx.slot_pair(bin, meta, slot) else {
                    continue;
                };
                if pair.load_lo(Ordering::Acquire) == key {
                    found = Some(slot);
                    break;
                }
            }
            let Some(slot) = found else {
                let h2 = BinHeader(bin.header.load(Ordering::Acquire));
                if h2.version() == h.version() {
                    return Probe::Done(false);
                }
                continue;
            };
            let target = if commit {
                SlotState::Valid
            } else {
                SlotState::Invalid
            };
            let next = h.with_slot_state(slot, target);
            if bin
                .header
                .compare_exchange(h.0, next.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Probe::Done(true);
            }
        }
    }

    // ------------------------------------------------------------------
    // Resize (§3.2.5)
    // ------------------------------------------------------------------

    /// Grow the table starting from `old_ptr`; returns the next index to
    /// retry the blocked insert on. Requires an active [`EnterGuard`].
    fn grow(&self, old_ptr: *mut Index) -> *mut Index {
        // SAFETY: protected by the caller's EnterGuard.
        let old = unsafe { &*old_ptr };
        if old.next_ptr().is_null() {
            if old.claim_resize() {
                let factor = DlhtConfig::growth_factor(old.num_bins());
                let new_bins = old.num_bins().saturating_mul(factor);
                let new = Box::into_raw(Box::new(Index::new(
                    new_bins,
                    &self.config,
                    old.generation() + 1,
                )));
                self.resizes.fetch_add(1, Ordering::Relaxed);
                old.publish_next(new);
            } else {
                // Another thread is allocating the new index; wait for it
                // (§3.2.5 "Collaboration": helpers first wait for the new
                // index to be allocated).
                while old.next_ptr().is_null() {
                    std::hint::spin_loop();
                }
            }
        }
        let new_ptr = old.next_ptr();
        // SAFETY: next pointers are only cleared when the index is freed,
        // which cannot happen while `old` is reachable.
        let new = unsafe { &*new_ptr };
        // Help transfer chunks until none are left.
        self.help_transfer(old, new);
        // Wait for stragglers still copying their claimed chunks.
        while !old.fully_transferred() {
            std::hint::spin_loop();
        }
        // Redirect new entrants to the new index; whoever wins retires `old`.
        // ORDERING: SeqCst — the index swap must be totally ordered against
        // the SeqCst load/announce handshake in `enter_with_slot`, so a reader
        // either sees the new index or its announcement of the old one is
        // visible to `collect_retired`'s scan.
        if self
            .current
            .compare_exchange(old_ptr, new_ptr, Ordering::SeqCst, Ordering::SeqCst) // ORDERING: see above
            .is_ok()
        {
            self.retired.lock().unwrap().push_back(old_ptr as usize);
        }
        self.collect_retired();
        new_ptr
    }

    /// Transfer chunks of bins from `old` to `new` until none remain.
    fn help_transfer(&self, old: &Index, new: &Index) {
        while let Some(range) = old.claim_chunk() {
            for b in range {
                self.transfer_bin(old, b, new);
            }
            old.chunk_transferred();
        }
    }

    /// Copy one bin to the new index, blocking operations on this bin only
    /// for the duration of the copy.
    fn transfer_bin(&self, old: &Index, bin_no: usize, new: &Index) {
        let bin = old.bin(bin_no);
        // Announce the transfer: CAS the bin state to InTransfer. Concurrent
        // Inserts/Deletes either completed before this CAS or will fail their
        // own CAS and retry, observing the new state.
        let mut h;
        loop {
            h = BinHeader(bin.header.load(Ordering::Acquire));
            match h.bin_state() {
                BinState::NoTransfer | BinState::Snapshot => {}
                BinState::InTransfer | BinState::DoneTransfer => return,
            }
            let next = h.with_bin_state(BinState::InTransfer);
            if bin
                .header
                .compare_exchange(h.0, next.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                h = next;
                break;
            }
        }
        let meta = LinkMeta(bin.link.load(Ordering::Acquire));
        let tkey = transfer_key_for_bin(bin_no);
        for slot in 0..SLOTS_PER_BIN {
            let st = h.slot_state(slot);
            if st != SlotState::Valid && st != SlotState::Shadow {
                continue;
            }
            let Some(pair) = old.slot_pair(bin, meta, slot) else {
                continue;
            };
            // Swap in the transfer key with a dw-CAS so a racing Put either
            // lands before the copy (and is copied) or fails and retries on
            // the new index (§3.2.5 "Practically non-blocking operations").
            let (key, value) = loop {
                let k = pair.load_lo(Ordering::Acquire);
                let v = pair.load_hi(Ordering::Acquire);
                if is_reserved_key(k) {
                    break (k, v);
                }
                // ORDERING: fixed inside AtomicPair::compare_exchange (see
                // the Put path above for the same justification).
                if pair.compare_exchange((k, v), (tkey, v)).is_ok() {
                    break (k, v);
                }
            };
            if is_reserved_key(key) {
                continue;
            }
            self.insert_during_transfer(new, key, value, st);
        }
        // Publish completion.
        loop {
            let h2 = BinHeader(bin.header.load(Ordering::Acquire));
            let done = h2.with_bin_state(BinState::DoneTransfer);
            if bin
                .header
                .compare_exchange(h2.0, done.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Insert a transferred pair into the target index, growing further in the
    /// pathological case where the new index also fills up mid-transfer.
    fn insert_during_transfer(&self, target: &Index, key: u64, value: u64, state: SlotState) {
        let mut idx_ptr = target as *const Index as *mut Index;
        loop {
            // SAFETY: the chain forward from a live index stays allocated
            // while the calling thread's EnterGuard protects the chain head.
            let idx = unsafe { &*idx_ptr };
            match self.insert_in(idx, key, value, state) {
                Probe::Done(_) => return,
                Probe::Busy => std::hint::spin_loop(),
                Probe::Moved => idx_ptr = self.follow_next(idx),
                Probe::NeedResize => idx_ptr = self.grow(idx_ptr),
            }
        }
    }

    /// Free retired indexes that no thread announces anymore (oldest first).
    pub fn collect_retired(&self) {
        let mut retired = match self.retired.try_lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        while let Some(&front) = retired.front() {
            if self.registry.anyone_announces(front) {
                break;
            }
            retired.pop_front();
            // SAFETY: the index was removed from `current` (it was retired),
            // is the oldest retired generation, and no thread announces it —
            // so no reference can still exist.
            drop(unsafe { Box::from_raw(front as *mut Index) });
        }
    }

    /// Number of retired-but-not-yet-freed index generations (stats/tests).
    pub fn retired_indexes(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    // ------------------------------------------------------------------
    // Whole-table scans (len, iteration, occupancy)
    // ------------------------------------------------------------------

    /// Visit every live key-value pair (weakly consistent snapshot, §3.4.4).
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        let guard = self.enter();
        let mut idx_ptr = guard.index_ptr();
        loop {
            // SAFETY: protected by the guard.
            let idx = unsafe { &*idx_ptr };
            self.for_each_in(idx, &mut f);
            let next = idx.next_ptr();
            if next.is_null() {
                break;
            }
            idx_ptr = next;
        }
        drop(guard);
    }

    fn for_each_in(&self, idx: &Index, f: &mut impl FnMut(u64, u64)) {
        for bin_no in 0..idx.num_bins() {
            let bin = idx.bin(bin_no);
            loop {
                let h = BinHeader(bin.header.load(Ordering::Acquire));
                match h.bin_state() {
                    // Transferred bins are visited through the next index.
                    BinState::DoneTransfer => break,
                    BinState::InTransfer => {
                        std::hint::spin_loop();
                        continue;
                    }
                    BinState::NoTransfer | BinState::Snapshot => {}
                }
                let meta = LinkMeta(bin.link.load(Ordering::Acquire));
                let mut pairs: Vec<(u64, u64)> = Vec::new();
                for slot in 0..h.occupied_extent() {
                    if h.slot_state(slot) != SlotState::Valid {
                        continue;
                    }
                    let Some(pair) = idx.slot_pair(bin, meta, slot) else {
                        continue;
                    };
                    let k = pair.load_lo(Ordering::Acquire);
                    if is_reserved_key(k) {
                        continue;
                    }
                    pairs.push((k, pair.load_hi(Ordering::Acquire)));
                }
                let h2 = BinHeader(bin.header.load(Ordering::Acquire));
                if h2.version() == h.version() {
                    for (k, v) in pairs {
                        f(k, v);
                    }
                    break;
                }
            }
        }
    }

    /// Number of live keys (linear scan; weakly consistent under concurrency).
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.for_each(|_, _| n += 1);
        n
    }

    /// Whether the table holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of structural statistics (occupancy, link usage, resizes).
    pub fn stats(&self) -> crate::stats::TableStats {
        let guard = self.enter();
        // SAFETY: protected by the guard.
        let idx = unsafe { &*guard.index_ptr() };
        let stats = crate::stats::TableStats::capture(idx, self.resizes());
        drop(guard);
        stats
    }

    /// Issue a software prefetch for the bin that `key` hashes to in the
    /// current index (coroutine interoperation, §3.3).
    pub fn prefetch(&self, key: u64) {
        let guard = self.enter();
        // SAFETY: protected by the guard.
        let idx = unsafe { &*guard.index_ptr() };
        idx.prefetch_bin(idx.bin_of(key));
        drop(guard);
    }

    /// Generation number of the current index (0 until the first resize
    /// completes). Useful for observing resize progress in tests and
    /// benchmarks.
    pub fn current_generation(&self) -> u32 {
        let guard = self.enter();
        // SAFETY: protected by the guard.
        let generation = unsafe { (*guard.index_ptr()).generation() };
        drop(guard);
        generation
    }
}

// ----------------------------------------------------------------------
// Structural invariant sweep (debug/test support)
// ----------------------------------------------------------------------

impl RawTable {
    /// Walk every index generation, bin, and slot and verify the table's
    /// structural invariants, returning a description of the first violation.
    ///
    /// Intended for *quiescent points* in tests — the torture and
    /// model-differential suites run it between workload phases. The sweep
    /// pins the index chain with an `EnterGuard` so nothing is freed
    /// underneath it, but concurrent mutators can make per-bin checks fail
    /// spuriously, so do not call it while a workload is running.
    pub fn check_invariants(&self) -> Result<(), String> {
        {
            // The retired list must never hold null or duplicate pointers —
            // either would become a bad free in `collect_retired`.
            let retired = self.retired.lock().unwrap();
            for (i, &p) in retired.iter().enumerate() {
                if p == 0 {
                    return Err(format!("retired[{i}] is null"));
                }
                if retired.iter().skip(i + 1).any(|&q| q == p) {
                    return Err(format!("retired[{i}] {p:#x} appears twice"));
                }
            }
        }
        let guard = self.enter();
        let mut ptr = guard.index_ptr();
        let mut prev_generation: Option<u32> = None;
        let mut result = Ok(());
        while !ptr.is_null() {
            // SAFETY: the chain is pinned by `guard` (indexes are freed
            // oldest-first and only when no announcement references them), so
            // every node from the entered index onward stays alive.
            let idx = unsafe { &*ptr };
            let next = idx.next_ptr();
            if let Some(prev) = prev_generation {
                if idx.generation() <= prev {
                    result = Err(format!(
                        "index chain generations not increasing: {} then {}",
                        prev,
                        idx.generation()
                    ));
                    break;
                }
            }
            prev_generation = Some(idx.generation());
            result = Self::check_index(idx, !next.is_null());
            if result.is_err() {
                break;
            }
            ptr = next;
        }
        drop(guard);
        result
    }

    /// Invariants local to one index generation.
    fn check_index(idx: &Index, has_next: bool) -> Result<(), String> {
        let g = idx.generation();
        if idx.chunks_done() > idx.num_chunks() {
            return Err(format!(
                "gen {g}: chunks_done {} exceeds num_chunks {}",
                idx.chunks_done(),
                idx.num_chunks()
            ));
        }
        if idx.fully_transferred() && !has_next {
            return Err(format!("gen {g}: fully transferred but no next index"));
        }
        let mut keys: Vec<u64> = Vec::with_capacity(SLOTS_PER_BIN);
        for b in 0..idx.num_bins() {
            let bin = idx.bin(b);
            let h = BinHeader(bin.header.load(Ordering::Acquire));
            let meta = LinkMeta(bin.link.load(Ordering::Acquire));
            let links_used = idx.links_used();
            if meta.first() != NO_LINK && (meta.first() as usize) >= links_used {
                return Err(format!(
                    "gen {g} bin {b}: first link {} outside handed-out range {links_used}",
                    meta.first()
                ));
            }
            if meta.pair() != NO_LINK && (meta.pair() as usize + 2) > links_used {
                return Err(format!(
                    "gen {g} bin {b}: pair link {} outside handed-out range {links_used}",
                    meta.pair()
                ));
            }
            if h.bin_state() == BinState::DoneTransfer && !has_next {
                return Err(format!("gen {g} bin {b}: DoneTransfer but no next index"));
            }
            keys.clear();
            let extent = h.occupied_extent();
            for slot in 0..extent {
                let st = h.slot_state(slot);
                if st == SlotState::Invalid {
                    continue;
                }
                let Some(pair) = idx.slot_pair(bin, meta, slot) else {
                    return Err(format!(
                        "gen {g} bin {b} slot {slot}: state {st:?} but its link bucket is not chained"
                    ));
                };
                if st != SlotState::Valid {
                    continue;
                }
                let key = pair.load_lo(Ordering::Acquire);
                if is_reserved_key(key) {
                    // Transfer keys are legal only in bins the resize has
                    // touched.
                    if h.bin_state() == BinState::NoTransfer {
                        return Err(format!(
                            "gen {g} bin {b} slot {slot}: reserved transfer key in a NoTransfer bin"
                        ));
                    }
                    continue;
                }
                if h.bin_state() == BinState::NoTransfer && idx.bin_of(key) != b {
                    return Err(format!(
                        "gen {g} bin {b} slot {slot}: key {key:#x} hashes to bin {}",
                        idx.bin_of(key)
                    ));
                }
                if keys.contains(&key) {
                    return Err(format!("gen {g} bin {b}: duplicate key {key:#x}"));
                }
                keys.push(key);
            }
        }
        Ok(())
    }
}

impl Drop for RawTable {
    fn drop(&mut self) {
        // Exclusive access: free all retired generations and the live chain.
        let mut retired = std::mem::take(&mut *self.retired.lock().unwrap());
        for ptr in retired.drain(..) {
            // SAFETY: exclusive access on drop.
            drop(unsafe { Box::from_raw(ptr as *mut Index) });
        }
        let mut ptr = self.current.load(Ordering::Acquire);
        while !ptr.is_null() {
            // SAFETY: exclusive access on drop; walk the remaining chain.
            let next = unsafe { (*ptr).next_ptr() };
            // SAFETY: each chain node was Box::into_raw'd at creation and is
            // freed exactly once here.
            drop(unsafe { Box::from_raw(ptr) });
            ptr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_hash::HashKind;

    fn small_table() -> RawTable {
        RawTable::with_config(DlhtConfig::new(64).with_chunk_bins(16))
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let t = small_table();
        assert_eq!(t.get(1), None);
        assert!(t.insert(1, 100).unwrap().inserted());
        assert_eq!(t.get(1), Some(100));
        assert!(t.contains(1));
        assert_eq!(t.delete(1), Some(100));
        assert_eq!(t.get(1), None);
        assert_eq!(t.delete(1), None);
    }

    #[test]
    fn duplicate_inserts_are_rejected() {
        let t = small_table();
        assert!(t.insert(7, 70).unwrap().inserted());
        assert_eq!(t.insert(7, 71).unwrap(), InsertOutcome::AlreadyExists(70));
        assert_eq!(t.get(7), Some(70));
    }

    #[test]
    fn put_updates_only_existing_keys() {
        let t = small_table();
        assert_eq!(t.put(9, 1), None);
        let _ = t.insert(9, 90).unwrap();
        assert_eq!(t.put(9, 91), Some(90));
        assert_eq!(t.get(9), Some(91));
    }

    #[test]
    fn deleted_slots_are_reused_immediately() {
        // One bin (all keys collide); 15 slots max. Insert/delete cycles far
        // beyond 15 keys must succeed without a resize.
        let cfg = DlhtConfig::new(2)
            .with_link_ratio(1)
            .with_resizing(false)
            .with_hash(HashKind::Modulo);
        let t = RawTable::with_config(cfg);
        for i in 0..200u64 {
            let key = i * 2; // all even keys -> bin 0
            assert!(t.insert(key, i).unwrap().inserted(), "insert {i}");
            assert_eq!(t.delete(key), Some(i));
        }
        assert_eq!(t.resizes(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn full_bin_without_resizing_reports_table_full() {
        let cfg = DlhtConfig::new(2).with_link_ratio(1).with_resizing(false);
        let t = RawTable::with_config(cfg);
        let mut inserted = 0;
        let mut full = false;
        for i in 0..64u64 {
            match t.insert(i * 2, i) {
                Ok(o) if o.inserted() => inserted += 1,
                Ok(_) => {}
                Err(DlhtError::TableFull) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(full, "bin should eventually fill");
        assert!(inserted >= 3, "at least the primary bucket fits");
    }

    #[test]
    fn reserved_keys_are_rejected() {
        let t = small_table();
        assert_eq!(t.insert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        assert_eq!(t.insert(u64::MAX - 1, 1), Err(DlhtError::ReservedKey));
        assert_eq!(t.get(u64::MAX), None);
        assert_eq!(t.delete(u64::MAX), None);
        assert_eq!(t.put(u64::MAX, 2), None);
    }

    #[test]
    fn shadow_insert_lifecycle() {
        let t = small_table();
        assert!(t.insert_shadow(5, 50).unwrap().inserted());
        // Hidden from reads and deletes until committed.
        assert_eq!(t.get(5), None);
        assert_eq!(t.delete(5), None);
        // But a second insert sees it (the key is "locked").
        assert!(!t.insert(5, 51).unwrap().inserted());
        assert!(t.commit_shadow(5, true));
        assert_eq!(t.get(5), Some(50));
        // Abort path.
        assert!(t.insert_shadow(6, 60).unwrap().inserted());
        assert!(t.commit_shadow(6, false));
        assert_eq!(t.get(6), None);
        assert!(t.insert(6, 61).unwrap().inserted());
    }

    #[test]
    fn chaining_extends_a_bin_past_three_slots() {
        let cfg = DlhtConfig::new(2).with_link_ratio(1).with_resizing(false);
        let t = RawTable::with_config(cfg);
        // All even keys collide into bin 0; 15 slots available (3 + 4 + 4 + 4)
        // but the pool only has 2 link buckets for 2 bins... link_ratio 1 =>
        // 2 link buckets, so bin 0 can chain first(1 bucket) + pair(2) only if
        // available; expect at least 3 + 4 = 7 inserts to succeed.
        let mut ok = 0;
        for i in 0..32u64 {
            match t.insert(i * 2, i) {
                Ok(o) if o.inserted() => ok += 1,
                _ => break,
            }
        }
        assert!(ok >= 7, "expected chaining to allow >= 7 keys, got {ok}");
        for i in 0..ok {
            assert_eq!(t.get(i * 2), Some(i), "key {i} must survive chaining");
        }
    }

    #[test]
    fn resize_preserves_all_keys() {
        let cfg = DlhtConfig::new(8)
            .with_chunk_bins(4)
            .with_hash(HashKind::WyHash);
        let t = RawTable::with_config(cfg);
        const N: u64 = 5_000;
        for i in 0..N {
            assert!(t.insert(i, i * 10).unwrap().inserted(), "insert {i}");
        }
        assert!(t.resizes() > 0, "the table must have grown");
        for i in 0..N {
            assert_eq!(t.get(i), Some(i * 10), "key {i} lost after resize");
        }
        assert_eq!(t.len(), N as usize);
    }

    #[test]
    fn stats_reflect_occupancy() {
        let t = small_table();
        for i in 0..50u64 {
            let _ = t.insert(i, i).unwrap();
        }
        let s = t.stats();
        assert_eq!(s.occupied_slots, 50);
        assert!(s.occupancy > 0.0 && s.occupancy <= 1.0);
        assert_eq!(s.resizes, 0);
    }

    #[test]
    fn for_each_sees_all_pairs() {
        let t = small_table();
        for i in 0..100u64 {
            let _ = t.insert(i, i + 1000).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        t.for_each(|k, v| {
            seen.insert(k, v);
        });
        assert_eq!(seen.len(), 100);
        for i in 0..100u64 {
            assert_eq!(seen[&i], i + 1000);
        }
    }

    #[test]
    fn concurrent_inserts_one_winner_per_key() {
        use std::sync::atomic::AtomicUsize;
        let t = std::sync::Arc::new(RawTable::with_config(
            DlhtConfig::new(512).with_hash(HashKind::WyHash),
        ));
        let wins = std::sync::Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 4;
        const KEYS: u64 = 2_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let t = std::sync::Arc::clone(&t);
                let wins = std::sync::Arc::clone(&wins);
                s.spawn(move || {
                    for k in 0..KEYS {
                        if t.insert(k, k).unwrap().inserted() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            KEYS as usize,
            "every key must have exactly one successful insert"
        );
        assert_eq!(t.len(), KEYS as usize);
    }

    #[test]
    fn concurrent_insert_delete_get_stress() {
        let t = std::sync::Arc::new(RawTable::with_config(
            DlhtConfig::new(1024).with_hash(HashKind::WyHash),
        ));
        // Pre-populate a stable set that is never deleted.
        for k in 0..500u64 {
            let _ = t.insert(k, k * 3).unwrap();
        }
        std::thread::scope(|s| {
            // Mutators: insert/delete their own disjoint key ranges.
            for tid in 0..3u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    let base = 10_000 + tid * 10_000;
                    for round in 0..dlht_util::miri_scaled(200) {
                        for k in 0..20u64 {
                            let key = base + k;
                            assert!(t.insert(key, round).unwrap().inserted());
                        }
                        for k in 0..20u64 {
                            let key = base + k;
                            assert_eq!(t.delete(key), Some(round));
                        }
                    }
                });
            }
            // Readers: the stable set must always be visible and correct.
            for _ in 0..2 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..dlht_util::miri_scaled(2_000) {
                        let k = 499;
                        assert_eq!(t.get(k), Some(k * 3));
                        assert_eq!(t.get(77), Some(77 * 3));
                        assert_eq!(t.get(100_000_000), None);
                    }
                });
            }
        });
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn concurrent_puts_last_value_wins_and_no_corruption() {
        let t = std::sync::Arc::new(small_table());
        let _ = t.insert(42, 0).unwrap();
        let per_thread = dlht_util::miri_scaled(5_000);
        std::thread::scope(|s| {
            for tid in 1..=4u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let v = tid * 1_000_000 + i;
                        assert!(t.put(42, v).is_some());
                    }
                });
            }
        });
        let v = t.get(42).unwrap();
        let tid = v / 1_000_000;
        let i = v % 1_000_000;
        assert!((1..=4).contains(&tid));
        assert!(i < per_thread);
    }

    #[test]
    fn gets_remain_correct_during_concurrent_resize() {
        let cfg = DlhtConfig::new(8)
            .with_chunk_bins(2)
            .with_hash(HashKind::WyHash);
        let t = std::sync::Arc::new(RawTable::with_config(cfg));
        for k in 0..200u64 {
            let _ = t.insert(k, k + 7).unwrap();
        }
        let growth_keys = dlht_util::miri_scaled(5_000);
        std::thread::scope(|s| {
            // Writer drives repeated growth.
            {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for k in 1_000..1_000 + growth_keys {
                        let _ = t.insert(k, k).unwrap();
                    }
                });
            }
            // Readers check the stable keys throughout.
            for _ in 0..3 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..dlht_util::miri_scaled(3_000) {
                        for k in [0u64, 50, 199] {
                            assert_eq!(t.get(k), Some(k + 7));
                        }
                    }
                });
            }
        });
        assert!(t.resizes() >= 1);
        for k in 0..200u64 {
            assert_eq!(t.get(k), Some(k + 7));
        }
        for k in 1_000..1_000 + growth_keys {
            assert_eq!(t.get(k), Some(k));
        }
        // After the dust settles, retired indexes should be collectable.
        t.collect_retired();
        assert_eq!(t.retired_indexes(), 0);
    }
}
