//! Bucket memory layout (§3.1, Figure 2).
//!
//! * A **primary bucket** is one cache line: an 8-byte bin header, an 8-byte
//!   link-meta word, and three 16-byte slots.
//! * A **link bucket** is one cache line holding four 16-byte slots.
//! * The link-meta word stores two 32-bit indexes into the index's link-bucket
//!   array: the first chains one bucket to the bin, the second chains two
//!   *consecutive* buckets (§3.1, "Link Meta").
//!
//! Slots within a bin are numbered 0..15: 0..3 live in the primary bucket,
//! 3..7 in the first link bucket, 7..11 and 11..15 in the consecutive pair.

use crate::atomic128::AtomicPair;
use crate::header::{LINK_SLOTS, PRIMARY_SLOTS, SLOTS_PER_BIN};
use std::sync::atomic::AtomicU64;

/// Reserved key used by the resize transfer for even-numbered bins (§3.2.5).
pub const TRANSFER_KEY_EVEN: u64 = u64::MAX;
/// Reserved key used by the resize transfer for odd-numbered bins.
pub const TRANSFER_KEY_ODD: u64 = u64::MAX - 1;

/// Transfer key for bin `bin` (one key for odd and another for even bins, so
/// a racing Put can never mistake it for its own key).
#[inline]
pub fn transfer_key_for_bin(bin: usize) -> u64 {
    if bin.is_multiple_of(2) {
        TRANSFER_KEY_EVEN
    } else {
        TRANSFER_KEY_ODD
    }
}

/// Whether `key` is one of the reserved transfer keys and therefore rejected
/// by the public API.
#[inline]
pub fn is_reserved_key(key: u64) -> bool {
    key == TRANSFER_KEY_EVEN || key == TRANSFER_KEY_ODD
}

/// Sentinel for "no link bucket chained".
pub const NO_LINK: u32 = u32::MAX;

/// Decoded view of the 8-byte link-meta word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkMeta(pub u64);

impl LinkMeta {
    /// Link meta with no buckets chained.
    pub const EMPTY: LinkMeta = LinkMeta((NO_LINK as u64) | ((NO_LINK as u64) << 32));

    /// Index of the single chained bucket (slots 3..7), or `NO_LINK`.
    #[inline]
    pub fn first(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    /// Index of the first of the two consecutive chained buckets
    /// (slots 7..15), or `NO_LINK`.
    #[inline]
    pub fn pair(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// New meta with the single-bucket index set.
    #[inline]
    pub fn with_first(self, idx: u32) -> LinkMeta {
        LinkMeta((self.0 & !0xFFFF_FFFF) | idx as u64)
    }

    /// New meta with the consecutive-pair index set.
    #[inline]
    pub fn with_pair(self, idx: u32) -> LinkMeta {
        LinkMeta((self.0 & 0xFFFF_FFFF) | ((idx as u64) << 32))
    }

    /// Number of link buckets currently chained (0, 1, or 3).
    #[inline]
    pub fn chained_buckets(self) -> usize {
        let mut n = 0;
        if self.first() != NO_LINK {
            n += 1;
        }
        if self.pair() != NO_LINK {
            n += 2;
        }
        n
    }
}

/// The primary (first) bucket of a bin. Exactly one cache line.
#[repr(C, align(64))]
pub struct PrimaryBucket {
    /// Concurrency metadata; see [`crate::header::BinHeader`].
    pub header: AtomicU64,
    /// Link-bucket chaining metadata; see [`LinkMeta`].
    pub link: AtomicU64,
    /// Three inline key-value slots.
    pub slots: [AtomicPair; PRIMARY_SLOTS],
}

impl PrimaryBucket {
    /// A fresh, empty bucket.
    pub fn new() -> Self {
        PrimaryBucket {
            header: AtomicU64::new(0),
            link: AtomicU64::new(LinkMeta::EMPTY.0),
            slots: std::array::from_fn(|_| AtomicPair::new(0, 0)),
        }
    }
}

impl Default for PrimaryBucket {
    fn default() -> Self {
        Self::new()
    }
}

/// A chained link bucket. Exactly one cache line of four slots.
#[repr(C, align(64))]
pub struct LinkBucket {
    /// Four inline key-value slots.
    pub slots: [AtomicPair; LINK_SLOTS],
}

impl LinkBucket {
    /// A fresh, empty link bucket.
    pub fn new() -> Self {
        LinkBucket {
            slots: std::array::from_fn(|_| AtomicPair::new(0, 0)),
        }
    }
}

impl Default for LinkBucket {
    fn default() -> Self {
        Self::new()
    }
}

/// Where a bin-relative slot index physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotLocation {
    /// `slots[idx]` of the primary bucket.
    Primary(usize),
    /// `slots[idx]` of the single chained link bucket (`LinkMeta::first`).
    FirstLink(usize),
    /// `slots[idx]` of link bucket `LinkMeta::pair() + bucket` (bucket ∈ {0,1}).
    PairLink { bucket: usize, idx: usize },
}

/// Map a bin-relative slot index (0..15) to its physical location.
#[inline]
pub fn slot_location(slot: usize) -> SlotLocation {
    debug_assert!(slot < SLOTS_PER_BIN);
    if slot < PRIMARY_SLOTS {
        SlotLocation::Primary(slot)
    } else if slot < PRIMARY_SLOTS + LINK_SLOTS {
        SlotLocation::FirstLink(slot - PRIMARY_SLOTS)
    } else {
        let rel = slot - PRIMARY_SLOTS - LINK_SLOTS;
        SlotLocation::PairLink {
            bucket: rel / LINK_SLOTS,
            idx: rel % LINK_SLOTS,
        }
    }
}

/// Which chained bucket (if any) a slot index requires: 0 = primary only,
/// 1 = needs the single link bucket, 2 = needs the consecutive pair.
#[inline]
pub fn required_chain(slot: usize) -> usize {
    match slot_location(slot) {
        SlotLocation::Primary(_) => 0,
        SlotLocation::FirstLink(_) => 1,
        SlotLocation::PairLink { .. } => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exactly_one_cache_line() {
        assert_eq!(std::mem::size_of::<PrimaryBucket>(), 64);
        assert_eq!(std::mem::align_of::<PrimaryBucket>(), 64);
        assert_eq!(std::mem::size_of::<LinkBucket>(), 64);
        assert_eq!(std::mem::align_of::<LinkBucket>(), 64);
    }

    #[test]
    fn link_meta_roundtrip() {
        let m = LinkMeta::EMPTY;
        assert_eq!(m.first(), NO_LINK);
        assert_eq!(m.pair(), NO_LINK);
        assert_eq!(m.chained_buckets(), 0);

        let m = m.with_first(7);
        assert_eq!(m.first(), 7);
        assert_eq!(m.pair(), NO_LINK);
        assert_eq!(m.chained_buckets(), 1);

        let m = m.with_pair(42);
        assert_eq!(m.first(), 7);
        assert_eq!(m.pair(), 42);
        assert_eq!(m.chained_buckets(), 3);
    }

    #[test]
    fn slot_location_mapping_covers_all_fifteen_slots() {
        assert_eq!(slot_location(0), SlotLocation::Primary(0));
        assert_eq!(slot_location(2), SlotLocation::Primary(2));
        assert_eq!(slot_location(3), SlotLocation::FirstLink(0));
        assert_eq!(slot_location(6), SlotLocation::FirstLink(3));
        assert_eq!(
            slot_location(7),
            SlotLocation::PairLink { bucket: 0, idx: 0 }
        );
        assert_eq!(
            slot_location(10),
            SlotLocation::PairLink { bucket: 0, idx: 3 }
        );
        assert_eq!(
            slot_location(11),
            SlotLocation::PairLink { bucket: 1, idx: 0 }
        );
        assert_eq!(
            slot_location(14),
            SlotLocation::PairLink { bucket: 1, idx: 3 }
        );
    }

    #[test]
    fn required_chain_matches_locations() {
        assert_eq!(required_chain(0), 0);
        assert_eq!(required_chain(2), 0);
        assert_eq!(required_chain(3), 1);
        assert_eq!(required_chain(6), 1);
        assert_eq!(required_chain(7), 2);
        assert_eq!(required_chain(14), 2);
    }

    #[test]
    fn transfer_keys_by_parity() {
        assert_eq!(transfer_key_for_bin(0), TRANSFER_KEY_EVEN);
        assert_eq!(transfer_key_for_bin(1), TRANSFER_KEY_ODD);
        assert_eq!(transfer_key_for_bin(2), TRANSFER_KEY_EVEN);
        assert!(is_reserved_key(TRANSFER_KEY_EVEN));
        assert!(is_reserved_key(TRANSFER_KEY_ODD));
        assert!(!is_reserved_key(0));
        assert!(!is_reserved_key(12345));
    }
}
