//! # DLHT core
//!
//! A from-scratch Rust implementation of the **Dandelion HashTable (DLHT)**
//! from *"DLHT: A Non-blocking Resizable Hashtable with Fast Deletes and
//! Memory-awareness"* (HPDC 2024).
//!
//! DLHT is a concurrent, in-memory, closed-addressing hashtable built on
//! **bounded cache-line chaining**: the index is an array of bins, each bin is
//! a chain of at most four 64-byte buckets (one primary + up to three link
//! buckets), and all of a bin's concurrency metadata lives in a single 8-byte
//! header so every state transition is one CAS. The design delivers:
//!
//! 1. **Lock-free index operations**, including Deletes that reclaim their
//!    slot instantly (unlike tombstone-based open addressing).
//! 2. **~One memory access per request**: small keys/values are inlined in the
//!    index, and Gets perform no write-backs.
//! 3. **Software prefetching** via an order-preserving batch API that overlaps
//!    the memory latency of one request with work on others.
//! 4. **A non-blocking, parallel resize**: requests keep completing (with
//!    strong consistency) while all threads that hit the full index cooperate
//!    to migrate 16 Ki-bin chunks to the new index.
//!
//! ## Modes
//!
//! | Type | Paper mode | Keys | Values |
//! |---|---|---|---|
//! | [`Dlht<K, V>`] | typed facade | any `KvCodec` | any `KvCodec` — picks a mode below at compile time |
//! | [`DlhtMap`] | Inlined | 8 B | 8 B, stored in the slot |
//! | [`DlhtAllocMap`] | Allocator | any size | any size, out-of-line record + pointer API |
//! | [`DlhtSet`] | HashSet | 8 B | none |
//! | [`SingleThreadMap`] | Single-thread | 8 B | 8 B, no synchronization overhead |
//! | [`ShardedTable`] / [`DlhtShards<K, V>`] | sharded front | 8 B / `KvCodec` | N independent shards, shard-local resizes |
//!
//! All concurrent modes (and every baseline in `dlht-baselines`) implement
//! the single [`KvBackend`] operations trait, whose batch entry point speaks
//! the [`Request`]/[`Response`] vocabulary below — one API from micro-bench
//! to application workloads.
//!
//! ## Quick start
//!
//! ```
//! use dlht_core::{Batch, BatchPolicy, DlhtMap, Request, Response};
//!
//! let map = DlhtMap::with_capacity(10_000);
//! map.insert(7, 700).unwrap();
//!
//! // Batched execution with software prefetching (order preserving). The
//! // batch owns request and response storage; clear() + re-push makes
//! // steady-state execution allocation-free.
//! let mut batch = Batch::with_capacity(3);
//! batch.push_get(7);
//! batch.push_put(7, 701);
//! batch.push_get(7);
//! map.execute(&mut batch, BatchPolicy::RunAll);
//! assert_eq!(batch.responses()[2], Response::Value(Some(701)));
//!
//! // Or keep a stream of operations in flight with a bounded pipeline:
//! // prefetch at submit, order-preserving completion.
//! let session = map.session();
//! let mut pipe = session.pipeline(16);
//! pipe.submit(Request::Get(7));
//! assert_eq!(pipe.drain()[0], Response::Value(Some(701)));
//! ```
//!
//! ## Reserved keys
//!
//! Keys `u64::MAX` and `u64::MAX - 1` are reserved as the resize protocol's
//! transfer keys and are rejected by the API.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomic128;
pub mod batch;
pub mod bucket;
pub mod config;
pub mod error;
pub mod header;
pub mod index;
pub mod iter;
pub mod kv;
pub mod pipeline;
pub mod prefetch;
pub mod registry;
pub mod session;
pub mod sharded;
pub mod stats;
pub mod tagged_ptr;
pub mod typed;

mod alloc_map;
mod cache;
mod map;
mod set;
mod single_thread;
mod table;

pub use alloc_map::{AllocSession, DlhtAllocMap, MAX_KEY_LEN};
pub use batch::{Batch, BatchPolicy, Request, Response};
pub use cache::{
    format_decimal_u64, parse_decimal_u64, CacheClock, CacheConfig, CacheMap, CacheSession,
    CacheStats, CacheView, CounterError, EvictionPolicy, ManualClock, MonotonicClock, ReapOutcome,
    StoreOutcome, MAX_RELATIVE_EXPIRY,
};
pub use config::DlhtConfig;
pub use error::{DlhtError, InsertOutcome};
pub use kv::{KvBackend, MapFeatures};
pub use map::DlhtMap;
pub use pipeline::{BatchExecutor, Pipeline};
pub use session::Session;
pub use set::DlhtSet;
pub use sharded::{ShardedSession, ShardedTable, MAX_SHARDS};
pub use single_thread::SingleThreadMap;
pub use stats::TableStats;
pub use table::RawTable;
pub use tagged_ptr::{TaggedPtr, MAX_NAMESPACES};
pub use typed::{ByteCodec, Dlht, DlhtShards, Inline8, KvCodec, TypedBatch, TypedResponse};

// Re-export the substrate crates so downstream users need only one dependency.
pub use dlht_alloc as alloc;
pub use dlht_epoch as epoch;
pub use dlht_hash as hash;

#[cfg(test)]
mod model_tests {
    //! Deterministic property testing: the single-threaded behaviour of the
    //! concurrent map must match `std::collections::HashMap` under
    //! pseudo-random operation sequences (64 seeds × 400 operations).

    use crate::{DlhtConfig, DlhtMap};
    use dlht_hash::HashKind;
    use dlht_util::splitmix64 as splitmix;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn matches_std_hashmap() {
        for seed in 0..64u64 {
            // A tiny index with wyhash forces chaining and resizes; a small
            // key universe maximizes collisions and slot reuse.
            let map = DlhtMap::with_config(
                DlhtConfig::new(4)
                    .with_hash(HashKind::WyHash)
                    .with_chunk_bins(2),
            );
            let mut model: HashMap<u64, u64> = HashMap::new();
            let mut rng = 0xD15C0 + seed;
            for _ in 0..400 {
                let k = splitmix(&mut rng) % 64;
                let v = splitmix(&mut rng) % 1_000_000;
                match splitmix(&mut rng) % 4 {
                    0 => {
                        let inserted = map.insert(k, v).unwrap().inserted();
                        let expected = !model.contains_key(&k);
                        if expected {
                            model.insert(k, v);
                        }
                        assert_eq!(inserted, expected, "seed {seed}");
                    }
                    1 => assert_eq!(map.delete(k), model.remove(&k), "seed {seed}"),
                    2 => assert_eq!(map.get(k), model.get(&k).copied(), "seed {seed}"),
                    _ => {
                        let prev = model.get(&k).copied();
                        assert_eq!(map.put(k, v), prev, "seed {seed}");
                        if prev.is_some() {
                            model.insert(k, v);
                        }
                    }
                }
            }
            assert_eq!(map.len(), model.len(), "seed {seed}");
            // Every model pair must be present with the right value.
            for (k, v) in &model {
                assert_eq!(map.get(*k), Some(*v), "seed {seed}");
            }
        }
    }

    #[test]
    fn resize_preserves_random_contents() {
        for seed in 0..8u64 {
            let map = DlhtMap::with_config(
                DlhtConfig::new(2)
                    .with_hash(HashKind::WyHash)
                    .with_chunk_bins(4),
            );
            let mut rng = 0xAB ^ (seed << 32);
            let mut keys: HashSet<u64> = HashSet::new();
            let n = 1 + splitmix(&mut rng) % 800;
            while (keys.len() as u64) < n {
                keys.insert(splitmix(&mut rng) % 100_000);
            }
            for &k in &keys {
                assert!(map.insert(k, k ^ 0xABCD).unwrap().inserted(), "seed {seed}");
            }
            for &k in &keys {
                assert_eq!(map.get(k), Some(k ^ 0xABCD), "seed {seed}");
            }
            assert_eq!(map.len(), keys.len(), "seed {seed}");
        }
    }
}
