//! # DLHT core
//!
//! A from-scratch Rust implementation of the **Dandelion HashTable (DLHT)**
//! from *"DLHT: A Non-blocking Resizable Hashtable with Fast Deletes and
//! Memory-awareness"* (HPDC 2024).
//!
//! DLHT is a concurrent, in-memory, closed-addressing hashtable built on
//! **bounded cache-line chaining**: the index is an array of bins, each bin is
//! a chain of at most four 64-byte buckets (one primary + up to three link
//! buckets), and all of a bin's concurrency metadata lives in a single 8-byte
//! header so every state transition is one CAS. The design delivers:
//!
//! 1. **Lock-free index operations**, including Deletes that reclaim their
//!    slot instantly (unlike tombstone-based open addressing).
//! 2. **~One memory access per request**: small keys/values are inlined in the
//!    index, and Gets perform no write-backs.
//! 3. **Software prefetching** via an order-preserving batch API that overlaps
//!    the memory latency of one request with work on others.
//! 4. **A non-blocking, parallel resize**: requests keep completing (with
//!    strong consistency) while all threads that hit the full index cooperate
//!    to migrate 16 Ki-bin chunks to the new index.
//!
//! ## Modes
//!
//! | Type | Paper mode | Keys | Values |
//! |---|---|---|---|
//! | [`DlhtMap`] | Inlined | 8 B | 8 B, stored in the slot |
//! | [`DlhtAllocMap`] | Allocator | any size | any size, out-of-line record + pointer API |
//! | [`DlhtSet`] | HashSet | 8 B | none |
//! | [`SingleThreadMap`] | Single-thread | 8 B | 8 B, no synchronization overhead |
//!
//! ## Quick start
//!
//! ```
//! use dlht_core::{DlhtMap, Request, Response};
//!
//! let map = DlhtMap::with_capacity(10_000);
//! map.insert(7, 700).unwrap();
//!
//! // Batched execution with software prefetching (order preserving).
//! let batch = [Request::Get(7), Request::Put(7, 701), Request::Get(7)];
//! let out = map.execute_batch(&batch, false);
//! assert_eq!(out[2], Response::Value(Some(701)));
//! ```
//!
//! ## Reserved keys
//!
//! Keys `u64::MAX` and `u64::MAX - 1` are reserved as the resize protocol's
//! transfer keys and are rejected by the API.

pub mod atomic128;
pub mod batch;
pub mod bucket;
pub mod config;
pub mod error;
pub mod header;
pub mod index;
pub mod iter;
pub mod prefetch;
pub mod registry;
pub mod stats;
pub mod tagged_ptr;

mod alloc_map;
mod map;
mod set;
mod single_thread;
mod table;

pub use alloc_map::{AllocSession, DlhtAllocMap, MAX_KEY_LEN};
pub use batch::{Request, Response};
pub use config::DlhtConfig;
pub use error::{DlhtError, InsertOutcome};
pub use map::DlhtMap;
pub use set::DlhtSet;
pub use single_thread::SingleThreadMap;
pub use stats::TableStats;
pub use table::RawTable;
pub use tagged_ptr::{TaggedPtr, MAX_NAMESPACES};

// Re-export the substrate crates so downstream users need only one dependency.
pub use dlht_alloc as alloc;
pub use dlht_epoch as epoch;
pub use dlht_hash as hash;

#[cfg(test)]
mod model_tests {
    //! Property-based model checking: the single-threaded behaviour of the
    //! concurrent map must match `std::collections::HashMap` under arbitrary
    //! operation sequences.

    use crate::{DlhtConfig, DlhtMap};
    use dlht_hash::HashKind;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u64),
        Delete(u64),
        Get(u64),
        Put(u64, u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // A small key universe maximizes collisions and slot reuse.
        let key = 0u64..64;
        let val = 0u64..1_000_000;
        prop_oneof![
            (key.clone(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
            key.clone().prop_map(Op::Delete),
            key.clone().prop_map(Op::Get),
            (key, val).prop_map(|(k, v)| Op::Put(k, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_std_hashmap(ops in proptest::collection::vec(arb_op(), 1..400)) {
            // A tiny index with wyhash forces chaining and resizes.
            let map = DlhtMap::with_config(
                DlhtConfig::new(4).with_hash(HashKind::WyHash).with_chunk_bins(2),
            );
            let mut model: HashMap<u64, u64> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        let inserted = map.insert(k, v).unwrap().inserted();
                        let expected = !model.contains_key(&k);
                        if expected {
                            model.insert(k, v);
                        }
                        prop_assert_eq!(inserted, expected);
                    }
                    Op::Delete(k) => {
                        prop_assert_eq!(map.delete(k), model.remove(&k));
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(map.get(k), model.get(&k).copied());
                    }
                    Op::Put(k, v) => {
                        let prev = model.get(&k).copied();
                        prop_assert_eq!(map.put(k, v), prev);
                        if prev.is_some() {
                            model.insert(k, v);
                        }
                    }
                }
            }
            prop_assert_eq!(map.len(), model.len());
            // Every model pair must be present with the right value.
            for (k, v) in &model {
                prop_assert_eq!(map.get(*k), Some(*v));
            }
        }

        #[test]
        fn resize_preserves_random_contents(keys in proptest::collection::hash_set(0u64..100_000, 1..800)) {
            let map = DlhtMap::with_config(
                DlhtConfig::new(2).with_hash(HashKind::WyHash).with_chunk_bins(4),
            );
            for &k in &keys {
                prop_assert!(map.insert(k, k ^ 0xABCD).unwrap().inserted());
            }
            for &k in &keys {
                prop_assert_eq!(map.get(k), Some(k ^ 0xABCD));
            }
            prop_assert_eq!(map.len(), keys.len());
        }
    }
}
