//! Cache persona storage: per-entry TTL, expiry reaping, and eviction under
//! a memory budget, layered over the DLHT index.
//!
//! [`CacheMap`] is the storage engine behind the memcache-compatible text
//! protocol in `dlht-net`. It reuses the Allocator-mode recipe of
//! [`crate::DlhtAllocMap`] — out-of-line records addressed by a hashed key
//! word, reclaimed through the epoch GC — and extends every record with the
//! metadata a cache needs:
//!
//! ```text
//!  entry record (VALUE_ALIGN-aligned, one allocation)
//!  ┌──────────┬─────┬─────────┬───────┬──────────┬─────┬─────────────┬────────┐
//!  │ key_len  │ pad │ val_len │ flags │ deadline │ cas │ last_access │ charge │
//!  ├──────────┴─────┴─────────┴───────┴──────────┴─────┴─────────────┴────────┤
//!  │ key bytes …                                                              │
//!  │ value bytes …                                                            │
//!  └──────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **TTL** — `deadline` is an absolute cache-clock second (`0` = never
//!   expires). Reads check it lazily, so an expired entry is *never served*
//!   even before the reaper removes it; `touch` rewrites the field atomically
//!   in place (no record copy).
//! * **Reaping** — [`CacheSession::sweep_expired`] scans the index for dead
//!   deadlines and retires those entries through the epoch machinery, so a
//!   background reaper drains expiry storms in bulk without stopping readers.
//! * **Eviction** — with a non-zero memory budget, [`CacheSession::maybe_evict`]
//!   keeps `index_bytes + value bytes` under the watermark by removing the
//!   least-recently-used entries ([`EvictionPolicy::Lru`], via the atomic
//!   `last_access` stamp) or the oldest-inserted ([`EvictionPolicy::Fifo`],
//!   via the monotone `cas` sequence — the comparison baseline).
//!
//! ## Concurrency
//!
//! Reads are lock-free: they ride the index's lock-free Get plus QSBR epoch
//! protection, exactly like `DlhtAllocMap`. Mutations (store, delete, touch,
//! incr/decr, reap, evict) serialize per key through a small stripe-lock
//! array so read-modify-write ops are atomic and the reaper can re-verify a
//! victim before unlinking it — the Get fast path never touches a lock.
//! Retired records are freed two epochs after unlinking; sessions must call
//! [`CacheSession::quiesce`] periodically (the server does so once per event
//! loop pass).

use crate::error::{DlhtError, InsertOutcome};
use crate::sharded::ShardedTable;
use crate::stats::TableStats;
use dlht_alloc::{AllocatorKind, ValueAllocator, VALUE_ALIGN};
use dlht_epoch::{Collector, LocalHandle};
use dlht_hash::WyHash;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Seed for the key-fingerprint hash (distinct from the index's bin hash so
/// bin placement and fingerprints stay independent).
const CACHE_HASH_SEED: u64 = 0xC_AC4E_5EED;

/// Mutation stripe-lock count (power of two). Gets never take one.
const STRIPES: usize = 64;

/// Memcache's relative/absolute expiry pivot: an exptime of more than 30
/// days is an absolute unix timestamp, anything smaller is relative seconds.
pub const MAX_RELATIVE_EXPIRY: i64 = 60 * 60 * 24 * 30;

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// The cache's second-resolution clock. Implementations must be monotone.
///
/// Cache time starts at **1**, because deadline `0` is the "never expires"
/// sentinel packed into every entry.
pub trait CacheClock: Send + Sync + 'static {
    /// Seconds on the cache clock (monotone, starts at 1).
    fn now(&self) -> u32;
}

/// Wall-clock seconds since the cache was created (plus one), measured with
/// a monotonic timer so host clock jumps cannot un-expire entries.
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock starting at second 1.
    pub fn new() -> Self {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheClock for MonotonicClock {
    fn now(&self) -> u32 {
        let secs = self.start.elapsed().as_secs();
        secs.min(u32::MAX as u64 - 1) as u32 + 1
    }
}

/// A hand-driven clock for deterministic TTL tests.
pub struct ManualClock {
    secs: AtomicU32,
}

impl ManualClock {
    /// Create at `secs` (must be ≥ 1; 0 is the no-deadline sentinel).
    pub fn new(secs: u32) -> Self {
        ManualClock {
            secs: AtomicU32::new(secs.max(1)),
        }
    }

    /// Jump to an absolute second (ignored if it would move backwards).
    pub fn set(&self, secs: u32) {
        self.secs.fetch_max(secs.max(1), Ordering::Release);
    }

    /// Advance by `delta` seconds.
    pub fn advance(&self, delta: u32) {
        self.secs.fetch_add(delta, Ordering::Release);
    }
}

impl CacheClock for ManualClock {
    fn now(&self) -> u32 {
        self.secs.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Entry records
// ---------------------------------------------------------------------------

/// Per-entry metadata, written once at the head of every record allocation.
/// `deadline` and `last_access` are atomics so `touch` and the read path can
/// update them in place while concurrent readers hold the record.
#[repr(C)]
struct EntryHeader {
    key_len: u16,
    _pad: u16,
    val_len: u32,
    flags: u32,
    /// Absolute cache-clock second after which the entry is dead; 0 = never.
    deadline: AtomicU32,
    /// Monotone store sequence — memcache `cas` id, doubles as FIFO age.
    cas: u64,
    /// Stamp from the map's access sequence at the last hit (LRU eviction
    /// order — a sequence, not seconds, so recency resolves below one
    /// second; approximate again only after 2³² accesses wrap it).
    last_access: AtomicU32,
    /// Total record size in bytes (header + key + value): the amount the
    /// resident-bytes gauge was charged for this entry.
    charge: u32,
}

const ENTRY_HEADER_LEN: usize = std::mem::size_of::<EntryHeader>();

// The layout math in read/write paths assumes this exact header size, and
// the allocator's VALUE_ALIGN guarantee must cover the header's alignment
// (the u64 `cas` and the atomics).
const _: () = assert!(ENTRY_HEADER_LEN == 32);
const _: () = assert!(VALUE_ALIGN >= std::mem::align_of::<EntryHeader>());

/// # Safety
/// `ptr` must point to a live entry record written by `CacheMap::write_entry`.
unsafe fn entry_header<'a>(ptr: *const u8) -> &'a EntryHeader {
    // SAFETY: caller contract — `ptr` is a live, VALUE_ALIGN-aligned record
    // whose first ENTRY_HEADER_LEN bytes are an initialized EntryHeader.
    unsafe { &*ptr.cast::<EntryHeader>() }
}

/// # Safety
/// As [`entry_header`].
unsafe fn entry_key<'a>(ptr: *const u8) -> &'a [u8] {
    // SAFETY: caller contract — the record was written with `key_len` key
    // bytes immediately after the header, so the range is in bounds.
    unsafe {
        let header = entry_header(ptr);
        std::slice::from_raw_parts(ptr.add(ENTRY_HEADER_LEN), header.key_len as usize)
    }
}

/// # Safety
/// As [`entry_header`].
unsafe fn entry_value<'a>(ptr: *const u8) -> &'a [u8] {
    // SAFETY: caller contract — `val_len` value bytes follow the key bytes,
    // all inside the record's single allocation.
    unsafe {
        let header = entry_header(ptr);
        std::slice::from_raw_parts(
            ptr.add(ENTRY_HEADER_LEN + header.key_len as usize),
            header.val_len as usize,
        )
    }
}

// ---------------------------------------------------------------------------
// Public configuration and result types
// ---------------------------------------------------------------------------

/// Which entries go first when the memory budget forces eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used first (via each entry's atomic `last_access`
    /// stamp). The production default.
    Lru,
    /// Oldest-inserted first, ignoring access recency — the baseline the
    /// LRU hit-ratio is measured against.
    Fifo,
}

/// Construction parameters for [`CacheMap`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Index shards (hot shards resize independently).
    pub shards: usize,
    /// Index capacity in keys (the index still resizes beyond it).
    pub capacity: usize,
    /// Watermark in bytes over `index_bytes + value bytes`; 0 = unlimited.
    pub memory_budget: u64,
    /// Eviction order once the budget is exceeded.
    pub eviction: EvictionPolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 4,
            capacity: 64 * 1024,
            memory_budget: 0,
            eviction: EvictionPolicy::Lru,
        }
    }
}

/// Result of a conditional store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The value was stored.
    Stored,
    /// The store condition failed (`add` on a live key, `replace` on a
    /// missing one). Nothing changed.
    NotStored,
}

/// Why `incr`/`decr` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterError {
    /// No live entry under the key.
    NotFound,
    /// The stored value is not an unsigned decimal integer.
    NotNumeric,
}

/// A borrowed view of a live entry inside [`CacheSession::get_with`].
pub struct CacheView<'a> {
    /// The value bytes (valid for the closure only).
    pub value: &'a [u8],
    /// The client-opaque flags stored with the value.
    pub flags: u32,
    /// The entry's store sequence number (memcache `cas`).
    pub cas: u64,
}

/// Point-in-time cache counters, surfaced through the memcache `stats`
/// command, the admin plane, and the bench harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub items: u64,
    /// Resident record bytes (headers + keys + values) linked in the index.
    pub value_bytes: u64,
    /// Index structure bytes (bins + link buckets).
    pub index_bytes: u64,
    /// Configured watermark (0 = unlimited).
    pub budget: u64,
    /// Successful gets.
    pub hits: u64,
    /// Gets that found nothing (including lazily-expired entries).
    pub misses: u64,
    /// Stores that landed (set/add/replace/incr/decr rewrites).
    pub sets: u64,
    /// Entries removed because their deadline passed.
    pub expired: u64,
    /// Entries removed by the memory-budget watermark.
    pub evicted: u64,
    /// `flush_all` invocations.
    pub flushes: u64,
    /// Bytes of retired records not yet freed by the epoch GC.
    pub pending_reclaim_bytes: u64,
    /// Seconds on the cache clock since creation.
    pub uptime_secs: u32,
}

impl CacheStats {
    /// The number the memory budget gates: index + resident record bytes.
    pub fn total_bytes(&self) -> u64 {
        self.index_bytes + self.value_bytes
    }

    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What one reap pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReapOutcome {
    /// Entries whose deadline had passed.
    pub expired: u64,
    /// Entries evicted to get back under the memory budget.
    pub evicted: u64,
}

// ---------------------------------------------------------------------------
// CacheMap
// ---------------------------------------------------------------------------

/// The cache storage engine: a sharded DLHT index whose value words point at
/// TTL-carrying entry records. See the module docs for the design.
pub struct CacheMap {
    table: ShardedTable,
    allocator: Arc<dyn ValueAllocator>,
    collector: Arc<Collector>,
    clock: Arc<dyn CacheClock>,
    /// Unix seconds at cache-clock second 1 (for absolute memcache expiry).
    unix_at_start: u64,
    budget: u64,
    eviction: EvictionPolicy,
    stripes: Box<[Mutex<()>]>,
    /// Monotone store sequence (cas ids; also the FIFO eviction order).
    cas_seq: AtomicU64,
    /// Monotone access sequence feeding every entry's `last_access` stamp.
    access_seq: AtomicU32,
    /// Last index_bytes observed by an enforcement pass, so the store fast
    /// path can gate on `value_bytes` alone without recomputing table stats.
    index_bytes_cache: AtomicU64,
    items: AtomicU64,
    value_bytes: AtomicU64,
    pending_reclaim_bytes: Arc<AtomicU64>,
    hits: AtomicU64,
    misses: AtomicU64,
    sets: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    flushes: AtomicU64,
}

impl CacheMap {
    /// Create a cache with the default monotonic clock.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// Create a cache driving TTL decisions from an explicit clock
    /// (deterministic tests use [`ManualClock`]).
    pub fn with_clock(config: CacheConfig, clock: Arc<dyn CacheClock>) -> Self {
        let table = ShardedTable::with_capacity(config.shards.max(1), config.capacity.max(64));
        let index_bytes = table.stats().index_bytes as u64;
        let unix_at_start = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        CacheMap {
            table,
            allocator: AllocatorKind::Pool.build(),
            collector: Arc::new(Collector::new()),
            clock,
            unix_at_start,
            budget: config.memory_budget,
            eviction: config.eviction,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            cas_seq: AtomicU64::new(0),
            access_seq: AtomicU32::new(1),
            index_bytes_cache: AtomicU64::new(index_bytes),
            items: AtomicU64::new(0),
            value_bytes: AtomicU64::new(0),
            pending_reclaim_bytes: Arc::new(AtomicU64::new(0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sets: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// Convenience constructor sized for `keys` entries, no budget.
    pub fn with_capacity(keys: usize) -> Self {
        Self::new(CacheConfig {
            capacity: keys,
            ..CacheConfig::default()
        })
    }

    /// Open a per-thread session (owns the thread's epoch handle; call
    /// [`CacheSession::quiesce`] periodically).
    pub fn session(&self) -> CacheSession<'_> {
        let handle = self
            .collector
            .register()
            .expect("too many concurrent cache sessions");
        CacheSession { map: self, handle }
    }

    /// Seconds on the cache clock.
    pub fn now(&self) -> u32 {
        self.clock.now()
    }

    /// Translate a memcache `exptime` into an absolute cache-clock deadline:
    /// `0` = never, negative = already expired, ≤ 30 days = relative
    /// seconds, larger = absolute unix timestamp.
    pub fn deadline_for(&self, exptime: i64) -> u32 {
        let now = self.clock.now();
        if exptime == 0 {
            return 0;
        }
        if exptime < 0 {
            return 1; // now() is always ≥ 1, so 1 is "already dead"
        }
        let relative = if exptime <= MAX_RELATIVE_EXPIRY {
            exptime as u64
        } else {
            let unix_now = self.unix_at_start + (now as u64 - 1);
            match (exptime as u64).checked_sub(unix_now) {
                Some(rel) if rel > 0 => rel,
                _ => return 1,
            }
        };
        u64::from(now).saturating_add(relative).min(u32::MAX as u64) as u32
    }

    /// Live entries (O(1) gauge, not a scan).
    pub fn len(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured memory watermark (0 = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Structural statistics of the underlying index.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Retired-but-unfreed index generations of the underlying index.
    pub fn retired_indexes(&self) -> usize {
        self.table.retired_indexes()
    }

    /// The epoch collector (exposed for coordinated shutdown in tests).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            items: self.items.load(Ordering::Relaxed),
            value_bytes: self.value_bytes.load(Ordering::Relaxed),
            index_bytes: self.table.stats().index_bytes as u64,
            budget: self.budget,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            pending_reclaim_bytes: self.pending_reclaim_bytes.load(Ordering::Relaxed),
            uptime_secs: self.clock.now().saturating_sub(1),
        }
    }

    // ---- internals --------------------------------------------------------

    fn stripe(&self, word: u64) -> &Mutex<()> {
        &self.stripes[(word as usize) & (STRIPES - 1)]
    }

    /// Key word for the index: 8-byte keys inline exactly (no verification
    /// needed), everything else is a 64-bit fingerprint verified against the
    /// record's stored key on read.
    fn key_word(key: &[u8]) -> (u64, bool) {
        if key.len() == 8 {
            let word = u64::from_le_bytes(key.try_into().expect("len checked"));
            if !crate::bucket::is_reserved_key(word) {
                return (word, true);
            }
        }
        let mut fp = WyHash::hash_bytes_seeded(key, CACHE_HASH_SEED);
        if crate::bucket::is_reserved_key(fp) {
            fp ^= 1;
        }
        (fp, false)
    }

    /// Allocate and fill an entry record; returns its pointer.
    fn write_entry(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        deadline: u32,
        cas: u64,
    ) -> *mut u8 {
        let size = ENTRY_HEADER_LEN + key.len() + value.len();
        let ptr = self.allocator.alloc(size);
        let header = EntryHeader {
            key_len: key.len() as u16,
            _pad: 0,
            val_len: value.len() as u32,
            flags,
            deadline: AtomicU32::new(deadline),
            cas,
            last_access: AtomicU32::new(self.access_stamp()),
            charge: size as u32,
        };
        // SAFETY: `ptr` is a fresh allocation of `size` bytes with
        // VALUE_ALIGN alignment; header, key, and value ranges are disjoint
        // and in bounds by construction of `size`.
        unsafe {
            std::ptr::write(ptr.cast::<EntryHeader>(), header);
            std::ptr::copy_nonoverlapping(key.as_ptr(), ptr.add(ENTRY_HEADER_LEN), key.len());
            std::ptr::copy_nonoverlapping(
                value.as_ptr(),
                ptr.add(ENTRY_HEADER_LEN + key.len()),
                value.len(),
            );
        }
        self.value_bytes.fetch_add(size as u64, Ordering::Relaxed);
        ptr
    }

    /// Undo a `write_entry` that never got linked into the index.
    fn discard_entry(&self, ptr: *mut u8) {
        // SAFETY: the entry was just written by `write_entry` and is not
        // linked anywhere, so this thread holds the only reference.
        let size = unsafe { entry_header(ptr) }.charge as usize;
        self.value_bytes.fetch_sub(size as u64, Ordering::Relaxed);
        // SAFETY: allocated with exactly `size` by `write_entry`.
        unsafe { self.allocator.dealloc(ptr, size) };
    }

    /// Retire an entry that was just unlinked from the index: move its bytes
    /// from the resident gauge to the pending-reclaim gauge and defer the
    /// free to the epoch GC.
    fn retire_entry(&self, handle: &mut LocalHandle, word_value: u64) {
        let ptr = word_value as *mut u8;
        // SAFETY: the entry was unlinked by the caller under its stripe lock
        // and stays alive until this session's next quiescent point.
        let size = unsafe { entry_header(ptr) }.charge as usize;
        self.value_bytes.fetch_sub(size as u64, Ordering::Relaxed);
        self.pending_reclaim_bytes
            .fetch_add(size as u64, Ordering::Relaxed);
        let allocator = Arc::clone(&self.allocator);
        let pending = Arc::clone(&self.pending_reclaim_bytes);
        let addr = word_value as usize;
        handle.defer(move || {
            pending.fetch_sub(size as u64, Ordering::Relaxed);
            // SAFETY: the epoch GC runs this only after every session passed
            // a quiescent point, so no reader can still hold the record.
            unsafe { allocator.dealloc(addr as *mut u8, size) };
        });
    }

    /// Next LRU recency stamp.
    fn access_stamp(&self) -> u32 {
        self.access_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn expired_at(header: &EntryHeader, now: u32) -> bool {
        let deadline = header.deadline.load(Ordering::Acquire);
        deadline != 0 && deadline <= now
    }
}

impl Drop for CacheMap {
    fn drop(&mut self) {
        // Exclusive access: free every record still linked in the index.
        let mut ptrs: Vec<u64> = Vec::new();
        self.table.for_each(|_, value_word| ptrs.push(value_word));
        for word_value in ptrs {
            let ptr = word_value as *mut u8;
            // SAFETY: exclusive access (we hold &mut self); the record is
            // live and was allocated by `write_entry` with `charge` bytes.
            let size = unsafe { entry_header(ptr) }.charge as usize;
            // SAFETY: as above — matching size and allocator.
            unsafe { self.allocator.dealloc(ptr, size) };
        }
    }
}

// ---------------------------------------------------------------------------
// CacheSession
// ---------------------------------------------------------------------------

/// How a slot looked when a mutation examined it under its stripe lock.
enum SlotState {
    Empty,
    /// A live entry with the same key.
    Live(u64),
    /// Same key, deadline passed — logically absent, physically present.
    Expired(u64),
    /// Fingerprint collision: a different key owns this word. Treated as
    /// absent for conditionals; unconditional stores overwrite it
    /// (last-writer-wins, a ~2⁻⁶⁴ event per pair).
    Foreign(u64),
}

/// Per-thread session over a [`CacheMap`]: owns the thread's epoch handle,
/// so record pointers read inside one call stay valid until the session's
/// next [`CacheSession::quiesce`].
pub struct CacheSession<'a> {
    map: &'a CacheMap,
    handle: LocalHandle,
}

impl<'a> CacheSession<'a> {
    /// The cache this session operates on.
    pub fn map(&self) -> &'a CacheMap {
        self.map
    }

    /// Classify what currently occupies `word`. Caller must hold the
    /// stripe lock for `word`.
    fn slot_state(&self, word: u64, exact: bool, key: &[u8], now: u32) -> SlotState {
        match self.map.table.get(word) {
            None => SlotState::Empty,
            Some(cur) => {
                let ptr = cur as *const u8;
                // SAFETY: `cur` was published by this map and cannot be
                // freed before this session's next quiescent point.
                let header = unsafe { entry_header(ptr) };
                // SAFETY: as above.
                if !exact && unsafe { entry_key(ptr) } != key {
                    SlotState::Foreign(cur)
                } else if CacheMap::expired_at(header, now) {
                    SlotState::Expired(cur)
                } else {
                    SlotState::Live(cur)
                }
            }
        }
    }

    /// Unlink `word` (which currently holds `cur`) and retire the record.
    /// Caller must hold the stripe lock.
    fn unlink(&mut self, word: u64, cur: u64) {
        let removed = self.map.table.delete(word);
        debug_assert_eq!(removed, Some(cur), "stripe lock guarantees stability");
        self.map.items.fetch_sub(1, Ordering::Relaxed);
        self.map.retire_entry(&mut self.handle, cur);
    }

    /// Unconditional store (memcache `set`).
    pub fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: i64,
    ) -> Result<StoreOutcome, DlhtError> {
        self.store_entry(key, value, flags, exptime, None)
    }

    /// Store only if the key is absent (memcache `add`).
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: i64,
    ) -> Result<StoreOutcome, DlhtError> {
        self.store_entry(key, value, flags, exptime, Some(false))
    }

    /// Store only if the key is live (memcache `replace`).
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: i64,
    ) -> Result<StoreOutcome, DlhtError> {
        self.store_entry(key, value, flags, exptime, Some(true))
    }

    /// `require_live`: `None` = unconditional, `Some(false)` = only when
    /// absent, `Some(true)` = only when live.
    fn store_entry(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: i64,
        require_live: Option<bool>,
    ) -> Result<StoreOutcome, DlhtError> {
        if key.is_empty() || key.len() > crate::MAX_KEY_LEN {
            return Err(DlhtError::KeyTooLong);
        }
        let deadline = self.map.deadline_for(exptime);
        let now = self.map.clock.now();
        let (word, exact) = CacheMap::key_word(key);
        let stored = {
            let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
            let state = self.slot_state(word, exact, key, now);
            // An expired entry is logically absent: remove it here so `add`
            // can take the slot and the accounting reflects reality.
            let state = match state {
                SlotState::Expired(cur) => {
                    self.unlink(word, cur);
                    self.map.expired.fetch_add(1, Ordering::Relaxed);
                    SlotState::Empty
                }
                other => other,
            };
            let replaces = match (require_live, &state) {
                (Some(true), SlotState::Live(cur)) => Some(*cur),
                (Some(true), _) => return Ok(StoreOutcome::NotStored),
                (Some(false), SlotState::Live(_)) => return Ok(StoreOutcome::NotStored),
                // A colliding foreign key is overwritten even by `add`:
                // the word can only hold one record.
                (_, SlotState::Live(cur) | SlotState::Foreign(cur)) => Some(*cur),
                (_, SlotState::Empty | SlotState::Expired(_)) => None,
            };
            let cas = self.map.cas_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let entry = self.map.write_entry(key, value, flags, deadline, cas);
            match replaces {
                Some(cur) => {
                    let prev = self.map.table.put(word, entry as u64);
                    debug_assert_eq!(prev, Some(cur), "stripe lock guarantees stability");
                    self.map.retire_entry(&mut self.handle, cur);
                }
                None => match self.map.table.insert(word, entry as u64) {
                    Ok(InsertOutcome::Inserted) => {
                        self.map.items.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(InsertOutcome::AlreadyExists(_)) => {
                        // Unreachable under the stripe lock; keep the map
                        // consistent anyway.
                        self.map.discard_entry(entry);
                        return Ok(StoreOutcome::NotStored);
                    }
                    Err(e) => {
                        self.map.discard_entry(entry);
                        return Err(e);
                    }
                },
            }
            self.map.sets.fetch_add(1, Ordering::Relaxed);
            StoreOutcome::Stored
        };
        self.maybe_evict();
        Ok(stored)
    }

    /// Lock-free lookup: invoke `f` on the live entry, or return `None` on
    /// a miss. Entries past their deadline are **never** surfaced, even
    /// before the reaper removes them.
    // HOT: the cache read path — no locks, one index Get, one record read.
    pub fn get_with<R>(&mut self, key: &[u8], f: impl FnOnce(CacheView<'_>) -> R) -> Option<R> {
        let now = self.map.clock.now();
        let (word, exact) = CacheMap::key_word(key);
        let miss = |map: &CacheMap| {
            map.misses.fetch_add(1, Ordering::Relaxed);
        };
        let Some(cur) = self.map.table.get(word) else {
            miss(self.map);
            return None;
        };
        let ptr = cur as *const u8;
        // SAFETY: `cur` was published by this map; epoch protection (this
        // session is between quiescent points) keeps the record alive.
        let header = unsafe { entry_header(ptr) };
        // SAFETY: as above.
        if !exact && unsafe { entry_key(ptr) } != key {
            miss(self.map);
            return None;
        }
        if CacheMap::expired_at(header, now) {
            miss(self.map);
            return None;
        }
        header
            .last_access
            .store(self.map.access_stamp(), Ordering::Relaxed);
        self.map.hits.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as above — the value slice lives inside the same record.
        let value = unsafe { entry_value(ptr) };
        Some(f(CacheView {
            value,
            flags: header.flags,
            cas: header.cas,
        }))
    }

    /// Copying lookup.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(key, |view| view.value.to_vec())
    }

    /// Remove `key`. Returns `true` only if a live entry was removed
    /// (memcache `DELETED` vs `NOT_FOUND`); an expired entry is removed
    /// physically but reported as absent.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let now = self.map.clock.now();
        let (word, exact) = CacheMap::key_word(key);
        let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
        match self.slot_state(word, exact, key, now) {
            SlotState::Empty | SlotState::Foreign(_) => false,
            SlotState::Expired(cur) => {
                self.unlink(word, cur);
                self.map.expired.fetch_add(1, Ordering::Relaxed);
                false
            }
            SlotState::Live(cur) => {
                self.unlink(word, cur);
                true
            }
        }
    }

    /// Update a live entry's deadline in place (memcache `touch`). Returns
    /// `false` when the key is absent or already expired.
    pub fn touch(&mut self, key: &[u8], exptime: i64) -> bool {
        let deadline = self.map.deadline_for(exptime);
        let now = self.map.clock.now();
        let (word, exact) = CacheMap::key_word(key);
        let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
        match self.slot_state(word, exact, key, now) {
            SlotState::Live(cur) => {
                let ptr = cur as *const u8;
                // SAFETY: live entry under epoch protection; deadline and
                // last_access are atomics made for in-place update.
                let header = unsafe { entry_header(ptr) };
                header.deadline.store(deadline, Ordering::Release);
                header
                    .last_access
                    .store(self.map.access_stamp(), Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Add `delta` to a numeric value (wrapping, per memcache).
    pub fn incr(&mut self, key: &[u8], delta: u64) -> Result<u64, CounterError> {
        self.counter_op(key, delta, true)
    }

    /// Subtract `delta` from a numeric value (floored at 0, per memcache).
    pub fn decr(&mut self, key: &[u8], delta: u64) -> Result<u64, CounterError> {
        self.counter_op(key, delta, false)
    }

    fn counter_op(&mut self, key: &[u8], delta: u64, up: bool) -> Result<u64, CounterError> {
        let now = self.map.clock.now();
        let (word, exact) = CacheMap::key_word(key);
        let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
        let cur = match self.slot_state(word, exact, key, now) {
            SlotState::Live(cur) => cur,
            _ => return Err(CounterError::NotFound),
        };
        let ptr = cur as *const u8;
        // SAFETY: live entry under epoch protection (see `get_with`).
        let header = unsafe { entry_header(ptr) };
        // SAFETY: as above.
        let value = unsafe { entry_value(ptr) };
        let current = parse_decimal_u64(value).ok_or(CounterError::NotNumeric)?;
        let next = if up {
            current.wrapping_add(delta)
        } else {
            current.saturating_sub(delta)
        };
        let mut buf = [0u8; 20];
        let text = format_decimal_u64(&mut buf, next);
        let deadline = header.deadline.load(Ordering::Acquire);
        let flags = header.flags;
        let cas = self.map.cas_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = self.map.write_entry(key, text, flags, deadline, cas);
        let prev = self.map.table.put(word, entry as u64);
        debug_assert_eq!(prev, Some(cur), "stripe lock guarantees stability");
        self.map.retire_entry(&mut self.handle, cur);
        self.map.sets.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }

    /// Remove every entry (memcache `flush_all`). Returns the number of
    /// entries removed.
    pub fn flush_all(&mut self) -> u64 {
        let mut words: Vec<u64> = Vec::new();
        self.map.table.for_each(|word, _| words.push(word));
        let mut removed = 0;
        for word in words {
            let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
            if let Some(cur) = self.map.table.delete(word) {
                self.map.items.fetch_sub(1, Ordering::Relaxed);
                self.map.retire_entry(&mut self.handle, cur);
                removed += 1;
            }
        }
        self.map.flushes.fetch_add(1, Ordering::Relaxed);
        removed
    }

    /// One reaper pass: sweep expired entries, then enforce the memory
    /// budget, then announce a quiescent point (so repeated passes actually
    /// free what they retired).
    pub fn reap(&mut self) -> ReapOutcome {
        let expired = self.sweep_expired();
        let evicted = self.maybe_evict();
        self.quiesce();
        ReapOutcome { expired, evicted }
    }

    /// Scan the index and retire every entry whose deadline has passed.
    /// Concurrent-safe: each victim is re-verified under its stripe lock
    /// before unlinking (a racing `touch`/`set` wins).
    pub fn sweep_expired(&mut self) -> u64 {
        let now = self.map.clock.now();
        let mut victims: Vec<(u64, u64)> = Vec::new();
        self.map.table.for_each(|word, value_word| {
            let ptr = value_word as *const u8;
            // SAFETY: published record under epoch protection — this
            // session does not quiesce during the scan.
            let header = unsafe { entry_header(ptr) };
            if CacheMap::expired_at(header, now) {
                victims.push((word, value_word));
            }
        });
        let mut reaped = 0;
        for (word, value_word) in victims {
            let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
            if self.map.table.get(word) != Some(value_word) {
                continue; // replaced since the scan
            }
            let ptr = value_word as *const u8;
            // SAFETY: still linked (checked above under the stripe lock).
            let header = unsafe { entry_header(ptr) };
            if !CacheMap::expired_at(header, now) {
                continue; // a racing touch extended it
            }
            self.unlink(word, value_word);
            self.map.expired.fetch_add(1, Ordering::Relaxed);
            reaped += 1;
        }
        reaped
    }

    /// Enforce the memory budget: when `index_bytes + value bytes` exceeds
    /// the watermark, retire entries in eviction order until usage drops to
    /// 7/8 of the budget (batching avoids one-at-a-time thrash). Returns
    /// the number of entries evicted.
    pub fn maybe_evict(&mut self) -> u64 {
        let budget = self.map.budget;
        if budget == 0 {
            return 0;
        }
        // Fast path: gate on the resident gauge plus the index size cached
        // by the last enforcement, so stores under budget pay one load.
        let cached_index = self.map.index_bytes_cache.load(Ordering::Relaxed);
        if self.map.value_bytes.load(Ordering::Relaxed) + cached_index <= budget {
            return 0;
        }
        let index_bytes = self.map.table.stats().index_bytes as u64;
        self.map
            .index_bytes_cache
            .store(index_bytes, Ordering::Relaxed);
        if self.map.value_bytes.load(Ordering::Relaxed) + index_bytes <= budget {
            return 0;
        }
        // Evict down to the low watermark. If the index alone exceeds the
        // budget the target is 0 — everything goes (documented: budgets
        // must leave room for the index).
        let target = budget
            .saturating_sub(budget / 8)
            .saturating_sub(index_bytes);
        let now = self.map.clock.now();
        let fifo = self.map.eviction == EvictionPolicy::Fifo;
        let mut candidates: Vec<(u64, u64, u64)> = Vec::new();
        self.map.table.for_each(|word, value_word| {
            let ptr = value_word as *const u8;
            // SAFETY: published record under epoch protection (no quiesce
            // during the scan).
            let header = unsafe { entry_header(ptr) };
            let order = if fifo {
                header.cas
            } else {
                // LRU: coldest access first; ties broken by insert order.
                ((header.last_access.load(Ordering::Relaxed) as u64) << 32)
                    | (header.cas & 0xFFFF_FFFF)
            };
            candidates.push((order, word, value_word));
        });
        candidates.sort_unstable_by_key(|&(order, _, _)| order);
        let mut evicted = 0;
        for (_, word, value_word) in candidates {
            if self.map.value_bytes.load(Ordering::Relaxed) <= target {
                break;
            }
            let _guard = self.map.stripe(word).lock().expect("cache stripe lock");
            if self.map.table.get(word) != Some(value_word) {
                continue;
            }
            let ptr = value_word as *const u8;
            // SAFETY: still linked (checked above under the stripe lock).
            let was_expired = CacheMap::expired_at(unsafe { entry_header(ptr) }, now);
            self.unlink(word, value_word);
            if was_expired {
                self.map.expired.fetch_add(1, Ordering::Relaxed);
            } else {
                self.map.evicted.fetch_add(1, Ordering::Relaxed);
                evicted += 1;
            }
        }
        evicted
    }

    /// Announce a quiescent point: records retired two epochs ago become
    /// freeable, and the global epoch advances once all sessions have done
    /// so.
    pub fn quiesce(&mut self) {
        self.handle.quiescent();
    }

    /// Records retired by this session and not yet freed.
    pub fn pending_garbage(&self) -> usize {
        self.handle.pending()
    }
}

/// Strict unsigned-decimal parse (what memcache `incr`/`decr` accept):
/// non-empty, digits only, must fit u64.
pub fn parse_decimal_u64(text: &[u8]) -> Option<u64> {
    if text.is_empty() || text.len() > 20 {
        return None;
    }
    let mut value: u64 = 0;
    for &byte in text {
        if !byte.is_ascii_digit() {
            return None;
        }
        value = value.checked_mul(10)?.checked_add(u64::from(byte - b'0'))?;
    }
    Some(value)
}

/// Format `value` into `buf`, returning the used suffix.
pub fn format_decimal_u64(buf: &mut [u8; 20], mut value: u64) -> &[u8] {
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    &buf[at..]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_cache(budget: u64, eviction: EvictionPolicy) -> (Arc<ManualClock>, CacheMap) {
        let clock = Arc::new(ManualClock::new(1));
        let map = CacheMap::with_clock(
            CacheConfig {
                shards: 2,
                capacity: 4096,
                memory_budget: budget,
                eviction,
            },
            clock.clone(),
        );
        (clock, map)
    }

    #[test]
    fn set_get_add_replace_delete_roundtrip() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        assert_eq!(s.set(b"k", b"v1", 7, 0).unwrap(), StoreOutcome::Stored);
        assert_eq!(s.add(b"k", b"v2", 0, 0).unwrap(), StoreOutcome::NotStored);
        assert_eq!(s.replace(b"k", b"v3", 9, 0).unwrap(), StoreOutcome::Stored);
        let (value, flags) = s
            .get_with(b"k", |v| (v.value.to_vec(), v.flags))
            .expect("hit");
        assert_eq!(value, b"v3");
        assert_eq!(flags, 9);
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert_eq!(s.get(b"k"), None);
        assert_eq!(
            s.replace(b"k", b"v", 0, 0).unwrap(),
            StoreOutcome::NotStored
        );
        assert_eq!(s.add(b"k", b"v4", 0, 0).unwrap(), StoreOutcome::Stored);
        assert_eq!(s.get(b"k").unwrap(), b"v4");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn cas_is_monotone_per_store() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        s.set(b"a", b"1", 0, 0).unwrap();
        let cas1 = s.get_with(b"a", |v| v.cas).unwrap();
        s.set(b"a", b"2", 0, 0).unwrap();
        let cas2 = s.get_with(b"a", |v| v.cas).unwrap();
        assert!(cas2 > cas1);
    }

    #[test]
    fn expired_entries_are_never_served() {
        let (clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        s.set(b"ttl", b"v", 0, 10).unwrap();
        assert_eq!(s.get(b"ttl").unwrap(), b"v");
        clock.advance(9); // now = 10: deadline (1 + 10 = 11) not yet passed
        assert_eq!(s.get(b"ttl").unwrap(), b"v");
        clock.advance(1); // now = 11 == deadline → dead
        assert_eq!(s.get(b"ttl"), None);
        // Logically absent everywhere: add succeeds, delete reports miss.
        assert!(!s.delete(b"ttl"));
        assert_eq!(s.add(b"ttl", b"v2", 0, 0).unwrap(), StoreOutcome::Stored);
        assert_eq!(s.get(b"ttl").unwrap(), b"v2");
    }

    #[test]
    fn negative_exptime_is_immediately_dead() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        s.set(b"dead", b"v", 0, -1).unwrap();
        assert_eq!(s.get(b"dead"), None);
    }

    #[test]
    fn absolute_unix_exptime_converts() {
        let (clock, map) = manual_cache(0, EvictionPolicy::Lru);
        // Cache second 1 corresponds to unix_at_start; +100s absolute.
        let unix_target = map.unix_at_start + 100;
        let deadline = map.deadline_for(unix_target as i64);
        assert_eq!(deadline, 101);
        // A past absolute timestamp is already dead.
        assert_eq!(map.deadline_for(map.unix_at_start as i64), 1);
        clock.advance(1);
        assert_eq!(map.deadline_for(unix_target as i64), 101);
    }

    #[test]
    fn touch_extends_deadline_in_place() {
        let (clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        s.set(b"t", b"v", 0, 5).unwrap();
        clock.advance(4);
        assert!(s.touch(b"t", 100));
        clock.advance(50);
        assert_eq!(s.get(b"t").unwrap(), b"v", "touch moved the deadline");
        clock.advance(60);
        assert_eq!(s.get(b"t"), None);
        assert!(!s.touch(b"t", 100), "expired entries cannot be touched");
    }

    #[test]
    fn incr_decr_semantics() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        assert_eq!(s.incr(b"n", 1), Err(CounterError::NotFound));
        s.set(b"n", b"10", 0, 0).unwrap();
        assert_eq!(s.incr(b"n", 5).unwrap(), 15);
        assert_eq!(s.decr(b"n", 100).unwrap(), 0, "decr floors at zero");
        assert_eq!(s.get(b"n").unwrap(), b"0");
        s.set(b"n", &u64::MAX.to_string().into_bytes(), 0, 0)
            .unwrap();
        assert_eq!(s.incr(b"n", 2).unwrap(), 1, "incr wraps");
        s.set(b"x", b"12x", 0, 0).unwrap();
        assert_eq!(s.incr(b"x", 1), Err(CounterError::NotNumeric));
        s.set(b"big", b"99999999999999999999999", 0, 0).unwrap();
        assert_eq!(s.incr(b"big", 1), Err(CounterError::NotNumeric));
    }

    #[test]
    fn sweep_expired_drains_a_storm_and_epoch_frees_it() {
        let (clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        for i in 0..200u64 {
            s.set(format!("storm:{i}").as_bytes(), &[7u8; 64], 0, 5)
                .unwrap();
        }
        assert_eq!(map.len(), 200);
        clock.advance(10);
        let reaped = s.sweep_expired();
        assert_eq!(reaped, 200);
        assert_eq!(map.len(), 0);
        assert_eq!(map.stats().expired, 200);
        // Retired bytes drain to zero once the epoch advances.
        assert!(map.stats().pending_reclaim_bytes > 0);
        for _ in 0..4 {
            s.quiesce();
        }
        assert_eq!(map.stats().pending_reclaim_bytes, 0);
        assert_eq!(map.stats().value_bytes, 0);
    }

    #[test]
    fn eviction_respects_budget_and_lru_keeps_hot_keys() {
        let value = [1u8; 1024];
        let (_clock, map) = {
            let clock = Arc::new(ManualClock::new(1));
            let map = CacheMap::with_clock(
                CacheConfig {
                    shards: 1,
                    capacity: 1024,
                    memory_budget: 256 * 1024,
                    eviction: EvictionPolicy::Lru,
                },
                clock.clone(),
            );
            (clock, map)
        };
        let mut s = map.session();
        let budget = map.budget();
        // Keep key 0 hot by re-reading it between stores.
        for i in 0..1000u64 {
            s.set(format!("fill:{i:04}").as_bytes(), &value, 0, 0)
                .unwrap();
            let _ = s.get(b"fill:0000");
            let stats = map.stats();
            assert!(
                stats.total_bytes() <= budget,
                "over budget after store {i}: {} > {budget}",
                stats.total_bytes()
            );
        }
        let stats = map.stats();
        assert!(stats.evicted > 0, "the fill must have forced evictions");
        assert!(
            s.get(b"fill:0000").is_some(),
            "LRU must keep the hot key resident"
        );
    }

    #[test]
    fn fifo_evicts_in_insert_order() {
        let value = [2u8; 512];
        let clock = Arc::new(ManualClock::new(1));
        let map = CacheMap::with_clock(
            CacheConfig {
                shards: 1,
                capacity: 1024,
                memory_budget: 128 * 1024,
                eviction: EvictionPolicy::Fifo,
            },
            clock.clone(),
        );
        let mut s = map.session();
        for i in 0..500u64 {
            s.set(format!("f:{i:04}").as_bytes(), &value, 0, 0).unwrap();
            let _ = s.get(b"f:0000"); // recency must NOT save it under FIFO
        }
        assert!(map.stats().evicted > 0);
        assert_eq!(s.get(b"f:0000"), None, "FIFO ignores recency");
        assert!(s.get(b"f:0499").is_some(), "newest entries survive");
    }

    #[test]
    fn flush_all_empties_the_cache() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        for i in 0..50u64 {
            s.set(format!("k{i}").as_bytes(), b"v", 0, 0).unwrap();
        }
        assert_eq!(s.flush_all(), 50);
        assert_eq!(map.len(), 0);
        assert_eq!(s.get(b"k0"), None);
        assert_eq!(map.stats().flushes, 1);
    }

    #[test]
    fn stats_counters_track_operations() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        s.set(b"a", b"1", 0, 0).unwrap();
        let _ = s.get(b"a");
        let _ = s.get(b"missing");
        let stats = map.stats();
        assert_eq!(stats.items, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.sets, 1);
        assert!(stats.value_bytes >= (ENTRY_HEADER_LEN + 2) as u64);
        assert!((stats.hit_ratio() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn eight_byte_keys_inline_and_long_keys_fingerprint() {
        let (_clock, map) = manual_cache(0, EvictionPolicy::Lru);
        let mut s = map.session();
        s.set(b"exactly8", b"inline", 0, 0).unwrap();
        let long = vec![b'x'; 200];
        s.set(&long, b"hashed", 0, 0).unwrap();
        assert_eq!(s.get(b"exactly8").unwrap(), b"inline");
        assert_eq!(s.get(&long).unwrap(), b"hashed");
        assert_eq!(s.get(b"exactly9"), None);
        assert!(s.set(b"", b"v", 0, 0).is_err(), "empty keys are rejected");
    }

    #[test]
    fn concurrent_churn_with_reaper_stays_consistent() {
        let clock = Arc::new(ManualClock::new(1));
        let map = Arc::new(CacheMap::with_clock(
            CacheConfig {
                shards: 4,
                capacity: 8192,
                memory_budget: 0,
                eviction: EvictionPolicy::Lru,
            },
            clock.clone(),
        ));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let map = Arc::clone(&map);
                let clock = Arc::clone(&clock);
                scope.spawn(move || {
                    let mut s = map.session();
                    for i in 0..800u64 {
                        let key = format!("churn:{t}:{}", i % 64);
                        match i % 5 {
                            0 | 1 => {
                                s.set(key.as_bytes(), &i.to_le_bytes(), 0, 2).unwrap();
                            }
                            2 => {
                                let _ = s.get(key.as_bytes());
                            }
                            3 => {
                                let _ = s.touch(key.as_bytes(), 4);
                            }
                            _ => {
                                let _ = s.delete(key.as_bytes());
                            }
                        }
                        if i % 100 == 0 {
                            clock.advance(1);
                            s.sweep_expired();
                        }
                        if i % 32 == 0 {
                            s.quiesce();
                        }
                    }
                });
            }
        });
        // Drain: expire everything and verify the books balance.
        clock.advance(100);
        let mut s = map.session();
        s.sweep_expired();
        assert_eq!(map.len(), 0);
        for _ in 0..4 {
            s.quiesce();
        }
        assert_eq!(map.stats().pending_reclaim_bytes, 0);
        assert_eq!(map.stats().value_bytes, 0);
    }

    #[test]
    fn decimal_helpers_roundtrip() {
        let mut buf = [0u8; 20];
        for v in [0u64, 1, 9, 10, 12345, u64::MAX] {
            let text = format_decimal_u64(&mut buf, v);
            assert_eq!(parse_decimal_u64(text), Some(v));
        }
        assert_eq!(parse_decimal_u64(b""), None);
        assert_eq!(parse_decimal_u64(b"1a"), None);
        assert_eq!(parse_decimal_u64(b"18446744073709551616"), None);
        assert_eq!(parse_decimal_u64(b"018446744073709551615"), None);
    }
}
