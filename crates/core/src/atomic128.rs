//! Double-word (16-byte) compare-and-swap, used by Puts and by the resize
//! transfer to swap a whole slot atomically (§3.2.4, §3.2.5).
//!
//! On `x86_64` this compiles to a `lock cmpxchg16b` (the dw-CAS the paper
//! relies on). On other architectures — or on the rare x86-64 CPU without the
//! `cmpxchg16b` feature — a striped spin-lock fallback provides the same
//! *check-both-words-then-swap* semantics. The fallback is correct because the
//! two words of a slot are plain `AtomicU64`s: readers never observe torn
//! words, only the pair-atomicity of the swap needs protecting, and every
//! writer of the pair (Put and the resize transfer) goes through this module.

use std::sync::atomic::{AtomicU64, Ordering};

/// A 16-byte, 16-byte-aligned pair of atomics supporting dw-CAS.
#[repr(C, align(16))]
pub struct AtomicPair {
    lo: AtomicU64,
    hi: AtomicU64,
}

impl Default for AtomicPair {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl AtomicPair {
    /// Create a pair initialized to `(lo, hi)`.
    pub const fn new(lo: u64, hi: u64) -> Self {
        AtomicPair {
            lo: AtomicU64::new(lo),
            hi: AtomicU64::new(hi),
        }
    }

    /// Load both words (not atomically as a pair; callers validate via the bin
    /// header version or via [`AtomicPair::compare_exchange`]).
    #[inline]
    pub fn load(&self, order: Ordering) -> (u64, u64) {
        (self.lo.load(order), self.hi.load(order))
    }

    /// Load only the low word (the key word of a slot).
    #[inline]
    pub fn load_lo(&self, order: Ordering) -> u64 {
        self.lo.load(order)
    }

    /// Load only the high word (the value word of a slot).
    #[inline]
    pub fn load_hi(&self, order: Ordering) -> u64 {
        self.hi.load(order)
    }

    /// Store both words (used only during initialization or while the slot is
    /// exclusively owned, e.g. in `TryInsert` state).
    #[inline]
    pub fn store(&self, lo: u64, hi: u64, order: Ordering) {
        self.lo.store(lo, order);
        self.hi.store(hi, order);
    }

    /// Atomically compare the pair against `current` and, if equal, replace it
    /// with `new`. Returns `Ok(())` on success and `Err(observed_pair)` on
    /// failure.
    #[inline]
    pub fn compare_exchange(&self, current: (u64, u64), new: (u64, u64)) -> Result<(), (u64, u64)> {
        // Miri cannot execute inline asm, so it always takes the fallback,
        // which exercises the same pair-atomicity protocol.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if cmpxchg16b_supported() {
                // SAFETY: `self` is 16-byte aligned (repr align(16)) and the
                // CPU supports cmpxchg16b.
                return unsafe { cmpxchg16b(self as *const _ as *mut u128, current, new) };
            }
        }
        self.compare_exchange_fallback(current, new)
    }

    /// Striped-lock fallback used when a true 128-bit CAS is unavailable.
    fn compare_exchange_fallback(
        &self,
        current: (u64, u64),
        new: (u64, u64),
    ) -> Result<(), (u64, u64)> {
        let _guard = fallback_lock(self as *const _ as usize);
        let observed = (
            self.lo.load(Ordering::Relaxed),
            self.hi.load(Ordering::Relaxed),
        );
        if observed == current {
            self.lo.store(new.0, Ordering::Relaxed);
            self.hi.store(new.1, Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Release);
            Ok(())
        } else {
            Err(observed)
        }
    }
}

/// Whether the running CPU provides `cmpxchg16b`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
pub fn cmpxchg16b_supported() -> bool {
    use std::sync::atomic::AtomicU8;
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 yes, 2 no
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("cmpxchg16b");
            STATE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Whether the running CPU provides a native 128-bit CAS (always `false` off
/// x86-64 and under Miri, which cannot execute the inline-asm fast path).
#[cfg(not(all(target_arch = "x86_64", not(miri))))]
#[inline]
pub fn cmpxchg16b_supported() -> bool {
    false
}

/// Raw `lock cmpxchg16b` wrapper.
///
/// # Safety
/// `ptr` must be valid, 16-byte aligned, and the CPU must support the
/// `cmpxchg16b` instruction.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
unsafe fn cmpxchg16b(
    ptr: *mut u128,
    current: (u64, u64),
    new: (u64, u64),
) -> Result<(), (u64, u64)> {
    let mut out_lo = current.0;
    let mut out_hi = current.1;
    let ok: u8;
    // rbx is reserved by LLVM, so stash the new-low value through a scratch
    // register around the instruction.
    // SAFETY: caller contract — `ptr` is valid and 16-byte aligned and the
    // CPU supports cmpxchg16b; rbx is restored by the second xchg, so no
    // LLVM-reserved register is left clobbered.
    unsafe {
        std::arch::asm!(
            "xchg {new_lo}, rbx",
            "lock cmpxchg16b [{ptr}]",
            "sete {ok}",
            "xchg {new_lo}, rbx",
            ptr = in(reg) ptr,
            new_lo = inout(reg) new.0 => _,
            in("rcx") new.1,
            inout("rax") out_lo,
            inout("rdx") out_hi,
            ok = out(reg_byte) ok,
            options(nostack),
        );
    }
    if ok != 0 {
        Ok(())
    } else {
        Err((out_lo, out_hi))
    }
}

/// A tiny striped spin-lock table for the fallback path.
struct FallbackGuard {
    lock: &'static AtomicU64,
}

impl Drop for FallbackGuard {
    fn drop(&mut self) {
        self.lock.store(0, Ordering::Release);
    }
}

fn fallback_lock(addr: usize) -> FallbackGuard {
    const STRIPES: usize = 64;
    static LOCKS: [AtomicU64; 64] = {
        // AUDIT: allow(declare_interior_mutable_const) — the const is the
        // canonical array-initializer idiom; each element is its own atomic.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        [ZERO; 64]
    };
    let lock = &LOCKS[(addr >> 4) % STRIPES];
    loop {
        if lock
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return FallbackGuard { lock };
        }
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_success_and_failure() {
        let p = AtomicPair::new(1, 2);
        assert_eq!(p.load(Ordering::Relaxed), (1, 2));
        assert_eq!(p.compare_exchange((1, 2), (3, 4)), Ok(()));
        assert_eq!(p.load(Ordering::Relaxed), (3, 4));
        assert_eq!(p.compare_exchange((1, 2), (9, 9)), Err((3, 4)));
        assert_eq!(p.load(Ordering::Relaxed), (3, 4));
    }

    #[test]
    fn fallback_matches_native_semantics() {
        let p = AtomicPair::new(10, 20);
        assert_eq!(p.compare_exchange_fallback((10, 20), (11, 21)), Ok(()));
        assert_eq!(p.compare_exchange_fallback((10, 20), (0, 0)), Err((11, 21)));
    }

    #[test]
    fn partial_match_fails() {
        let p = AtomicPair::new(5, 6);
        // Low word matches, high word does not: must fail and report both.
        assert_eq!(p.compare_exchange((5, 999), (0, 0)), Err((5, 6)));
        assert_eq!(p.compare_exchange((999, 6), (0, 0)), Err((5, 6)));
    }

    #[test]
    fn alignment_is_sixteen_bytes() {
        assert_eq!(std::mem::align_of::<AtomicPair>(), 16);
        assert_eq!(std::mem::size_of::<AtomicPair>(), 16);
    }

    #[test]
    fn concurrent_counter_via_dwcas_loses_no_updates() {
        // Each thread repeatedly dw-CASes (n, checksum) -> (n+1, checksum+n).
        // Any lost or doubled update breaks the checksum relation.
        let pair = Arc::new(AtomicPair::new(0, 0));
        const THREADS: u64 = 4;
        let per_thread = dlht_util::miri_scaled(20_000);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let pair = Arc::clone(&pair);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        loop {
                            let cur = pair.load(Ordering::Acquire);
                            let next = (cur.0 + 1, cur.1 + cur.0);
                            if pair.compare_exchange(cur, next).is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let (n, checksum) = pair.load(Ordering::Acquire);
        assert_eq!(n, THREADS * per_thread);
        assert_eq!(checksum, n * (n - 1) / 2);
    }
}
