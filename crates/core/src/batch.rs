//! Order-preserving request batching with software prefetching (§3.3).
//!
//! A batch is an array of requests of possibly different types. Execution
//! first sweeps the array issuing a prefetch for every request's bin, then
//! executes the requests **strictly in order** (unlike DRAMHiT, which may
//! reorder — a property §5.3.3 shows can deadlock a lock manager). The
//! enter/leave index-GC notifications are paid once per batch instead of once
//! per request.

use crate::error::{DlhtError, InsertOutcome};
use crate::table::RawTable;

/// One request in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Look up a key.
    Get(u64),
    /// Update an existing key's value (Inlined mode).
    Put(u64, u64),
    /// Insert a new key-value pair.
    Insert(u64, u64),
    /// Delete a key.
    Delete(u64),
}

impl Request {
    /// The key this request targets.
    #[inline]
    pub fn key(&self) -> u64 {
        match *self {
            Request::Get(k) | Request::Put(k, _) | Request::Insert(k, _) | Request::Delete(k) => k,
        }
    }
}

/// The result of one request in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Result of a `Get`: the value if present.
    Value(Option<u64>),
    /// Result of a `Put`: the previous value if the key existed.
    Updated(Option<u64>),
    /// Result of an `Insert`.
    Inserted(Result<InsertOutcome, DlhtError>),
    /// Result of a `Delete`: the removed value if the key existed.
    Deleted(Option<u64>),
    /// The request was skipped because an earlier request failed and the
    /// batch was submitted with `stop_on_failure`.
    Skipped,
}

impl Response {
    /// Whether the request "succeeded" in the sense used by
    /// `execute_batch(_, stop_on_failure = true)`: Gets/Puts/Deletes succeed
    /// when the key was found, Inserts when the key was actually inserted.
    pub fn succeeded(&self) -> bool {
        match self {
            Response::Value(v) => v.is_some(),
            Response::Updated(v) => v.is_some(),
            Response::Inserted(r) => matches!(r, Ok(o) if o.inserted()),
            Response::Deleted(v) => v.is_some(),
            Response::Skipped => false,
        }
    }
}

impl RawTable {
    /// Execute `requests` in order, writing one [`Response`] per request.
    ///
    /// Memory latencies of the requests are overlapped by prefetching every
    /// request's bin up front. If `stop_on_failure` is set, the first request
    /// that does not succeed (see [`Response::succeeded`]) terminates the
    /// batch and the remaining responses are [`Response::Skipped`] — the
    /// behaviour DLHT offers to clients such as lock managers (§3.3).
    pub fn execute_batch(&self, requests: &[Request], stop_on_failure: bool) -> Vec<Response> {
        let mut responses = Vec::with_capacity(requests.len());
        let guard = self.enter();
        // SAFETY: the guard keeps the entered index generation (and the chain
        // forward from it) alive.
        let idx = unsafe { &*guard.index_ptr() };
        // Prefetch sweep: one software prefetch per distinct request bin.
        for req in requests {
            idx.prefetch_bin(idx.bin_of(req.key()));
        }
        // Execute strictly in order. The guarded variants reuse this batch's
        // single enter/leave announcement, which is exactly how the paper
        // amortizes the index-GC notifications over a batch (§3.3).
        let start = guard.index_ptr();
        let mut stopped = false;
        for req in requests {
            if stopped {
                responses.push(Response::Skipped);
                continue;
            }
            let resp = match *req {
                Request::Get(k) => Response::Value(self.get_guarded(start, k)),
                Request::Put(k, v) => Response::Updated(self.put_guarded(start, k, v)),
                Request::Insert(k, v) => Response::Inserted(self.insert_guarded(
                    start,
                    k,
                    v,
                    crate::header::SlotState::Valid,
                )),
                Request::Delete(k) => Response::Deleted(self.delete_guarded(start, k)),
            };
            if stop_on_failure && !resp.succeeded() {
                responses.push(resp);
                stopped = true;
                continue;
            }
            responses.push(resp);
        }
        drop(guard);
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlhtConfig;

    fn table() -> RawTable {
        RawTable::with_config(DlhtConfig::new(256))
    }

    #[test]
    fn mixed_batch_respects_order() {
        let t = table();
        let reqs = vec![
            Request::Insert(1, 10),
            Request::Get(1),
            Request::Put(1, 11),
            Request::Get(1),
            Request::Delete(1),
            Request::Get(1),
        ];
        let resps = t.execute_batch(&reqs, false);
        assert_eq!(resps[1], Response::Value(Some(10)));
        assert_eq!(resps[2], Response::Updated(Some(10)));
        assert_eq!(resps[3], Response::Value(Some(11)));
        assert_eq!(resps[4], Response::Deleted(Some(11)));
        assert_eq!(resps[5], Response::Value(None));
    }

    #[test]
    fn stop_on_failure_skips_the_rest() {
        let t = table();
        t.insert(7, 70).unwrap();
        let reqs = vec![
            Request::Get(7),
            Request::Get(999), // miss -> failure
            Request::Insert(8, 80),
            Request::Delete(7),
        ];
        let resps = t.execute_batch(&reqs, true);
        assert_eq!(resps[0], Response::Value(Some(70)));
        assert_eq!(resps[1], Response::Value(None));
        assert_eq!(resps[2], Response::Skipped);
        assert_eq!(resps[3], Response::Skipped);
        // The skipped requests must not have executed.
        assert_eq!(t.get(8), None);
        assert_eq!(t.get(7), Some(70));
    }

    #[test]
    fn duplicate_insert_counts_as_failure_for_lock_managers() {
        let t = table();
        let reqs = vec![
            Request::Insert(1, 0),
            Request::Insert(1, 0), // lock already held -> failure
            Request::Insert(2, 0),
        ];
        let resps = t.execute_batch(&reqs, true);
        assert!(resps[0].succeeded());
        assert!(!resps[1].succeeded());
        assert_eq!(resps[2], Response::Skipped);
    }

    #[test]
    fn request_key_accessor() {
        assert_eq!(Request::Get(3).key(), 3);
        assert_eq!(Request::Put(4, 0).key(), 4);
        assert_eq!(Request::Insert(5, 0).key(), 5);
        assert_eq!(Request::Delete(6).key(), 6);
    }

    #[test]
    fn large_batch_with_prefetching_matches_sequential_results() {
        let t = table();
        for k in 0..128u64 {
            t.insert(k, k * 2).unwrap();
        }
        let reqs: Vec<Request> = (0..256u64).map(Request::Get).collect();
        let resps = t.execute_batch(&reqs, false);
        for k in 0..256u64 {
            let expected = if k < 128 { Some(k * 2) } else { None };
            assert_eq!(resps[k as usize], Response::Value(expected));
        }
    }
}
