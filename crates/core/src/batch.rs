//! Order-preserving request batching with software prefetching (§3.3).
//!
//! A batch is an array of requests of possibly different types. Execution
//! first sweeps the array issuing a prefetch for every request's bin, then
//! executes the requests **strictly in order** (unlike DRAMHiT, which may
//! reorder — a property §5.3.3 shows can deadlock a lock manager). The
//! enter/leave index-GC notifications are paid once per batch instead of once
//! per request.
//!
//! The submission surface is built from three pieces:
//!
//! * [`Request`] / [`Response`] — the operation vocabulary shared by every
//!   backend in the repository;
//! * [`Batch`] — a reusable buffer owning request **and** response storage,
//!   so steady-state batch execution performs zero heap allocations;
//! * [`BatchPolicy`] — what happens when a request in the batch fails.
//!
//! One-shot callers can use the slice convenience
//! [`crate::KvBackend::execute_batch`]; hot loops should hold a [`Batch`]
//! (or a [`crate::Pipeline`]) and re-fill it:
//!
//! ```
//! use dlht_core::{Batch, BatchPolicy, DlhtMap, Response};
//!
//! let map = DlhtMap::with_capacity(1024);
//! let mut batch = Batch::with_capacity(3);
//! for round in 0..10u64 {
//!     batch.clear(); // keeps the allocations
//!     batch.push_insert(round, round * 10);
//!     batch.push_get(round);
//!     batch.push_delete(round);
//!     map.execute(&mut batch, BatchPolicy::RunAll);
//!     assert_eq!(batch.responses()[1], Response::Value(Some(round * 10)));
//! }
//! ```

use crate::error::{DlhtError, InsertOutcome};
use crate::table::RawTable;

/// One request in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Look up a key.
    Get(u64),
    /// Update an existing key's value (Inlined mode).
    Put(u64, u64),
    /// Insert a new key-value pair.
    Insert(u64, u64),
    /// Delete a key.
    Delete(u64),
}

impl Request {
    /// The key this request targets.
    #[inline]
    pub fn key(&self) -> u64 {
        match *self {
            Request::Get(k) | Request::Put(k, _) | Request::Insert(k, _) | Request::Delete(k) => k,
        }
    }

    /// The value this request carries, if the operation has one (`Put` and
    /// `Insert`) — what a wire codec writes after the key.
    #[inline]
    pub fn value(&self) -> Option<u64> {
        match *self {
            Request::Put(_, v) | Request::Insert(_, v) => Some(v),
            Request::Get(_) | Request::Delete(_) => None,
        }
    }
}

/// The result of one request in a batch.
#[must_use = "a Response reports whether (and how) the request took effect; \
              inspect it or bind it to `_`"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Result of a `Get`: the value if present.
    Value(Option<u64>),
    /// Result of a `Put`: the previous value if the key existed.
    Updated(Option<u64>),
    /// Result of an `Insert`.
    Inserted(Result<InsertOutcome, DlhtError>),
    /// Result of a `Delete`: the removed value if the key existed.
    Deleted(Option<u64>),
    /// The request was skipped because an earlier request failed and the
    /// batch was submitted with [`BatchPolicy::StopOnFailure`].
    Skipped,
}

impl Response {
    /// Whether the request "succeeded" in the sense used by
    /// [`BatchPolicy::StopOnFailure`]: Gets/Puts/Deletes succeed when the key
    /// was found, Inserts when the key was actually inserted.
    pub fn succeeded(&self) -> bool {
        match self {
            Response::Value(v) => v.is_some(),
            Response::Updated(v) => v.is_some(),
            Response::Inserted(r) => matches!(r, Ok(o) if o.inserted()),
            Response::Deleted(v) => v.is_some(),
            Response::Skipped => false,
        }
    }

    /// Whether this slot was skipped by [`BatchPolicy::StopOnFailure`].
    ///
    /// Callers inspecting per-slot results should match on
    /// [`Response::Skipped`] explicitly rather than conflating "skipped" with
    /// "executed and failed" — a skipped request had **no effect** on the
    /// table.
    #[inline]
    pub fn is_skipped(&self) -> bool {
        matches!(self, Response::Skipped)
    }
}

/// What happens when a request in a batch does not succeed
/// (see [`Response::succeeded`]).
///
/// This replaces the historical bare `stop_on_failure: bool` argument that
/// leaked through every layer of the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchPolicy {
    /// Execute every request regardless of failures (the common case).
    #[default]
    RunAll,
    /// The first request that does not succeed terminates the batch; the
    /// remaining slots are filled with [`Response::Skipped`] and have no
    /// effect — the behaviour DLHT offers to clients such as lock managers
    /// (§3.3, §5.3.3).
    StopOnFailure,
    /// The caller does not depend on execution order: backends whose engine
    /// reorders requests (DRAMHiT-like) may do so freely. DLHT itself still
    /// executes in submission order — its no-reorder guarantee is
    /// unconditional (§5.3.3) — so on DLHT this behaves like
    /// [`BatchPolicy::RunAll`]. Responses always land in submission slots.
    Unordered,
}

impl BatchPolicy {
    /// Whether the first failing request terminates the batch.
    #[inline]
    pub fn stops_on_failure(self) -> bool {
        matches!(self, BatchPolicy::StopOnFailure)
    }

    /// Whether the backend is allowed (not required) to reorder execution.
    #[inline]
    pub fn allows_reordering(self) -> bool {
        matches!(self, BatchPolicy::Unordered)
    }
}

/// A reusable batch of requests that owns its response storage.
///
/// `Batch` is the repository's steady-state submission buffer: push requests,
/// hand the batch to [`crate::KvBackend::execute`] (or
/// [`crate::Session::execute`]), read [`Batch::responses`], then
/// [`Batch::clear`] and re-fill. Both internal `Vec`s retain their capacity
/// across `clear`, so a warm batch executes without touching the allocator —
/// unlike the PR-1 `execute_batch(&[Request], bool) -> Vec<Response>` shape,
/// which allocated a fresh response vector per call.
///
/// Response slot `i` always corresponds to request slot `i`, for every
/// backend (even the reordering DRAMHiT-like baseline writes results back in
/// submission order).
#[must_use = "a Batch does nothing until executed (KvBackend::execute / Session::execute)"]
#[derive(Debug, Default, Clone)]
pub struct Batch {
    requests: Vec<Request>,
    responses: Vec<Response>,
}

impl Batch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Create an empty batch with room for `capacity` requests (and their
    /// responses) before any reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Batch {
            requests: Vec::with_capacity(capacity),
            responses: Vec::with_capacity(capacity),
        }
    }

    /// Queue a request.
    #[inline]
    pub fn push(&mut self, request: Request) {
        self.requests.push(request);
    }

    /// Queue a `Get(key)`.
    #[inline]
    pub fn push_get(&mut self, key: u64) {
        self.push(Request::Get(key));
    }

    /// Queue a `Put(key, value)`.
    #[inline]
    pub fn push_put(&mut self, key: u64, value: u64) {
        self.push(Request::Put(key, value));
    }

    /// Queue an `Insert(key, value)`.
    #[inline]
    pub fn push_insert(&mut self, key: u64, value: u64) {
        self.push(Request::Insert(key, value));
    }

    /// Queue a `Delete(key)`.
    #[inline]
    pub fn push_delete(&mut self, key: u64) {
        self.push(Request::Delete(key));
    }

    /// Number of queued requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether no requests are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Request capacity before the next reallocation.
    pub fn capacity(&self) -> usize {
        self.requests.capacity()
    }

    /// Drop all queued requests and responses, **keeping** both allocations —
    /// the reuse entry point for steady-state execution.
    pub fn clear(&mut self) {
        self.requests.clear();
        self.responses.clear();
    }

    /// The queued requests, in submission order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The responses of the most recent execution, one per request in
    /// submission order. Empty until the batch has been executed.
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// Consume the batch and return the response storage (one-shot callers).
    pub fn into_responses(self) -> Vec<Response> {
        self.responses
    }

    /// Split the batch for an executor: clears (and pre-reserves) the
    /// response vector and returns `(requests, responses)`.
    ///
    /// **Executor contract** (for [`crate::KvBackend::execute`]
    /// implementations only): push exactly one [`Response`] per request, in
    /// submission-slot order. Regular callers never need this.
    pub fn begin_execution(&mut self) -> (&[Request], &mut Vec<Response>) {
        self.responses.clear();
        self.responses.reserve(self.requests.len());
        (&self.requests, &mut self.responses)
    }
}

impl From<&[Request]> for Batch {
    fn from(requests: &[Request]) -> Self {
        Batch {
            requests: requests.to_vec(),
            responses: Vec::with_capacity(requests.len()),
        }
    }
}

impl FromIterator<Request> for Batch {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Batch {
            requests: iter.into_iter().collect(),
            responses: Vec::new(),
        }
    }
}

impl Extend<Request> for Batch {
    fn extend<I: IntoIterator<Item = Request>>(&mut self, iter: I) {
        self.requests.extend(iter);
    }
}

impl RawTable {
    /// Execute the queued requests of `batch` in order, writing one
    /// [`Response`] per request into the batch's own response storage.
    ///
    /// Memory latencies of the requests are overlapped by prefetching every
    /// request's bin up front, and the enter/leave index-GC announcement is
    /// paid once for the whole batch (§3.3). A warm (reused) batch executes
    /// with zero heap allocations.
    pub fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        let guard = self.enter();
        self.execute_entered(guard.index_ptr(), batch, policy, true);
        drop(guard);
    }

    /// [`RawTable::execute`] without the up-front prefetch sweep, for callers
    /// (the [`crate::Pipeline`]) that already prefetched every request's bin
    /// at submit time — sweeping again here would add no latency-hiding
    /// distance.
    // HOT: per-batch path under Pipeline::flush — must not panic.
    pub fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        let guard = self.enter();
        self.execute_entered(guard.index_ptr(), batch, policy, false);
        drop(guard);
    }

    /// Batch execution body, starting from an already-announced index
    /// generation (shared by [`RawTable::execute`] and [`crate::Session`]).
    ///
    /// The caller must hold the `EnterGuard` that produced `start` for the
    /// whole call.
    pub(crate) fn execute_entered(
        &self,
        start: *mut crate::index::Index,
        batch: &mut Batch,
        policy: BatchPolicy,
        prefetch_sweep: bool,
    ) {
        // SAFETY: the caller's guard keeps the entered index generation (and
        // the chain forward from it) alive.
        let idx = unsafe { &*start };
        let (requests, responses) = batch.begin_execution();
        // Prefetch sweep: one software prefetch per request bin (skipped when
        // the caller prefetched at submit time).
        if prefetch_sweep {
            for req in requests {
                idx.prefetch_bin(idx.bin_of(req.key()));
            }
        }
        // Execute strictly in order — DLHT's no-reorder guarantee holds even
        // under `BatchPolicy::Unordered` (§5.3.3). The guarded variants reuse
        // the caller's single enter/leave announcement, which is exactly how
        // the paper amortizes the index-GC notifications over a batch (§3.3).
        let mut stopped = false;
        for req in requests {
            if stopped {
                responses.push(Response::Skipped);
                continue;
            }
            let resp = match *req {
                Request::Get(k) => Response::Value(self.get_guarded(start, k)),
                Request::Put(k, v) => Response::Updated(self.put_guarded(start, k, v)),
                Request::Insert(k, v) => Response::Inserted(self.insert_guarded(
                    start,
                    k,
                    v,
                    crate::header::SlotState::Valid,
                )),
                Request::Delete(k) => Response::Deleted(self.delete_guarded(start, k)),
            };
            if policy.stops_on_failure() && !resp.succeeded() {
                stopped = true;
            }
            responses.push(resp);
        }
    }

    /// One-shot convenience over [`RawTable::execute`]: builds a temporary
    /// [`Batch`] from `requests` and returns the responses. Allocates per
    /// call; hot loops should hold a reusable [`Batch`] instead.
    pub fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        let mut batch = Batch::from(requests);
        self.execute(&mut batch, policy);
        batch.into_responses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlhtConfig;

    fn table() -> RawTable {
        RawTable::with_config(DlhtConfig::new(256))
    }

    #[test]
    fn mixed_batch_respects_order() {
        let t = table();
        let reqs = vec![
            Request::Insert(1, 10),
            Request::Get(1),
            Request::Put(1, 11),
            Request::Get(1),
            Request::Delete(1),
            Request::Get(1),
        ];
        let resps = t.execute_batch(&reqs, BatchPolicy::RunAll);
        assert_eq!(resps[1], Response::Value(Some(10)));
        assert_eq!(resps[2], Response::Updated(Some(10)));
        assert_eq!(resps[3], Response::Value(Some(11)));
        assert_eq!(resps[4], Response::Deleted(Some(11)));
        assert_eq!(resps[5], Response::Value(None));
    }

    #[test]
    fn stop_on_failure_skips_the_rest() {
        let t = table();
        let _ = t.insert(7, 70).unwrap();
        let reqs = vec![
            Request::Get(7),
            Request::Get(999), // miss -> failure
            Request::Insert(8, 80),
            Request::Delete(7),
        ];
        let resps = t.execute_batch(&reqs, BatchPolicy::StopOnFailure);
        assert_eq!(resps[0], Response::Value(Some(70)));
        assert_eq!(resps[1], Response::Value(None));
        assert_eq!(resps[2], Response::Skipped);
        assert_eq!(resps[3], Response::Skipped);
        assert!(resps[2].is_skipped() && resps[3].is_skipped());
        // The skipped requests must not have executed.
        assert_eq!(t.get(8), None);
        assert_eq!(t.get(7), Some(70));
    }

    #[test]
    fn duplicate_insert_counts_as_failure_for_lock_managers() {
        let t = table();
        let reqs = vec![
            Request::Insert(1, 0),
            Request::Insert(1, 0), // lock already held -> failure
            Request::Insert(2, 0),
        ];
        let resps = t.execute_batch(&reqs, BatchPolicy::StopOnFailure);
        assert!(resps[0].succeeded());
        assert!(!resps[1].succeeded());
        assert_eq!(resps[2], Response::Skipped);
    }

    #[test]
    fn request_key_accessor() {
        assert_eq!(Request::Get(3).key(), 3);
        assert_eq!(Request::Put(4, 0).key(), 4);
        assert_eq!(Request::Insert(5, 0).key(), 5);
        assert_eq!(Request::Delete(6).key(), 6);
    }

    #[test]
    fn large_batch_with_prefetching_matches_sequential_results() {
        let t = table();
        for k in 0..128u64 {
            let _ = t.insert(k, k * 2).unwrap();
        }
        let reqs: Vec<Request> = (0..256u64).map(Request::Get).collect();
        let resps = t.execute_batch(&reqs, BatchPolicy::RunAll);
        for k in 0..256u64 {
            let expected = if k < 128 { Some(k * 2) } else { None };
            assert_eq!(resps[k as usize], Response::Value(expected));
        }
    }

    #[test]
    fn reused_batch_keeps_capacity_and_clears_responses() {
        let t = table();
        let mut batch = Batch::with_capacity(4);
        for round in 0..16u64 {
            batch.clear();
            batch.push_insert(round, round);
            batch.push_get(round);
            batch.push_delete(round);
            t.execute(&mut batch, BatchPolicy::RunAll);
            assert_eq!(batch.responses().len(), 3);
            assert_eq!(batch.responses()[1], Response::Value(Some(round)));
        }
        assert!(batch.capacity() >= 4);
        batch.clear();
        assert!(batch.is_empty());
        assert!(batch.responses().is_empty());
    }

    #[test]
    fn unordered_policy_still_executes_in_order_on_dlht() {
        let t = table();
        let mut batch: Batch = [
            Request::Insert(9, 90),
            Request::Get(9),
            Request::Delete(9),
            Request::Get(9),
        ]
        .into_iter()
        .collect();
        t.execute(&mut batch, BatchPolicy::Unordered);
        assert_eq!(batch.responses()[1], Response::Value(Some(90)));
        assert_eq!(batch.responses()[3], Response::Value(None));
    }

    #[test]
    fn batch_collectors_and_extend() {
        let mut b: Batch = (0..4u64).map(Request::Get).collect();
        assert_eq!(b.len(), 4);
        b.extend([Request::Delete(1)]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.requests()[4], Request::Delete(1));
        let from_slice = Batch::from(&[Request::Get(1)][..]);
        assert_eq!(from_slice.len(), 1);
    }
}
