//! Single-threaded, synchronization-overhead-free variant (§3.4.5).
//!
//! When a client opts into single-threaded use, DLHT removes the three
//! sources of thread-safety overhead: (1) lock-free algorithms become plain
//! loads/stores, (2) no concurrent-resize checks, and (3) no enter/leave
//! notifications. The paper keeps the same bin/bucket structure and simply
//! downgrades the atomics; this module does the same with plain integers.

use crate::bucket::is_reserved_key;
use crate::config::DlhtConfig;
use crate::error::{DlhtError, InsertOutcome};
use crate::prefetch::prefetch_read;

const PRIMARY_SLOTS: usize = 3;
const LINK_SLOTS: usize = 4;
const MAX_SLOTS: usize = 15;
const NO_LINK: u32 = u32::MAX;

/// One bin: a primary bucket worth of slots plus up to three chained link
/// buckets, mirroring the concurrent layout without any atomics.
#[derive(Clone)]
struct StBin {
    /// Bitmask of occupied slots (bit i = slot i used), 15 bits.
    used: u16,
    keys: [u64; PRIMARY_SLOTS],
    vals: [u64; PRIMARY_SLOTS],
    link_first: u32,
    link_pair: u32,
}

impl StBin {
    fn new() -> Self {
        StBin {
            used: 0,
            keys: [0; PRIMARY_SLOTS],
            vals: [0; PRIMARY_SLOTS],
            link_first: NO_LINK,
            link_pair: NO_LINK,
        }
    }
}

#[derive(Clone)]
struct StLink {
    keys: [u64; LINK_SLOTS],
    vals: [u64; LINK_SLOTS],
}

impl StLink {
    fn new() -> Self {
        StLink {
            keys: [0; LINK_SLOTS],
            vals: [0; LINK_SLOTS],
        }
    }
}

/// Single-threaded DLHT map (Inlined mode).
///
/// Functionally equivalent to [`crate::DlhtMap`] for one thread, minus all
/// synchronization. Resizes are immediate (no transfer protocol needed).
pub struct SingleThreadMap {
    bins: Vec<StBin>,
    links: Vec<StLink>,
    links_used: usize,
    config: DlhtConfig,
    len: usize,
    resizes: u64,
}

impl SingleThreadMap {
    /// Create a map from a configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        let num_bins = config.num_bins.max(2);
        let num_links = config.link_buckets_for(num_bins);
        SingleThreadMap {
            bins: vec![StBin::new(); num_bins],
            links: vec![StLink::new(); num_links],
            links_used: 0,
            config,
            len: 0,
            resizes: 0,
        }
    }

    /// Create a map sized for about `keys` keys.
    pub fn with_capacity(keys: usize) -> Self {
        Self::with_config(DlhtConfig::for_capacity(keys))
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of resizes performed.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    #[inline]
    fn bin_of(&self, key: u64) -> usize {
        (self.config.hash.hash_u64(key) % self.bins.len() as u64) as usize
    }

    #[inline]
    fn slot_key(&self, bin: &StBin, slot: usize) -> u64 {
        if slot < PRIMARY_SLOTS {
            bin.keys[slot]
        } else if slot < PRIMARY_SLOTS + LINK_SLOTS {
            self.links[bin.link_first as usize].keys[slot - PRIMARY_SLOTS]
        } else {
            let rel = slot - PRIMARY_SLOTS - LINK_SLOTS;
            self.links[bin.link_pair as usize + rel / LINK_SLOTS].keys[rel % LINK_SLOTS]
        }
    }

    #[inline]
    fn slot_val(&self, bin: &StBin, slot: usize) -> u64 {
        if slot < PRIMARY_SLOTS {
            bin.vals[slot]
        } else if slot < PRIMARY_SLOTS + LINK_SLOTS {
            self.links[bin.link_first as usize].vals[slot - PRIMARY_SLOTS]
        } else {
            let rel = slot - PRIMARY_SLOTS - LINK_SLOTS;
            self.links[bin.link_pair as usize + rel / LINK_SLOTS].vals[rel % LINK_SLOTS]
        }
    }

    fn set_slot(&mut self, bin_no: usize, slot: usize, key: u64, val: u64) {
        let bin = &self.bins[bin_no];
        if slot < PRIMARY_SLOTS {
            let bin = &mut self.bins[bin_no];
            bin.keys[slot] = key;
            bin.vals[slot] = val;
        } else if slot < PRIMARY_SLOTS + LINK_SLOTS {
            let l = bin.link_first as usize;
            self.links[l].keys[slot - PRIMARY_SLOTS] = key;
            self.links[l].vals[slot - PRIMARY_SLOTS] = val;
        } else {
            let rel = slot - PRIMARY_SLOTS - LINK_SLOTS;
            let l = bin.link_pair as usize + rel / LINK_SLOTS;
            self.links[l].keys[rel % LINK_SLOTS] = key;
            self.links[l].vals[rel % LINK_SLOTS] = val;
        }
    }

    /// Slot index of `key` in its bin, if present.
    fn find(&self, bin_no: usize, key: u64) -> Option<usize> {
        let bin = &self.bins[bin_no];
        for slot in 0..MAX_SLOTS {
            if bin.used & (1 << slot) == 0 {
                continue;
            }
            if self.slot_key(bin, slot) == key {
                return Some(slot);
            }
        }
        None
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let bin_no = self.bin_of(key);
        let slot = self.find(bin_no, key)?;
        Some(self.slot_val(&self.bins[bin_no], slot))
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Update an existing key; returns the previous value.
    pub fn put(&mut self, key: u64, value: u64) -> Option<u64> {
        let bin_no = self.bin_of(key);
        let slot = self.find(bin_no, key)?;
        let old = self.slot_val(&self.bins[bin_no], slot);
        self.set_slot(bin_no, slot, key, value);
        Some(old)
    }

    /// Delete `key`; the slot is immediately reusable.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        let bin_no = self.bin_of(key);
        let slot = self.find(bin_no, key)?;
        let old = self.slot_val(&self.bins[bin_no], slot);
        self.bins[bin_no].used &= !(1 << slot);
        self.len -= 1;
        Some(old)
    }

    /// Insert `key -> value`; fails if the key exists.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if is_reserved_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        loop {
            let bin_no = self.bin_of(key);
            if let Some(slot) = self.find(bin_no, key) {
                return Ok(InsertOutcome::AlreadyExists(
                    self.slot_val(&self.bins[bin_no], slot),
                ));
            }
            match self.try_place(bin_no, key, value) {
                Ok(()) => {
                    self.len += 1;
                    return Ok(InsertOutcome::Inserted);
                }
                Err(()) => {
                    if !self.config.resizing {
                        return Err(DlhtError::TableFull);
                    }
                    self.grow();
                }
            }
        }
    }

    /// Find a free slot in the bin (chaining link buckets as needed) and fill
    /// it. `Err(())` means the bin or the link pool is exhausted.
    fn try_place(&mut self, bin_no: usize, key: u64, value: u64) -> Result<(), ()> {
        for slot in 0..MAX_SLOTS {
            if self.bins[bin_no].used & (1 << slot) != 0 {
                continue;
            }
            // Chain link buckets on demand.
            if (PRIMARY_SLOTS..PRIMARY_SLOTS + LINK_SLOTS).contains(&slot) {
                if self.bins[bin_no].link_first == NO_LINK {
                    if self.links_used >= self.links.len() {
                        return Err(());
                    }
                    self.bins[bin_no].link_first = self.links_used as u32;
                    self.links_used += 1;
                }
            } else if slot >= PRIMARY_SLOTS + LINK_SLOTS && self.bins[bin_no].link_pair == NO_LINK {
                if self.links_used + 2 > self.links.len() {
                    return Err(());
                }
                self.bins[bin_no].link_pair = self.links_used as u32;
                self.links_used += 2;
            }
            self.set_slot(bin_no, slot, key, value);
            self.bins[bin_no].used |= 1 << slot;
            return Ok(());
        }
        Err(())
    }

    /// Grow the index by the paper's growth schedule and reinsert every pair.
    fn grow(&mut self) {
        let factor = DlhtConfig::growth_factor(self.bins.len());
        let new_bins = self.bins.len() * factor;
        let mut bigger = SingleThreadMap::with_config(self.config.clone().with_bins(new_bins));
        self.for_each(|k, v| {
            let _ = bigger
                .insert(k, v)
                .expect("reinsertion into a larger index cannot fail");
        });
        bigger.resizes = self.resizes + 1;
        *self = bigger;
    }

    /// Visit every live pair.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for bin in &self.bins {
            for slot in 0..MAX_SLOTS {
                if bin.used & (1 << slot) != 0 {
                    f(self.slot_key(bin, slot), self.slot_val(bin, slot));
                }
            }
        }
    }

    /// Execute the queued requests of `batch` in order with a prefetch
    /// sweep, mirroring the concurrent batch API (§3.3) without any
    /// synchronization cost. The batch's response storage is reused across
    /// calls — see [`crate::Batch`].
    pub fn execute(&mut self, batch: &mut crate::batch::Batch, policy: crate::batch::BatchPolicy) {
        use crate::batch::{Request, Response};
        // Split the borrow up front: the request slice stays untouched while
        // the operations below mutate the bins.
        let (requests, out) = batch.begin_execution();
        for req in requests {
            let bin_no = self.bin_of(req.key());
            prefetch_read(&self.bins[bin_no] as *const StBin);
        }
        let mut stopped = false;
        for req in requests {
            if stopped {
                out.push(Response::Skipped);
                continue;
            }
            let resp = match *req {
                Request::Get(k) => Response::Value(self.get(k)),
                Request::Put(k, v) => Response::Updated(self.put(k, v)),
                Request::Insert(k, v) => Response::Inserted(self.insert(k, v)),
                Request::Delete(k) => Response::Deleted(self.delete(k)),
            };
            if policy.stops_on_failure() && !resp.succeeded() {
                stopped = true;
            }
            out.push(resp);
        }
    }

    /// One-shot convenience over [`SingleThreadMap::execute`] (allocates per
    /// call).
    pub fn execute_batch(
        &mut self,
        requests: &[crate::batch::Request],
        policy: crate::batch::BatchPolicy,
    ) -> Vec<crate::batch::Response> {
        let mut batch = crate::batch::Batch::from(requests);
        self.execute(&mut batch, policy);
        batch.into_responses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_hash::HashKind;

    #[test]
    fn basic_operations() {
        let mut m = SingleThreadMap::with_capacity(100);
        assert_eq!(m.get(1), None);
        assert!(m.insert(1, 10).unwrap().inserted());
        assert!(!m.insert(1, 11).unwrap().inserted());
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.put(1, 12), Some(10));
        assert_eq!(m.delete(1), Some(12));
        assert_eq!(m.delete(1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_transparently() {
        let mut m = SingleThreadMap::with_config(DlhtConfig::new(4).with_hash(HashKind::WyHash));
        for k in 0..5_000u64 {
            assert!(m.insert(k, k * 2).unwrap().inserted());
        }
        assert!(m.resizes() > 0);
        assert_eq!(m.len(), 5_000);
        for k in 0..5_000u64 {
            assert_eq!(m.get(k), Some(k * 2));
        }
    }

    #[test]
    fn matches_std_hashmap_on_random_ops() {
        use std::collections::HashMap;
        let mut m = SingleThreadMap::with_config(DlhtConfig::new(8).with_hash(HashKind::WyHash));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let key = rng() % 500;
            match rng() % 4 {
                0 => {
                    let inserted = m.insert(key, key + 1).unwrap().inserted();
                    let model_inserted = !model.contains_key(&key);
                    if model_inserted {
                        model.insert(key, key + 1);
                    }
                    assert_eq!(inserted, model_inserted);
                }
                1 => assert_eq!(m.delete(key), model.remove(&key)),
                2 => assert_eq!(m.get(key), model.get(&key).copied()),
                _ => {
                    let new_v = key + 77;
                    let expected = model.get(&key).copied();
                    assert_eq!(m.put(key, new_v), expected);
                    if expected.is_some() {
                        model.insert(key, new_v);
                    }
                }
            }
        }
        assert_eq!(m.len(), model.len());
    }

    #[test]
    fn batch_api_without_synchronization() {
        use crate::batch::{BatchPolicy, Request, Response};
        let mut m = SingleThreadMap::with_capacity(64);
        let resps = m.execute_batch(
            &[
                Request::Insert(1, 1),
                Request::Get(1),
                Request::Get(2),
                Request::Insert(2, 2),
            ],
            BatchPolicy::StopOnFailure,
        );
        assert_eq!(resps[1], Response::Value(Some(1)));
        assert_eq!(resps[2], Response::Value(None));
        assert_eq!(resps[3], Response::Skipped);
    }

    #[test]
    fn reusable_batch_on_the_single_thread_map() {
        use crate::batch::{Batch, BatchPolicy, Response};
        let mut m = SingleThreadMap::with_capacity(64);
        let mut batch = Batch::with_capacity(3);
        for round in 0..10u64 {
            batch.clear();
            batch.push_insert(round, round);
            batch.push_get(round);
            batch.push_delete(round);
            m.execute(&mut batch, BatchPolicy::RunAll);
            assert_eq!(batch.responses()[1], Response::Value(Some(round)));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn table_full_without_resizing() {
        let mut m = SingleThreadMap::with_config(
            DlhtConfig::new(2).with_link_ratio(1).with_resizing(false),
        );
        let mut err = None;
        for k in 0..200u64 {
            if let Err(e) = m.insert(k * 2, k) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(DlhtError::TableFull));
    }
}
