//! The index: an array of bins plus the shared link-bucket array and the
//! per-index resize bookkeeping (§3.1, §3.2.5).

use crate::bucket::{LinkBucket, LinkMeta, PrimaryBucket, NO_LINK};
use crate::config::DlhtConfig;
use crate::header::BinHeader;
use crate::prefetch::prefetch_read;
use dlht_hash::HashKind;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicUsize, Ordering};

/// One generation of the table: bins, link buckets, and resize state.
///
/// Indexes are linked into a forward chain through `Index::next` by the
/// resize protocol; the chain is only ever extended at the tail and freed from
/// the head (oldest first), which is what makes announcing the entered index
/// sufficient to protect a whole traversal (see `registry.rs`).
pub struct Index {
    bins: Box<[PrimaryBucket]>,
    links: Box<[LinkBucket]>,
    /// Bump cursor into `links`; link buckets are never individually freed.
    link_cursor: AtomicU32,
    num_bins: usize,
    hash: HashKind,

    /// The index objects are chained oldest -> newest during resizes.
    next: AtomicPtr<Index>,
    /// Set by the thread that wins the right to allocate the next index.
    resize_claimed: AtomicBool,
    /// Next chunk of bins to be claimed by a transfer helper.
    chunk_cursor: AtomicUsize,
    /// Chunks fully transferred so far.
    chunks_done: AtomicUsize,
    num_chunks: usize,
    chunk_bins: usize,
    /// Monotonically increasing generation number (0 for the initial index).
    generation: u32,
}

impl Index {
    /// Allocate a zeroed index with `num_bins` bins.
    pub fn new(num_bins: usize, config: &DlhtConfig, generation: u32) -> Self {
        let num_bins = num_bins.max(2);
        let num_links = config.link_buckets_for(num_bins);
        let chunk_bins = config.chunk_bins.max(1);
        let bins: Box<[PrimaryBucket]> = (0..num_bins).map(|_| PrimaryBucket::new()).collect();
        let links: Box<[LinkBucket]> = (0..num_links).map(|_| LinkBucket::new()).collect();
        Index {
            bins,
            links,
            link_cursor: AtomicU32::new(0),
            num_bins,
            hash: config.hash,
            next: AtomicPtr::new(std::ptr::null_mut()),
            resize_claimed: AtomicBool::new(false),
            chunk_cursor: AtomicUsize::new(0),
            chunks_done: AtomicUsize::new(0),
            num_chunks: num_bins.div_ceil(chunk_bins),
            chunk_bins,
            generation,
        }
    }

    /// Number of bins.
    #[inline]
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Number of link buckets in the pool.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of link buckets already handed out.
    #[inline]
    pub fn links_used(&self) -> usize {
        (self.link_cursor.load(Ordering::Relaxed) as usize).min(self.links.len())
    }

    /// Generation number of this index (0 = initial).
    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Hash function in use.
    #[inline]
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// Map a key to its bin.
    #[inline]
    pub fn bin_of(&self, key: u64) -> usize {
        (self.hash.hash_u64(key) % self.num_bins as u64) as usize
    }

    /// The primary bucket of bin `b`.
    #[inline]
    pub fn bin(&self, b: usize) -> &PrimaryBucket {
        &self.bins[b]
    }

    /// Link bucket `idx`.
    #[inline]
    pub fn link(&self, idx: u32) -> &LinkBucket {
        &self.links[idx as usize]
    }

    /// Issue a software prefetch for the primary bucket of bin `b` (§3.3).
    #[inline]
    pub fn prefetch_bin(&self, b: usize) {
        prefetch_read(&self.bins[b] as *const PrimaryBucket);
    }

    /// Allocate `n` consecutive link buckets (n is 1 or 2). Returns the index
    /// of the first, or `None` when the pool is exhausted — which is a resize
    /// trigger (§3.2.2 "Chaining buckets").
    pub fn alloc_link_buckets(&self, n: u32) -> Option<u32> {
        debug_assert!(n == 1 || n == 2);
        loop {
            let cur = self.link_cursor.load(Ordering::Relaxed);
            let end = cur.checked_add(n)?;
            if end as usize > self.links.len() {
                return None;
            }
            if self
                .link_cursor
                .compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(cur);
            }
        }
    }

    /// Resolve bin-relative slot index `slot` to its [`crate::atomic128::AtomicPair`],
    /// given the bin's current link meta. Returns `None` if the needed link
    /// bucket is not chained (the slot is unreachable).
    #[inline]
    pub fn slot_pair<'a>(
        &'a self,
        bin: &'a PrimaryBucket,
        meta: LinkMeta,
        slot: usize,
    ) -> Option<&'a crate::atomic128::AtomicPair> {
        use crate::bucket::{slot_location, SlotLocation};
        match slot_location(slot) {
            SlotLocation::Primary(i) => Some(&bin.slots[i]),
            SlotLocation::FirstLink(i) => {
                let l = meta.first();
                if l == NO_LINK {
                    None
                } else {
                    Some(&self.links[l as usize].slots[i])
                }
            }
            SlotLocation::PairLink { bucket, idx } => {
                let l = meta.pair();
                if l == NO_LINK {
                    None
                } else {
                    Some(&self.links[l as usize + bucket].slots[idx])
                }
            }
        }
    }

    // ----- resize bookkeeping -------------------------------------------------

    /// Pointer to the next (newer) index, if a resize has been initiated.
    // ESCAPE: the `&self` borrow is itself only reachable through a guard
    // (indexes are handed out via `EnterGuard::index_ptr`), and the returned
    // next-index pointer stays valid for the same guard scope: the old and
    // new index are retired together, after every session has migrated.
    #[inline]
    pub fn next_ptr(&self) -> *mut Index {
        self.next.load(Ordering::Acquire)
    }

    /// Publish the next index (called once, by the resize winner).
    pub(crate) fn publish_next(&self, next: *mut Index) {
        self.next.store(next, Ordering::Release);
    }

    /// Try to become the thread that allocates the next index.
    pub(crate) fn claim_resize(&self) -> bool {
        self.resize_claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Whether a resize of this index has been initiated.
    #[inline]
    pub fn resize_in_progress(&self) -> bool {
        self.resize_claimed.load(Ordering::Acquire)
    }

    /// Claim the next untransferred chunk of bins; returns its bin range.
    pub(crate) fn claim_chunk(&self) -> Option<std::ops::Range<usize>> {
        loop {
            let c = self.chunk_cursor.load(Ordering::Relaxed);
            if c >= self.num_chunks {
                return None;
            }
            if self
                .chunk_cursor
                .compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let start = c * self.chunk_bins;
                let end = ((c + 1) * self.chunk_bins).min(self.num_bins);
                return Some(start..end);
            }
        }
    }

    /// Record that one chunk has been fully transferred.
    pub(crate) fn chunk_transferred(&self) {
        self.chunks_done.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether every bin of this index has been transferred to the next one.
    #[inline]
    pub fn fully_transferred(&self) -> bool {
        self.chunks_done.load(Ordering::Acquire) >= self.num_chunks
    }

    /// Total number of transfer chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Chunks recorded as fully transferred so far (for the invariant sweep).
    #[inline]
    pub fn chunks_done(&self) -> usize {
        self.chunks_done.load(Ordering::Acquire)
    }

    // ----- statistics ----------------------------------------------------------

    /// Number of Valid or Shadow slots (linear scan; intended for stats, not
    /// the hot path).
    pub fn occupied_slots(&self) -> usize {
        self.bins
            .iter()
            .map(|b| BinHeader(b.header.load(Ordering::Acquire)).occupied_slots())
            .sum()
    }

    /// Total slots addressable right now: 3 per bin plus 4 per handed-out link
    /// bucket.
    pub fn addressable_slots(&self) -> usize {
        self.num_bins * crate::header::PRIMARY_SLOTS + self.links_used() * crate::header::LINK_SLOTS
    }

    /// Total slots if every link bucket were chained.
    pub fn max_slots(&self) -> usize {
        self.num_bins * crate::header::PRIMARY_SLOTS + self.links.len() * crate::header::LINK_SLOTS
    }

    /// Approximate memory footprint of the index structures in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bins.len() * std::mem::size_of::<PrimaryBucket>()
            + self.links.len() * std::mem::size_of::<LinkBucket>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DlhtConfig {
        DlhtConfig::new(16).with_link_ratio(8)
    }

    #[test]
    fn construction_and_sizes() {
        let idx = Index::new(16, &small_config(), 0);
        assert_eq!(idx.num_bins(), 16);
        assert_eq!(idx.num_links(), 2);
        assert_eq!(idx.max_slots(), 16 * 3 + 2 * 4);
        assert_eq!(idx.addressable_slots(), 48);
        assert_eq!(idx.occupied_slots(), 0);
        assert_eq!(idx.memory_bytes(), 16 * 64 + 2 * 64);
        assert_eq!(idx.generation(), 0);
    }

    #[test]
    fn bin_mapping_respects_modulo() {
        let idx = Index::new(16, &small_config(), 0);
        assert_eq!(idx.bin_of(0), 0);
        assert_eq!(idx.bin_of(5), 5);
        assert_eq!(idx.bin_of(16), 0);
        assert_eq!(idx.bin_of(31), 15);
    }

    #[test]
    fn link_allocation_is_bounded() {
        let idx = Index::new(16, &small_config(), 0);
        assert_eq!(idx.alloc_link_buckets(1), Some(0));
        assert_eq!(idx.alloc_link_buckets(1), Some(1));
        assert_eq!(idx.alloc_link_buckets(1), None, "pool exhausted");
        assert_eq!(idx.links_used(), 2);
    }

    #[test]
    fn pair_allocation_never_splits_across_capacity() {
        let cfg = DlhtConfig::new(24).with_link_ratio(8); // 3 link buckets
        let idx = Index::new(24, &cfg, 0);
        assert_eq!(idx.alloc_link_buckets(2), Some(0));
        // Only one bucket left; a pair request must fail, a single succeeds.
        assert_eq!(idx.alloc_link_buckets(2), None);
        assert_eq!(idx.alloc_link_buckets(1), Some(2));
    }

    #[test]
    fn chunk_claiming_partitions_all_bins() {
        let cfg = DlhtConfig::new(100).with_chunk_bins(16);
        let idx = Index::new(100, &cfg, 0);
        assert_eq!(idx.num_chunks(), 7);
        let mut covered = [false; 100];
        while let Some(range) = idx.claim_chunk() {
            for b in range {
                assert!(!covered[b], "bin {b} claimed twice");
                covered[b] = true;
            }
            idx.chunk_transferred();
        }
        assert!(covered.iter().all(|&c| c));
        assert!(idx.fully_transferred());
    }

    #[test]
    fn resize_claim_is_exclusive() {
        let idx = Index::new(8, &small_config(), 0);
        assert!(!idx.resize_in_progress());
        assert!(idx.claim_resize());
        assert!(!idx.claim_resize());
        assert!(idx.resize_in_progress());
    }

    #[test]
    fn slot_pair_resolution_needs_links() {
        let cfg = DlhtConfig::new(8).with_link_ratio(1); // 8 link buckets
        let idx = Index::new(8, &cfg, 0);
        let bin = idx.bin(0);
        let empty = LinkMeta::EMPTY;
        assert!(idx.slot_pair(bin, empty, 0).is_some());
        assert!(idx.slot_pair(bin, empty, 2).is_some());
        assert!(idx.slot_pair(bin, empty, 3).is_none());
        assert!(idx.slot_pair(bin, empty, 14).is_none());

        let chained = empty.with_first(0).with_pair(1);
        assert!(idx.slot_pair(bin, chained, 6).is_some());
        assert!(idx.slot_pair(bin, chained, 7).is_some());
        assert!(idx.slot_pair(bin, chained, 14).is_some());
    }
}
