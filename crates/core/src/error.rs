//! Error and result types for table operations.

use std::fmt;

/// Errors surfaced by the public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlhtError {
    /// The key collides with one of the two reserved transfer keys used by the
    /// non-blocking resize (§3.2.5). `u64::MAX` and `u64::MAX - 1` cannot be
    /// stored.
    ReservedKey,
    /// The bin (and its link-bucket budget) is full and resizing is disabled
    /// in the configuration, so the insert cannot be accommodated.
    TableFull,
    /// A key longer than the configured maximum was supplied.
    KeyTooLong,
    /// A namespace id outside the 12-bit range (0..4096) was supplied.
    InvalidNamespace,
    /// The operation is not available in the current mode (e.g. `put` in
    /// Allocator mode, which exposes the pointer API instead — §3.2.4).
    UnsupportedInMode,
}

impl fmt::Display for DlhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlhtError::ReservedKey => {
                write!(
                    f,
                    "keys u64::MAX and u64::MAX-1 are reserved as transfer keys"
                )
            }
            DlhtError::TableFull => write!(f, "bin full and resizing is disabled"),
            DlhtError::KeyTooLong => write!(f, "key exceeds the configured maximum length"),
            DlhtError::InvalidNamespace => write!(f, "namespace id must be < 4096"),
            DlhtError::UnsupportedInMode => {
                write!(f, "operation not supported in the current table mode")
            }
        }
    }
}

impl std::error::Error for DlhtError {}

/// Outcome of an insert.
#[must_use = "an insert may not have taken effect (AlreadyExists); \
              check `inserted()` or bind to `_`"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was inserted.
    Inserted,
    /// The key already existed; the existing value word is returned.
    AlreadyExists(u64),
}

impl InsertOutcome {
    /// Whether the insert took effect.
    pub fn inserted(self) -> bool {
        matches!(self, InsertOutcome::Inserted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DlhtError::ReservedKey.to_string().contains("reserved"));
        assert!(DlhtError::TableFull.to_string().contains("resizing"));
        assert!(DlhtError::InvalidNamespace.to_string().contains("4096"));
    }

    #[test]
    fn insert_outcome_helpers() {
        assert!(InsertOutcome::Inserted.inserted());
        assert!(!InsertOutcome::AlreadyExists(7).inserted());
    }
}
