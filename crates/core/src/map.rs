//! The Inlined mode (§3.1, mode 1): 8-byte keys and 8-byte values stored
//! directly in the index slots. This is DLHT's hot configuration — a pointer
//! cache for a query engine, a pointer-to-pointer map for a storage engine —
//! and the one all the headline numbers (Figures 3–8) are measured on.

use crate::batch::{Batch, BatchPolicy, Request, Response};
use crate::config::DlhtConfig;
use crate::error::{DlhtError, InsertOutcome};
use crate::session::Session;
use crate::stats::TableStats;
use crate::table::RawTable;

/// Concurrent hash map with inlined 8-byte keys and values.
///
/// All operations are thread-safe and practically non-blocking; see the crate
/// docs for the full feature description.
///
/// ```
/// use dlht_core::DlhtMap;
///
/// let map = DlhtMap::with_capacity(1024);
/// map.insert(1, 100).unwrap();
/// assert_eq!(map.get(1), Some(100));
/// map.put(1, 200);
/// assert_eq!(map.delete(1), Some(200));
/// ```
pub struct DlhtMap {
    table: RawTable,
}

impl DlhtMap {
    /// Create a map from an explicit configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        DlhtMap {
            table: RawTable::with_config(config),
        }
    }

    /// Create a map sized to hold about `keys` keys before its first resize.
    pub fn with_capacity(keys: usize) -> Self {
        Self::with_config(DlhtConfig::for_capacity(keys))
    }

    /// Create a map with `num_bins` bins and default configuration.
    pub fn new(num_bins: usize) -> Self {
        Self::with_config(DlhtConfig::new(num_bins))
    }

    /// The active configuration.
    pub fn config(&self) -> &DlhtConfig {
        self.table.config()
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        self.table.get(key)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.table.contains(key)
    }

    /// Insert `key -> value`; fails (without overwriting) if the key exists.
    #[inline]
    pub fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.table.insert(key, value)
    }

    /// Update the value of an existing key; returns the previous value.
    #[inline]
    pub fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.table.put(key, value)
    }

    /// Insert if absent, otherwise update — a convenience composition of
    /// [`DlhtMap::insert`] and [`DlhtMap::put`]. Returns the previous value on
    /// update, `Ok(None)` on a fresh insert.
    ///
    /// Insert failures (reserved key, table full with resizing disabled) are
    /// propagated; earlier versions silently reported them as "no previous
    /// value", which made a full table indistinguishable from a successful
    /// first insert.
    pub fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        loop {
            match self.table.insert(key, value)? {
                o if o.inserted() => return Ok(None),
                _ => {
                    // Key existed; try to overwrite. A concurrent delete may
                    // remove it between the two calls — retry the insert then.
                    if let Some(prev) = self.table.put(key, value) {
                        return Ok(Some(prev));
                    }
                }
            }
        }
    }

    /// Delete `key`, returning its value. The slot is immediately reusable.
    #[inline]
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.table.delete(key)
    }

    /// Shadow-insert (transactional lock) — see §3.2.2 "Transactions".
    #[inline]
    pub fn insert_shadow(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.table.insert_shadow(key, value)
    }

    /// Commit (`true`) or abort (`false`) a prior shadow insert.
    #[inline]
    pub fn commit_shadow(&self, key: u64, commit: bool) -> bool {
        self.table.commit_shadow(key, commit)
    }

    /// Execute the queued requests of `batch` in order, overlapping their
    /// memory latencies with software prefetching (§3.3). The batch's own
    /// response storage is reused, so a warm batch executes with zero heap
    /// allocations — see [`Batch`].
    #[inline]
    pub fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.table.execute(batch, policy)
    }

    /// [`DlhtMap::execute`] without the up-front prefetch sweep, for callers
    /// that already prefetched each request's bin (see
    /// [`RawTable::execute_prefetched`]).
    #[inline]
    pub fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.table.execute_prefetched(batch, policy)
    }

    /// One-shot convenience over [`DlhtMap::execute`]: builds a temporary
    /// [`Batch`] from `requests` and returns the responses (allocates per
    /// call).
    #[inline]
    pub fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        self.table.execute_batch(requests, policy)
    }

    /// Open a per-thread [`Session`] with a cached registry slot — the entry
    /// point for reusable batches and the bounded prefetch
    /// [`crate::Pipeline`].
    pub fn session(&self) -> Session<'_> {
        Session::new(&self.table)
    }

    /// Prefetch the bin `key` hashes to (coroutine interoperation, §3.3).
    #[inline]
    pub fn prefetch(&self, key: u64) {
        self.table.prefetch(key)
    }

    /// Visit every pair under a weakly-consistent snapshot (§3.4.4).
    pub fn for_each(&self, f: impl FnMut(u64, u64)) {
        self.table.for_each(f)
    }

    /// Iterate over a weakly-consistent snapshot of the map.
    pub fn iter(&self) -> crate::iter::Iter<'_> {
        crate::iter::Iter::new(&self.table)
    }

    /// Number of live keys (linear scan).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Structural statistics (occupancy, link usage, resizes).
    pub fn stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Number of resizes since creation.
    pub fn resizes(&self) -> u64 {
        self.table.resizes()
    }

    /// Free retired index generations that are no longer referenced.
    pub fn collect_garbage(&self) {
        self.table.collect_retired()
    }

    /// Borrow the underlying raw table (advanced / benchmarking use).
    pub fn raw(&self) -> &RawTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_api() {
        let m = DlhtMap::with_capacity(100);
        assert!(m.is_empty());
        let _ = m.insert(1, 10).unwrap();
        let _ = m.insert(2, 20).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.put(2, 21), Some(20));
        assert_eq!(m.delete(1), Some(10));
        assert!(!m.contains(1));
        assert!(m.contains(2));
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let m = DlhtMap::with_capacity(16);
        assert_eq!(m.upsert(5, 1).unwrap(), None);
        assert_eq!(m.upsert(5, 2).unwrap(), Some(1));
        assert_eq!(m.get(5), Some(2));
    }

    #[test]
    fn upsert_propagates_insert_errors() {
        let m = DlhtMap::with_capacity(16);
        assert_eq!(m.upsert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        // A tiny fixed-size table eventually reports TableFull.
        let full = DlhtMap::with_config(crate::DlhtConfig::new(2).with_resizing(false));
        let mut saw_full = false;
        for k in 0..1_000u64 {
            match full.upsert(k, k) {
                Ok(_) => {}
                Err(DlhtError::TableFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_full);
    }

    #[test]
    fn iterator_yields_all_pairs() {
        let m = DlhtMap::with_capacity(64);
        for k in 0..40u64 {
            let _ = m.insert(k, k * k).unwrap();
        }
        let mut items: Vec<_> = m.iter().collect();
        items.sort_unstable();
        assert_eq!(items.len(), 40);
        for (i, (k, v)) in items.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn concurrent_upserts_from_many_threads() {
        let m = std::sync::Arc::new(DlhtMap::with_capacity(10_000));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for k in 0..1_000u64 {
                        m.upsert(k, t).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert!(m.get(k).unwrap() < 4);
        }
    }
}
