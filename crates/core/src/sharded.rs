//! Shard-partitioned front over N independent [`RawTable`]s — the scaling
//! axis *above* the single-table index.
//!
//! DLHT's own index already scales across threads (§5.1), but a single table
//! still shares one link-bucket pool, one resize, and one thread registry.
//! [`ShardedTable`] partitions the key space over a power-of-two number of
//! independent [`RawTable`] shards so that:
//!
//! * **Resizes are shard-local.** A hot shard grows (non-blocking, §3.2.5)
//!   without the sibling shards participating in — or even noticing — the
//!   transfer. Cold shards keep their smaller, cache-friendlier indexes.
//! * **Contention is partitioned.** Registry announcements, link-bucket
//!   allocation, and retire/GC bookkeeping are all per shard.
//! * **The operations API is unchanged.** `ShardedTable` implements the full
//!   [`crate::KvBackend`] contract — including the batch entry points and the
//!   prefetch hooks a [`Pipeline`] drives — so every workload, benchmark, and
//!   example drives it interchangeably with a single table.
//!
//! ## Routing
//!
//! A key's shard is selected from the **high bits** of a finalizing mix of
//! its configured hash ([`dlht_hash::mix64`]), while each shard's bin index
//! keeps using the *unmixed* hash modulo the shard's bin count — exactly what
//! a single `RawTable` does. The two selections draw from independent parts
//! of the hash, so sharding leaves per-shard bin indexing undisturbed, and a
//! key's shard never changes: shard count is fixed at construction, so
//! routing is stable across any number of per-shard resizes.
//!
//! ## Batch semantics
//!
//! [`ShardedTable::execute`] splits a batch into per-shard runs:
//!
//! * Under [`BatchPolicy::RunAll`] / [`BatchPolicy::StopOnFailure`] requests
//!   execute strictly in submission order (runs interleave exactly as
//!   submitted), and a failure under `StopOnFailure` skips every later
//!   request **across all shards**.
//! * Under [`BatchPolicy::Unordered`] the runs execute shard-by-shard —
//!   cross-shard reordering that batches each shard's memory traffic —
//!   while requests *within* one shard keep their relative order and every
//!   response still lands in its submission slot.
//!
//! ```
//! use dlht_core::{Batch, BatchPolicy, KvBackend, Response, ShardedTable};
//!
//! let table = ShardedTable::with_capacity(4, 10_000);
//! table.insert(7, 700).unwrap();
//!
//! let mut batch = Batch::with_capacity(2);
//! batch.push_get(7);
//! batch.push_put(7, 701);
//! table.execute(&mut batch, BatchPolicy::RunAll);
//! assert_eq!(batch.responses()[0], Response::Value(Some(700)));
//! assert_eq!(table.shard_stats().len(), 4);
//! ```

use crate::batch::{Batch, BatchPolicy, Request, Response};
use crate::config::DlhtConfig;
use crate::error::{DlhtError, InsertOutcome};
use crate::header::SlotState;
use crate::pipeline::{BatchExecutor, Pipeline};
use crate::session::Session;
use crate::stats::TableStats;
use crate::table::{EnterGuard, RawTable};
use dlht_hash::mix64;
use std::cell::RefCell;

/// Upper bound on the shard count (sanity cap, far above any useful fan-out).
pub const MAX_SHARDS: usize = 1 << 12;

thread_local! {
    /// Per-request shard indexes of the batch currently executing on this
    /// thread, so routing (hash + mix) is computed once per request instead
    /// of once per sweep/pass — and without a per-batch allocation once warm.
    static ROUTE_SCRATCH: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
}

/// A hashtable partitioned over independent [`RawTable`] shards (module docs
/// above for the design).
///
/// All operations take `&self` and are thread-safe. Shard count is rounded up
/// to a power of two and fixed for the table's lifetime.
pub struct ShardedTable {
    shards: Box<[RawTable]>,
    /// `log2(shards.len())`; routing takes this many *high* bits of the mixed
    /// hash, so 0 bits (one shard) routes everything to shard 0.
    shard_bits: u32,
    config: DlhtConfig,
}

impl ShardedTable {
    /// Create a table of `shards` shards (rounded up to a power of two,
    /// clamped to `1..=`[`MAX_SHARDS`]) whose **combined** initial bin budget
    /// is `config.num_bins` — each shard starts with `num_bins / shards` bins
    /// (at least 2) and all other knobs of `config`.
    pub fn with_config(shards: usize, config: DlhtConfig) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let shard_bits = shards.trailing_zeros();
        let per_shard = DlhtConfig {
            num_bins: (config.num_bins / shards).max(2),
            ..config.clone()
        };
        ShardedTable {
            shards: (0..shards)
                .map(|_| RawTable::with_config(per_shard.clone()))
                .collect(),
            shard_bits,
            config,
        }
    }

    /// Create a table of `shards` shards sized to hold about `keys` pairs in
    /// total before any shard's first resize.
    pub fn with_capacity(shards: usize, keys: usize) -> Self {
        Self::with_config(shards, DlhtConfig::for_capacity(keys))
    }

    /// Create a table of `shards` shards with `num_bins` total bins and
    /// default configuration.
    pub fn new(shards: usize, num_bins: usize) -> Self {
        Self::with_config(shards, DlhtConfig::new(num_bins))
    }

    /// The configuration the table was built from (shard count excluded; the
    /// per-shard bin budget is `num_bins / num_shards`).
    pub fn config(&self) -> &DlhtConfig {
        &self.config
    }

    /// Number of shards (a power of two).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to. Stable for the table's lifetime — resizes
    /// never move a key across shards.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        // High bits of a finalizing mix of the configured hash: independent
        // of the `hash % bins` index each shard computes from the same key.
        (mix64(self.config.hash.hash_u64(key)) >> (64 - self.shard_bits)) as usize
    }

    /// Borrow shard `i` (stats, targeted tests, advanced use).
    pub fn shard(&self, i: usize) -> &RawTable {
        &self.shards[i]
    }

    /// Iterate over the shards in routing order.
    pub fn shards(&self) -> impl Iterator<Item = &RawTable> {
        self.shards.iter()
    }

    #[inline]
    fn route(&self, key: u64) -> &RawTable {
        &self.shards[self.shard_of(key)]
    }

    // ------------------------------------------------------------------
    // Single-request operations (route + delegate)
    // ------------------------------------------------------------------

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        self.route(key).get(key)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.route(key).contains(key)
    }

    /// Insert `key -> value`; fails (without overwriting) if the key exists.
    #[inline]
    pub fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.route(key).insert(key, value)
    }

    /// Update an existing key's value; returns the previous value.
    #[inline]
    pub fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.route(key).put(key, value)
    }

    /// Delete `key`, returning its value. The slot is immediately reusable.
    #[inline]
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.route(key).delete(key)
    }

    /// Insert if absent, otherwise update; returns the previous value on
    /// update and propagates insert errors (same contract as
    /// [`crate::DlhtMap::upsert`]).
    pub fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        let shard = self.route(key);
        loop {
            match shard.insert(key, value)? {
                o if o.inserted() => return Ok(None),
                _ => {
                    if let Some(prev) = shard.put(key, value) {
                        return Ok(Some(prev));
                    }
                }
            }
        }
    }

    /// Shadow-insert (transactional lock, §3.2.2) on the key's shard.
    #[inline]
    pub fn insert_shadow(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.route(key).insert_shadow(key, value)
    }

    /// Commit (`true`) or abort (`false`) a prior shadow insert.
    #[inline]
    pub fn commit_shadow(&self, key: u64, commit: bool) -> bool {
        self.route(key).commit_shadow(key, commit)
    }

    /// Issue a software prefetch for the bin `key` hashes to in its shard.
    #[inline]
    pub fn prefetch(&self, key: u64) {
        self.route(key).prefetch(key)
    }

    // ------------------------------------------------------------------
    // Batch execution (per-shard runs; see module docs)
    // ------------------------------------------------------------------

    /// Execute the queued requests of `batch` (with the up-front prefetch
    /// sweep), writing one [`Response`] per request into the batch's own
    /// response storage — the sharded counterpart of [`RawTable::execute`].
    /// Each shard's enter/leave announcement is paid once per batch.
    pub fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        if self.shards.len() == 1 {
            return self.shards[0].execute(batch, policy);
        }
        let guards: Vec<EnterGuard<'_>> = self.shards.iter().map(|s| s.enter()).collect();
        self.execute_with_guards(&guards, batch, policy, true);
    }

    /// [`ShardedTable::execute`] without the up-front prefetch sweep, for
    /// callers (the [`Pipeline`]) that already prefetched every request's bin
    /// at submit time.
    pub fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        if self.shards.len() == 1 {
            return self.shards[0].execute_prefetched(batch, policy);
        }
        let guards: Vec<EnterGuard<'_>> = self.shards.iter().map(|s| s.enter()).collect();
        self.execute_with_guards(&guards, batch, policy, false);
    }

    /// One-shot convenience over [`ShardedTable::execute`] (allocates per
    /// call; hot loops should hold a reusable [`Batch`]).
    pub fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        let mut batch = Batch::from(requests);
        self.execute(&mut batch, policy);
        batch.into_responses()
    }

    /// Execute one request on shard `s`, starting from that shard's pinned
    /// index generation.
    ///
    /// SAFETY contract: `start` must come from a live [`EnterGuard`] on shard
    /// `s` held by the caller for the whole call.
    fn exec_one(&self, s: usize, start: *mut crate::index::Index, req: Request) -> Response {
        let shard = &self.shards[s];
        match req {
            Request::Get(k) => Response::Value(shard.get_guarded(start, k)),
            Request::Put(k, v) => Response::Updated(shard.put_guarded(start, k, v)),
            Request::Insert(k, v) => {
                Response::Inserted(shard.insert_guarded(start, k, v, SlotState::Valid))
            }
            Request::Delete(k) => Response::Deleted(shard.delete_guarded(start, k)),
        }
    }

    /// Batch execution body over already-entered shards: `guards[s]` must be
    /// a live guard on shard `s` (one per shard, held by the caller for the
    /// whole call). Shared by [`ShardedTable::execute`] and
    /// [`ShardedSession`], which differ only in how the guards were obtained.
    pub(crate) fn execute_with_guards(
        &self,
        guards: &[EnterGuard<'_>],
        batch: &mut Batch,
        policy: BatchPolicy,
        prefetch_sweep: bool,
    ) {
        debug_assert_eq!(guards.len(), self.shards.len());
        ROUTE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut routes) => {
                self.execute_routed(guards, batch, policy, prefetch_sweep, &mut routes)
            }
            // Re-entrant execution on the same thread (a guard-protected
            // callback executing another batch) falls back to a local buffer.
            Err(_) => self.execute_routed(guards, batch, policy, prefetch_sweep, &mut Vec::new()),
        })
    }

    fn execute_routed(
        &self,
        guards: &[EnterGuard<'_>],
        batch: &mut Batch,
        policy: BatchPolicy,
        prefetch_sweep: bool,
        routes: &mut Vec<u16>,
    ) {
        let (requests, responses) = batch.begin_execution();
        // Route every request once; the sweep and both execution paths below
        // reuse the result instead of re-hashing per pass.
        routes.clear();
        routes.extend(requests.iter().map(|r| self.shard_of(r.key()) as u16));
        if prefetch_sweep {
            for (req, &s) in requests.iter().zip(routes.iter()) {
                // SAFETY: guards[s] pins shard s's entered index generation.
                let idx = unsafe { &*guards[s as usize].index_ptr() };
                idx.prefetch_bin(idx.bin_of(req.key()));
            }
        }
        if policy.allows_reordering() {
            // Cross-shard reordering: run shard-by-shard so each shard's
            // memory traffic batches together; within one shard submission
            // order is kept, and responses scatter back to submission slots.
            // `Unordered` never stops on failure, so no skip handling here.
            responses.resize(requests.len(), Response::Skipped);
            for (s, guard) in guards.iter().enumerate() {
                let start = guard.index_ptr();
                for (i, req) in requests.iter().enumerate() {
                    if routes[i] as usize == s {
                        responses[i] = self.exec_one(s, start, *req);
                    }
                }
            }
        } else {
            // Submission order across shards; a StopOnFailure failure skips
            // every later request regardless of which shard it routes to.
            let mut stopped = false;
            for (req, &s) in requests.iter().zip(routes.iter()) {
                if stopped {
                    responses.push(Response::Skipped);
                    continue;
                }
                let s = s as usize;
                let resp = self.exec_one(s, guards[s].index_ptr(), *req);
                if policy.stops_on_failure() && !resp.succeeded() {
                    stopped = true;
                }
                responses.push(resp);
            }
        }
    }

    /// Open a per-thread [`ShardedSession`] with one cached registry slot per
    /// shard — the entry point for reusable batches and the bounded prefetch
    /// [`Pipeline`] over a sharded table.
    pub fn session(&self) -> ShardedSession<'_> {
        ShardedSession::new(self)
    }

    // ------------------------------------------------------------------
    // Whole-table scans and statistics (aggregate across shards)
    // ------------------------------------------------------------------

    /// Visit every live pair across all shards (weakly consistent snapshot).
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for shard in self.shards.iter() {
            shard.for_each(&mut f);
        }
    }

    /// Number of live keys across all shards (linear scan).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total resizes across all shards since creation. Shards resize
    /// independently — see [`ShardedTable::shard_stats`] for the breakdown.
    pub fn resizes(&self) -> u64 {
        self.shards.iter().map(|s| s.resizes()).sum()
    }

    /// Aggregated structural statistics: sums across shards, with
    /// `occupancy` recomputed from the summed slot counts and `generation`
    /// reporting the **highest** shard generation (shards resize
    /// independently, so generations diverge on skewed load).
    pub fn stats(&self) -> TableStats {
        let mut agg = TableStats::default();
        for shard in self.shards.iter() {
            let s = shard.stats();
            agg.bins += s.bins;
            agg.link_buckets += s.link_buckets;
            agg.links_used += s.links_used;
            agg.occupied_slots += s.occupied_slots;
            agg.addressable_slots += s.addressable_slots;
            agg.max_slots += s.max_slots;
            agg.resizes += s.resizes;
            agg.generation = agg.generation.max(s.generation);
            agg.index_bytes += s.index_bytes;
        }
        agg.occupancy = if agg.max_slots == 0 {
            0.0
        } else {
            agg.occupied_slots as f64 / agg.max_slots as f64
        };
        agg
    }

    /// Per-shard statistics, in routing order — the view that makes
    /// independent shard resizes observable (a hot shard's `resizes` /
    /// `generation` advance while its siblings' stay put).
    pub fn shard_stats(&self) -> Vec<TableStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Free retired index generations on every shard.
    pub fn collect_retired(&self) {
        for shard in self.shards.iter() {
            shard.collect_retired();
        }
    }

    /// Retired-but-not-yet-freed index generations summed across shards.
    pub fn retired_indexes(&self) -> usize {
        self.shards.iter().map(|s| s.retired_indexes()).sum()
    }

    /// Run [`RawTable::check_invariants`] on every shard, labelling failures
    /// with the shard index. Quiescent-point use only, like the per-shard
    /// sweep.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

/// A per-thread handle over a [`ShardedTable`] with one pre-claimed registry
/// slot **per shard**, so batch execution pays each shard's enter/leave
/// announcement through a cached slot instead of a thread-local lookup.
///
/// Like [`Session`], a `ShardedSession` is deliberately not `Send`/`Sync`:
/// the cached slots belong to the creating thread. It is the
/// [`BatchExecutor`] a [`Pipeline`] drives over a sharded table.
pub struct ShardedSession<'t> {
    table: &'t ShardedTable,
    sessions: Box<[Session<'t>]>,
    /// Reused guard storage for batch execution: cleared (announcements
    /// dropped) after every batch, capacity kept — so a warm session
    /// executes batches without touching the allocator.
    guards: RefCell<Vec<EnterGuard<'t>>>,
}

impl<'t> ShardedSession<'t> {
    pub(crate) fn new(table: &'t ShardedTable) -> Self {
        ShardedSession {
            table,
            sessions: table.shards.iter().map(Session::new).collect(),
            guards: RefCell::new(Vec::with_capacity(table.num_shards())),
        }
    }

    /// Enter every shard through the cached slots, run `batch`, and release
    /// the announcements, reusing the guard buffer across calls.
    fn run_entered(&self, batch: &mut Batch, policy: BatchPolicy, prefetch_sweep: bool) {
        let mut guards = self.guards.borrow_mut();
        guards.extend(self.sessions.iter().map(|s| s.enter()));
        self.table
            .execute_with_guards(&guards, batch, policy, prefetch_sweep);
        guards.clear();
    }

    /// The table this session operates on.
    pub fn table(&self) -> &'t ShardedTable {
        self.table
    }

    #[inline]
    fn session_for(&self, key: u64) -> &Session<'t> {
        &self.sessions[self.table.shard_of(key)]
    }

    /// Look up `key` through the shard-local cached slot.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.session_for(key).get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.session_for(key).contains(key)
    }

    /// Insert `key -> value`; fails (without overwriting) if the key exists.
    pub fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.session_for(key).insert(key, value)
    }

    /// Update an existing key's value; returns the previous value.
    pub fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.session_for(key).put(key, value)
    }

    /// Delete `key`, returning its value if it was present.
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.session_for(key).delete(key)
    }

    /// Issue a software prefetch for the bin `key` hashes to in its shard.
    pub fn prefetch(&self, key: u64) {
        self.session_for(key).prefetch(key)
    }

    /// Execute `batch` with the prefetch sweep — same per-shard run
    /// semantics as [`ShardedTable::execute`], but every shard is entered
    /// through this session's cached slots.
    pub fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.run_entered(batch, policy, true);
    }

    /// [`ShardedSession::execute`] without the up-front prefetch sweep (the
    /// pipeline's flush path).
    pub fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.run_entered(batch, policy, false);
    }

    /// Open a bounded prefetch [`Pipeline`] of `depth` in-flight requests
    /// submitting through this session's shard-local slots.
    pub fn pipeline(&self, depth: usize) -> Pipeline<'_, Self> {
        Pipeline::new(self, depth)
    }
}

impl BatchExecutor for ShardedSession<'_> {
    fn issue_prefetch(&self, key: u64) {
        ShardedSession::prefetch(self, key);
    }

    fn run(&self, batch: &mut Batch, policy: BatchPolicy) {
        ShardedSession::execute(self, batch, policy);
    }

    fn run_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        ShardedSession::execute_prefetched(self, batch, policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_hash::HashKind;

    fn small(shards: usize) -> ShardedTable {
        ShardedTable::with_config(
            shards,
            DlhtConfig::new(64)
                .with_hash(HashKind::WyHash)
                .with_chunk_bins(4),
        )
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedTable::with_capacity(1, 64).num_shards(), 1);
        assert_eq!(ShardedTable::with_capacity(3, 64).num_shards(), 4);
        assert_eq!(ShardedTable::with_capacity(8, 64).num_shards(), 8);
        assert_eq!(ShardedTable::with_capacity(0, 64).num_shards(), 1);
    }

    #[test]
    fn routing_covers_every_shard() {
        let t = small(8);
        let mut seen = [false; 8];
        for k in 0..1_000u64 {
            let s = t.shard_of(k);
            assert!(s < 8);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 keys must touch all 8 shards");
    }

    #[test]
    fn basic_ops_roundtrip_across_shards() {
        let t = small(4);
        for k in 0..200u64 {
            assert!(t.insert(k, k * 3).unwrap().inserted());
        }
        assert_eq!(t.len(), 200);
        for k in 0..200u64 {
            assert_eq!(t.get(k), Some(k * 3));
            assert_eq!(t.put(k, k), Some(k * 3));
        }
        assert_eq!(t.upsert(1_000, 1).unwrap(), None);
        assert_eq!(t.upsert(1_000, 2).unwrap(), Some(1));
        for k in 0..200u64 {
            assert_eq!(t.delete(k), Some(k));
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.delete(1_000), Some(2));
        assert!(t.is_empty());
    }

    #[test]
    fn reserved_keys_are_rejected_on_every_shard_route() {
        let t = small(4);
        assert_eq!(t.insert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        assert_eq!(t.insert(u64::MAX - 1, 1), Err(DlhtError::ReservedKey));
        assert_eq!(t.upsert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        assert_eq!(t.get(u64::MAX), None);
        assert_eq!(t.delete(u64::MAX), None);
        assert_eq!(t.put(u64::MAX, 1), None);
    }

    #[test]
    fn shadow_inserts_route_to_the_owning_shard() {
        let t = small(4);
        assert!(t.insert_shadow(5, 50).unwrap().inserted());
        assert_eq!(t.get(5), None);
        assert!(!t.insert(5, 51).unwrap().inserted());
        assert!(t.commit_shadow(5, true));
        assert_eq!(t.get(5), Some(50));
        assert!(t.insert_shadow(6, 60).unwrap().inserted());
        assert!(t.commit_shadow(6, false));
        assert_eq!(t.get(6), None);
    }

    #[test]
    fn for_each_and_stats_aggregate() {
        let t = small(4);
        for k in 0..300u64 {
            let _ = t.insert(k, k + 1).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        t.for_each(|k, v| {
            seen.insert(k, v);
        });
        assert_eq!(seen.len(), 300);
        let agg = t.stats();
        assert_eq!(agg.occupied_slots, 300);
        let per: usize = t.shard_stats().iter().map(|s| s.occupied_slots).sum();
        assert_eq!(per, 300);
        assert_eq!(
            agg.bins,
            t.shard_stats().iter().map(|s| s.bins).sum::<usize>()
        );
        assert!(agg.occupancy > 0.0 && agg.occupancy <= 1.0);
    }

    #[test]
    fn sharded_session_and_pipeline_roundtrip() {
        let t = small(4);
        let session = t.session();
        for k in 0..64u64 {
            let _ = session.insert(k, k + 7).unwrap();
        }
        let mut batch = Batch::with_capacity(8);
        for k in 0..8u64 {
            batch.push_get(k);
        }
        session.execute(&mut batch, BatchPolicy::RunAll);
        for (k, r) in batch.responses().iter().enumerate() {
            assert_eq!(*r, Response::Value(Some(k as u64 + 7)));
        }

        let mut pipe = session.pipeline(8);
        let mut got = Vec::new();
        for k in 0..64u64 {
            if let Some(r) = pipe.submit(Request::Get(k)) {
                got.push(r);
            }
        }
        pipe.drain_into(&mut got);
        assert_eq!(got.len(), 64);
        for (k, r) in got.iter().enumerate() {
            assert_eq!(*r, Response::Value(Some(k as u64 + 7)));
        }
    }

    #[test]
    fn drop_frees_all_shards_after_resizes() {
        let t = ShardedTable::with_config(
            2,
            DlhtConfig::new(4)
                .with_hash(HashKind::WyHash)
                .with_chunk_bins(2),
        );
        for k in 0..3_000u64 {
            let _ = t.insert(k, k).unwrap();
        }
        assert!(t.resizes() > 0);
        t.collect_retired();
        assert_eq!(t.retired_indexes(), 0);
        t.check_invariants()
            .expect("structural sweep after resizes");
        drop(t); // Drop walks every shard's chain
    }
}
