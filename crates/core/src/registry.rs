//! Thread registry used to garbage-collect retired indexes after a resize
//! (§3.2.5, "GC old index"):
//!
//! > "we mandate that threads notify each other when finishing a request. We
//! > implement this with a per-thread pointer. When a thread enters DLHT
//! > (e.g., on a Get), we set the pointer to the current index. Just before
//! > the thread leaves DLHT, it sets the pointer to null."
//!
//! The registry is a fixed array of cache-padded announcement slots. A thread
//! lazily claims a slot the first time it touches a given table and caches
//! the slot id in a thread-local, so the per-request overhead is exactly the
//! two stores the paper describes (amortized over a batch by the batch API).
//!
//! Announcing the *entered* index protects the whole forward chain of `next`
//! pointers, because retired indexes are freed strictly oldest-first (see
//! `table.rs`): an index can only be freed once every index before it has
//! been freed, and an index with a live announcement is never freed.

use dlht_util::CachePadded;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Maximum number of threads that can concurrently operate on one table.
pub const MAX_THREADS: usize = 1024;

/// Unique id per registry instance, used to key the thread-local slot cache.
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (registry id -> claimed slot) cache for the current thread.
    static SLOT_CACHE: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

struct Slot {
    /// Pointer to the index the thread is currently operating on (as usize),
    /// or 0 when the thread is outside the table.
    announced: AtomicUsize,
    /// Whether this slot has been claimed by some thread.
    claimed: AtomicBool,
}

/// Per-table thread registry.
pub struct ThreadRegistry {
    id: u64,
    slots: Box<[CachePadded<Slot>]>,
}

impl ThreadRegistry {
    /// Create a registry with capacity for [`MAX_THREADS`] threads.
    pub fn new() -> Self {
        Self::with_capacity(MAX_THREADS)
    }

    /// Create a registry with capacity for `capacity` threads.
    pub fn with_capacity(capacity: usize) -> Self {
        ThreadRegistry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            slots: (0..capacity)
                .map(|_| {
                    CachePadded::new(Slot {
                        announced: AtomicUsize::new(0),
                        claimed: AtomicBool::new(false),
                    })
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Claim (or look up the already-claimed) slot for the calling thread.
    ///
    /// # Panics
    /// Panics if more than `capacity` distinct threads touch the table.
    pub fn slot_for_current_thread(&self) -> usize {
        if let Some(slot) = SLOT_CACHE.with(|c| {
            c.borrow()
                .iter()
                .find(|(id, _)| *id == self.id)
                .map(|(_, s)| *s)
        }) {
            return slot;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                SLOT_CACHE.with(|c| c.borrow_mut().push((self.id, i)));
                return i;
            }
        }
        panic!(
            "ThreadRegistry capacity ({}) exceeded: too many threads touched this table",
            self.slots.len()
        );
    }

    /// Announce that the calling thread's `slot` is operating on `index_ptr`.
    ///
    /// Uses `SeqCst` so the announcement is totally ordered against the
    /// resizer's scan (hazard-pointer style).
    #[inline]
    pub fn announce(&self, slot: usize, index_ptr: usize) {
        // ORDERING: SeqCst — the hazard-pointer publish must be totally
        // ordered against the retirer's `anyone_announces` scan; with anything
        // weaker the store and the scan could both miss each other and a live
        // index could be freed.
        self.slots[slot]
            .announced
            .store(index_ptr, Ordering::SeqCst); // ORDERING: see above
    }

    /// Read back what `slot` currently announces (used by validation loops).
    #[inline]
    pub fn announced(&self, slot: usize) -> usize {
        // ORDERING: SeqCst — reads the hazard slot on the same total order as
        // `announce`/`clear` so validation loops can't see a stale value.
        self.slots[slot].announced.load(Ordering::SeqCst)
    }

    /// Clear the announcement for `slot` (thread leaving the table).
    #[inline]
    pub fn clear(&self, slot: usize) {
        // ORDERING: SeqCst — un-publishing participates in the same total
        // order as `announce`, so a retirer never frees while we still hold.
        self.slots[slot].announced.store(0, Ordering::SeqCst);
    }

    /// Whether any thread currently announces `index_ptr`.
    pub fn anyone_announces(&self, index_ptr: usize) -> bool {
        self.slots.iter().any(|s| {
            // ORDERING: SeqCst on `announced` — the retirement scan must be
            // totally ordered against every `announce` (hazard-pointer
            // handshake); see `announce` for the failure mode.
            s.claimed.load(Ordering::Acquire) && s.announced.load(Ordering::SeqCst) == index_ptr
        })
    }

    /// Number of claimed slots (for stats/tests).
    pub fn claimed_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.claimed.load(Ordering::Acquire))
            .count()
    }
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_stable_per_thread() {
        let reg = ThreadRegistry::with_capacity(8);
        let a = reg.slot_for_current_thread();
        let b = reg.slot_for_current_thread();
        assert_eq!(a, b);
        assert_eq!(reg.claimed_slots(), 1);
    }

    #[test]
    fn distinct_registries_get_distinct_cache_entries() {
        let r1 = ThreadRegistry::with_capacity(4);
        let r2 = ThreadRegistry::with_capacity(4);
        let s1 = r1.slot_for_current_thread();
        let s2 = r2.slot_for_current_thread();
        // Both may be slot 0 in their own registry; announcing in one must not
        // leak into the other.
        r1.announce(s1, 0x1000);
        assert!(r1.anyone_announces(0x1000));
        assert!(!r2.anyone_announces(0x1000));
        r2.announce(s2, 0x2000);
        r1.clear(s1);
        assert!(!r1.anyone_announces(0x1000));
        assert!(r2.anyone_announces(0x2000));
    }

    #[test]
    fn announcements_from_multiple_threads_are_visible() {
        let reg = ThreadRegistry::with_capacity(16);
        std::thread::scope(|s| {
            for t in 1..=4usize {
                let reg = &reg;
                s.spawn(move || {
                    let slot = reg.slot_for_current_thread();
                    reg.announce(slot, t * 0x100);
                    assert!(reg.anyone_announces(t * 0x100));
                    reg.clear(slot);
                });
            }
        });
        assert_eq!(reg.claimed_slots(), 4);
        for t in 1..=4usize {
            assert!(!reg.anyone_announces(t * 0x100));
        }
    }

    #[test]
    fn exceeding_capacity_panics_in_the_extra_thread() {
        let reg = ThreadRegistry::with_capacity(1);
        // First claim from this thread succeeds...
        let _ = reg.slot_for_current_thread();
        // ...a second thread must observe a panic when claiming.
        let overflowed = std::thread::scope(|s| {
            s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    reg.slot_for_current_thread()
                }))
                .is_err()
            })
            .join()
            .unwrap()
        });
        assert!(overflowed);
    }
}
