//! Table configuration, mirroring the knobs of Table 2 in the paper.

use dlht_hash::HashKind;

/// Ratio of bins to link buckets (`bins / link_ratio` link buckets are
/// allocated). The paper's default is 8 (§3.1), and §5.1.5 also evaluates 5.
pub const DEFAULT_LINK_RATIO: usize = 8;

/// Bins transferred per resize work unit (§3.2.5 uses 16 Ki-bin chunks).
pub const DEFAULT_CHUNK_BINS: usize = 16 * 1024;

/// Configuration for a DLHT instance.
///
/// Construct with [`DlhtConfig::new`] / [`DlhtConfig::default`] and chain the
/// builder-style setters. Features that cost performance are off by default,
/// matching the paper's "clients only pay for the features they need" policy
/// (§3.4).
#[derive(Debug, Clone)]
pub struct DlhtConfig {
    /// Number of bins in the initial index (rounded up to at least 2).
    pub num_bins: usize,
    /// `num_bins / link_ratio` link buckets are allocated per index.
    pub link_ratio: usize,
    /// Hash function mapping keys to bins.
    pub hash: HashKind,
    /// Whether the index may grow. When disabled, a full bin makes inserts
    /// fail with [`crate::DlhtError::TableFull`], and the per-request
    /// enter/leave notifications are skipped (§5.2.5 "Resizing" bar).
    pub resizing: bool,
    /// Bins per transfer chunk during a resize.
    pub chunk_bins: usize,
    /// Namespace tagging of Allocator-mode values (§3.4.2).
    pub namespaces: bool,
    /// Store per-pair key/value sizes so every pair may have a different size
    /// (§3.4.1).
    pub variable_size: bool,
    /// Maximum number of threads that may concurrently use the table.
    pub max_threads: usize,
}

impl Default for DlhtConfig {
    fn default() -> Self {
        DlhtConfig {
            num_bins: 1 << 16,
            link_ratio: DEFAULT_LINK_RATIO,
            hash: HashKind::Modulo,
            resizing: true,
            chunk_bins: DEFAULT_CHUNK_BINS,
            namespaces: false,
            variable_size: false,
            max_threads: crate::registry::MAX_THREADS,
        }
    }
}

impl DlhtConfig {
    /// Default configuration with `num_bins` bins.
    pub fn new(num_bins: usize) -> Self {
        DlhtConfig {
            num_bins,
            ..Default::default()
        }
    }

    /// Configuration sized to comfortably hold `keys` keys without resizing
    /// (targets ~55% slot occupancy, below the 61-72% the paper reports as the
    /// resize trigger point with wyhash).
    pub fn for_capacity(keys: usize) -> Self {
        // slots ≈ bins * (3 + 4/link_ratio·…); conservatively count the
        // primary slots plus the shared link budget.
        let link_ratio = DEFAULT_LINK_RATIO;
        let slots_per_bin = 3.0 + (4.0 / link_ratio as f64);
        let bins = ((keys as f64) / (slots_per_bin * 0.55)).ceil() as usize;
        DlhtConfig::new(bins.max(2))
    }

    /// Set the number of bins.
    pub fn with_bins(mut self, num_bins: usize) -> Self {
        self.num_bins = num_bins;
        self
    }

    /// Set the bins-to-link-buckets ratio.
    pub fn with_link_ratio(mut self, ratio: usize) -> Self {
        self.link_ratio = ratio.max(1);
        self
    }

    /// Select the hash function.
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = hash;
        self
    }

    /// Enable or disable resizing.
    pub fn with_resizing(mut self, enabled: bool) -> Self {
        self.resizing = enabled;
        self
    }

    /// Set the resize chunk size in bins.
    pub fn with_chunk_bins(mut self, bins: usize) -> Self {
        self.chunk_bins = bins.max(1);
        self
    }

    /// Enable namespaces (Allocator mode).
    pub fn with_namespaces(mut self, enabled: bool) -> Self {
        self.namespaces = enabled;
        self
    }

    /// Enable variable-size keys/values (Allocator mode).
    pub fn with_variable_size(mut self, enabled: bool) -> Self {
        self.variable_size = enabled;
        self
    }

    /// Cap the number of registered threads.
    pub fn with_max_threads(mut self, threads: usize) -> Self {
        self.max_threads = threads.max(1);
        self
    }

    /// Number of link buckets for an index with `bins` bins under this config.
    pub fn link_buckets_for(&self, bins: usize) -> usize {
        (bins / self.link_ratio).max(1)
    }

    /// Growth factor the paper prescribes for an index of `bins` bins
    /// (§3.2.5: 8× below 4 Ki bins, 4× below 64 Mi, 2× above).
    pub fn growth_factor(bins: usize) -> usize {
        if bins < 4 * 1024 {
            8
        } else if bins < 64 * 1024 * 1024 {
            4
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DlhtConfig::default();
        assert_eq!(c.link_ratio, 8);
        assert_eq!(c.chunk_bins, 16 * 1024);
        assert!(c.resizing);
        assert!(!c.namespaces);
        assert!(!c.variable_size);
        assert_eq!(c.hash, HashKind::Modulo);
    }

    #[test]
    fn growth_schedule() {
        assert_eq!(DlhtConfig::growth_factor(1024), 8);
        assert_eq!(DlhtConfig::growth_factor(4 * 1024), 4);
        assert_eq!(DlhtConfig::growth_factor(1 << 20), 4);
        assert_eq!(DlhtConfig::growth_factor(64 * 1024 * 1024), 2);
        assert_eq!(DlhtConfig::growth_factor(1 << 30), 2);
    }

    #[test]
    fn capacity_sizing_leaves_headroom() {
        let keys = 100_000;
        let c = DlhtConfig::for_capacity(keys);
        let slots = c.num_bins * 3 + c.link_buckets_for(c.num_bins) * 4;
        assert!(
            slots > keys,
            "must have more slots ({slots}) than keys ({keys})"
        );
        // ...but not absurdly oversized either.
        assert!(slots < keys * 4);
    }

    #[test]
    fn builder_chain() {
        let c = DlhtConfig::new(128)
            .with_link_ratio(5)
            .with_hash(HashKind::WyHash)
            .with_resizing(false)
            .with_chunk_bins(64)
            .with_namespaces(true)
            .with_variable_size(true)
            .with_max_threads(4);
        assert_eq!(c.num_bins, 128);
        assert_eq!(c.link_ratio, 5);
        assert_eq!(c.hash, HashKind::WyHash);
        assert!(!c.resizing);
        assert_eq!(c.chunk_bins, 64);
        assert!(c.namespaces);
        assert!(c.variable_size);
        assert_eq!(c.max_threads, 4);
        assert_eq!(c.link_buckets_for(100), 20);
    }
}
