//! Bin-header bit layout (§3.1, "Bin Header (8 B)").
//!
//! The first 8 bytes of every primary bucket pack all of a bin's concurrency
//! metadata so that every state transition (Insert, Delete, shadow
//! commit/abort, resize transfer) is a single compare-and-swap:
//!
//! ```text
//!  bit 63 .. 34        33..32      31..0
//! +---------------+--------------+----------+
//! | 15 × 2-bit    | 2-bit bin    | 32-bit   |
//! | slot states   | state        | version  |
//! +---------------+--------------+----------+
//! ```
//!
//! Every successful CAS bumps the version, which (a) lets Gets read a
//! consistent view seqlock-style and (b) protects the header CASes themselves
//! from ABA (§3.2.2).

/// Number of key-value slots a bin can hold across its (up to) four buckets:
/// 3 in the primary bucket plus 4 in each of up to 3 link buckets.
pub const SLOTS_PER_BIN: usize = 15;

/// Number of slots in the primary bucket.
pub const PRIMARY_SLOTS: usize = 3;

/// Number of slots in a link bucket.
pub const LINK_SLOTS: usize = 4;

const VERSION_BITS: u32 = 32;
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;
const BIN_STATE_SHIFT: u32 = 32;
const BIN_STATE_MASK: u64 = 0b11 << BIN_STATE_SHIFT;
const SLOT_STATE_BASE: u32 = 34;

/// Per-slot state (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotState {
    /// Empty / reusable slot.
    Invalid = 0,
    /// An Insert has claimed the slot but not yet published it (§3.2.2 step 4).
    TryInsert = 1,
    /// The slot holds a live key-value pair.
    Valid = 2,
    /// Shadow-inserted key: present for duplicate detection but hidden from
    /// Get/Put/Delete until committed (§3.2.2 "Transactions").
    Shadow = 3,
}

impl SlotState {
    #[inline]
    fn from_bits(bits: u64) -> SlotState {
        match bits & 0b11 {
            0 => SlotState::Invalid,
            1 => SlotState::TryInsert,
            2 => SlotState::Valid,
            _ => SlotState::Shadow,
        }
    }
}

/// Per-bin state (2 bits), driving the non-blocking resize (§3.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BinState {
    /// Normal operation; the bin lives in this index.
    NoTransfer = 0,
    /// A resize helper is currently copying this bin to the new index.
    InTransfer = 1,
    /// The bin has been copied; operations must go to the new index.
    DoneTransfer = 2,
    /// Reserved for the strongly-consistent iterator snapshot (§3.4.4).
    Snapshot = 3,
}

impl BinState {
    #[inline]
    fn from_bits(bits: u64) -> BinState {
        match bits & 0b11 {
            0 => BinState::NoTransfer,
            1 => BinState::InTransfer,
            2 => BinState::DoneTransfer,
            _ => BinState::Snapshot,
        }
    }
}

/// A decoded/encodable view of the 8-byte bin header.
///
/// All mutators return a *new* header value with the version bumped, ready to
/// be installed with a CAS; the header word in memory is only ever modified
/// through `AtomicU64::compare_exchange` in the table code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinHeader(pub u64);

impl BinHeader {
    /// The header of a freshly initialized bin: version 0, `NoTransfer`, all
    /// slots `Invalid`.
    pub const EMPTY: BinHeader = BinHeader(0);

    /// 32-bit version counter.
    #[inline]
    pub fn version(self) -> u32 {
        (self.0 & VERSION_MASK) as u32
    }

    /// Bin (transfer) state.
    #[inline]
    pub fn bin_state(self) -> BinState {
        BinState::from_bits(self.0 >> BIN_STATE_SHIFT)
    }

    /// State of slot `i` (`i < SLOTS_PER_BIN`).
    #[inline]
    pub fn slot_state(self, i: usize) -> SlotState {
        debug_assert!(i < SLOTS_PER_BIN);
        SlotState::from_bits(self.0 >> (SLOT_STATE_BASE + 2 * i as u32))
    }

    /// New header with the version incremented (wrapping in 32 bits).
    #[inline]
    pub fn bump_version(self) -> BinHeader {
        let v = (self.version().wrapping_add(1)) as u64;
        BinHeader((self.0 & !VERSION_MASK) | v)
    }

    /// New header with slot `i` set to `state` and the version bumped.
    #[inline]
    pub fn with_slot_state(self, i: usize, state: SlotState) -> BinHeader {
        debug_assert!(i < SLOTS_PER_BIN);
        let shift = SLOT_STATE_BASE + 2 * i as u32;
        let cleared = self.0 & !(0b11u64 << shift);
        BinHeader(cleared | ((state as u64) << shift)).bump_version()
    }

    /// New header with the bin state set to `state` and the version bumped.
    #[inline]
    pub fn with_bin_state(self, state: BinState) -> BinHeader {
        let cleared = self.0 & !BIN_STATE_MASK;
        BinHeader(cleared | ((state as u64) << BIN_STATE_SHIFT)).bump_version()
    }

    /// Index of the first slot in `Invalid` state, if any.
    #[inline]
    pub fn first_invalid_slot(self) -> Option<usize> {
        (0..SLOTS_PER_BIN).find(|&i| self.slot_state(i) == SlotState::Invalid)
    }

    /// Number of slots currently in `Valid` or `Shadow` state.
    #[inline]
    pub fn occupied_slots(self) -> usize {
        (0..SLOTS_PER_BIN)
            .filter(|&i| matches!(self.slot_state(i), SlotState::Valid | SlotState::Shadow))
            .count()
    }

    /// Highest slot index in any non-`Invalid` state, plus one. Used to bound
    /// scans and to decide whether link buckets are reachable.
    #[inline]
    pub fn occupied_extent(self) -> usize {
        (0..SLOTS_PER_BIN)
            .rev()
            .find(|&i| self.slot_state(i) != SlotState::Invalid)
            .map_or(0, |i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_header_properties() {
        let h = BinHeader::EMPTY;
        assert_eq!(h.version(), 0);
        assert_eq!(h.bin_state(), BinState::NoTransfer);
        for i in 0..SLOTS_PER_BIN {
            assert_eq!(h.slot_state(i), SlotState::Invalid);
        }
        assert_eq!(h.first_invalid_slot(), Some(0));
        assert_eq!(h.occupied_slots(), 0);
        assert_eq!(h.occupied_extent(), 0);
    }

    #[test]
    fn slot_state_roundtrip_does_not_disturb_neighbours() {
        let mut h = BinHeader::EMPTY;
        h = h.with_slot_state(4, SlotState::Valid);
        h = h.with_slot_state(14, SlotState::TryInsert);
        h = h.with_slot_state(0, SlotState::Shadow);
        assert_eq!(h.slot_state(4), SlotState::Valid);
        assert_eq!(h.slot_state(14), SlotState::TryInsert);
        assert_eq!(h.slot_state(0), SlotState::Shadow);
        for i in [1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13] {
            assert_eq!(h.slot_state(i), SlotState::Invalid, "slot {i}");
        }
        assert_eq!(h.version(), 3, "each mutation bumps the version");
    }

    #[test]
    fn bin_state_roundtrip() {
        let h = BinHeader::EMPTY
            .with_slot_state(2, SlotState::Valid)
            .with_bin_state(BinState::InTransfer);
        assert_eq!(h.bin_state(), BinState::InTransfer);
        assert_eq!(h.slot_state(2), SlotState::Valid);
        let h = h.with_bin_state(BinState::DoneTransfer);
        assert_eq!(h.bin_state(), BinState::DoneTransfer);
        assert_eq!(h.slot_state(2), SlotState::Valid);
    }

    #[test]
    fn version_wraps_in_32_bits() {
        let h = BinHeader(u32::MAX as u64 | (0b10 << 40));
        let bumped = h.bump_version();
        assert_eq!(bumped.version(), 0);
        // Slot bits untouched by wrap.
        assert_eq!(bumped.0 >> 34, h.0 >> 34);
    }

    #[test]
    fn first_invalid_and_occupancy() {
        let mut h = BinHeader::EMPTY;
        for i in 0..5 {
            h = h.with_slot_state(i, SlotState::Valid);
        }
        assert_eq!(h.first_invalid_slot(), Some(5));
        assert_eq!(h.occupied_slots(), 5);
        assert_eq!(h.occupied_extent(), 5);

        let mut full = BinHeader::EMPTY;
        for i in 0..SLOTS_PER_BIN {
            full = full.with_slot_state(i, SlotState::Valid);
        }
        assert_eq!(full.first_invalid_slot(), None);
        assert_eq!(full.occupied_slots(), SLOTS_PER_BIN);
    }

    #[test]
    fn occupied_extent_sees_try_insert() {
        let h = BinHeader::EMPTY.with_slot_state(9, SlotState::TryInsert);
        assert_eq!(h.occupied_extent(), 10);
        assert_eq!(h.occupied_slots(), 0);
    }
}

#[cfg(test)]
mod proptests {
    //! Deterministic pseudo-random property checks (offline replacement for
    //! the former proptest strategies).

    use super::*;
    use dlht_util::splitmix64 as splitmix;

    fn state_of(n: u64) -> SlotState {
        match n % 4 {
            0 => SlotState::Invalid,
            1 => SlotState::TryInsert,
            2 => SlotState::Valid,
            _ => SlotState::Shadow,
        }
    }

    #[test]
    fn arbitrary_sequences_of_mutations_roundtrip() {
        for seed in 0..256u64 {
            let mut rng = 0xBEEF ^ (seed << 17);
            let mut h = BinHeader::EMPTY;
            let mut model = [SlotState::Invalid; SLOTS_PER_BIN];
            let ops = 1 + splitmix(&mut rng) as usize % 63;
            for _ in 0..ops {
                let i = splitmix(&mut rng) as usize % SLOTS_PER_BIN;
                let s = state_of(splitmix(&mut rng));
                h = h.with_slot_state(i, s);
                model[i] = s;
            }
            for (i, expected) in model.iter().enumerate() {
                assert_eq!(h.slot_state(i), *expected, "seed {seed} slot {i}");
            }
            assert_eq!(h.bin_state(), BinState::NoTransfer, "seed {seed}");
        }
    }

    #[test]
    fn version_only_changes_by_one_per_mutation() {
        let mut rng = 0x5EED_u64;
        for _ in 0..256 {
            let slot = splitmix(&mut rng) as usize % SLOTS_PER_BIN;
            let s = state_of(splitmix(&mut rng));
            let h = BinHeader(0xABCD_EF01_2345_6789 & !(0b11 << 32)); // arbitrary, NoTransfer
            let h2 = h.with_slot_state(slot, s);
            assert_eq!(h2.version(), h.version().wrapping_add(1));
        }
    }
}
