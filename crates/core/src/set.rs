//! The HashSet mode (§3.1, mode 3): keys only, no values. Used by the
//! paper's clients for semi-/anti-joins and as a database lock manager, where
//! inserting a key locks a record and deleting it releases the lock (§5.3.3).

use crate::config::DlhtConfig;
use crate::error::{DlhtError, InsertOutcome};
use crate::stats::TableStats;
use crate::table::RawTable;

/// Concurrent hash set over 8-byte keys.
///
/// ```
/// use dlht_core::DlhtSet;
///
/// let locks = DlhtSet::with_capacity(1024);
/// assert!(locks.insert(42).unwrap());       // lock record 42
/// assert!(!locks.insert(42).unwrap());      // already locked
/// assert!(locks.remove(42));                // unlock
/// ```
pub struct DlhtSet {
    table: RawTable,
}

impl DlhtSet {
    /// Create a set from an explicit configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        DlhtSet {
            table: RawTable::with_config(config),
        }
    }

    /// Create a set sized for about `keys` keys.
    pub fn with_capacity(keys: usize) -> Self {
        Self::with_config(DlhtConfig::for_capacity(keys))
    }

    /// Create a set with `num_bins` bins.
    pub fn new(num_bins: usize) -> Self {
        Self::with_config(DlhtConfig::new(num_bins))
    }

    /// Insert `key`. Returns `Ok(true)` if it was inserted, `Ok(false)` if it
    /// was already present.
    pub fn insert(&self, key: u64) -> Result<bool, DlhtError> {
        Ok(matches!(
            self.table.insert(key, 0)?,
            InsertOutcome::Inserted
        ))
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.table.contains(key)
    }

    /// Remove `key`; returns whether it was present.
    #[inline]
    pub fn remove(&self, key: u64) -> bool {
        self.table.delete(key).is_some()
    }

    /// Try to acquire all of `keys` in order, lock-manager style: on the first
    /// key that is already held, the keys acquired so far are released and
    /// `false` is returned. Keys must be passed in a globally consistent order
    /// by the caller to avoid deadlocks — which DLHT's order-preserving
    /// batching makes possible (§5.3.3).
    pub fn try_lock_all(&self, keys: &[u64]) -> Result<bool, DlhtError> {
        for (i, &k) in keys.iter().enumerate() {
            if !self.insert(k)? {
                for &held in &keys[..i] {
                    self.remove(held);
                }
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Release all of `keys` (inverse of [`DlhtSet::try_lock_all`]).
    pub fn unlock_all(&self, keys: &[u64]) {
        for &k in keys {
            self.remove(k);
        }
    }

    /// Number of keys in the set (linear scan).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Structural statistics.
    pub fn stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Open a per-thread [`crate::Session`] with a cached registry slot —
    /// lock managers drive their order-preserving batches through this.
    pub fn session(&self) -> crate::Session<'_> {
        crate::Session::new(&self.table)
    }

    /// Borrow the underlying raw table (advanced / benchmarking use).
    pub fn raw(&self) -> &RawTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let s = DlhtSet::with_capacity(64);
        assert!(s.insert(1).unwrap());
        assert!(!s.insert(1).unwrap());
        assert!(s.contains(1));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert!(!s.contains(1));
    }

    #[test]
    fn lock_all_rolls_back_on_conflict() {
        let s = DlhtSet::with_capacity(64);
        assert!(s.insert(5).unwrap()); // someone else holds 5
        assert!(!s.try_lock_all(&[1, 2, 5, 9]).unwrap());
        // 1 and 2 must have been released.
        assert!(!s.contains(1));
        assert!(!s.contains(2));
        assert!(!s.contains(9));
        assert!(s.contains(5));

        assert!(s.try_lock_all(&[1, 2, 9]).unwrap());
        assert_eq!(s.len(), 4);
        s.unlock_all(&[1, 2, 9]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn concurrent_locking_is_mutually_exclusive() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let s = std::sync::Arc::new(DlhtSet::with_capacity(64));
        let in_cs = std::sync::Arc::new(AtomicU64::new(0));
        let max_seen = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                let in_cs = std::sync::Arc::clone(&in_cs);
                let max_seen = std::sync::Arc::clone(&max_seen);
                scope.spawn(move || {
                    let mut acquired = 0;
                    while acquired < 200 {
                        if s.insert(7).unwrap() {
                            let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(now, Ordering::SeqCst);
                            in_cs.fetch_sub(1, Ordering::SeqCst);
                            assert!(s.remove(7));
                            acquired += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "lock must never be held by two threads"
        );
        assert!(s.is_empty());
    }
}
