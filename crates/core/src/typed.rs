//! The typed facade: one generic [`Dlht<K, V>`] over every paper mode.
//!
//! The DLHT paper exposes three storage modes (§3.1): Inlined 8 B/8 B slots,
//! Allocator-mode out-of-line records, and the HashSet. This module maps
//! arbitrary Rust key/value types onto the right mode **at compile time**:
//!
//! * Types whose [`KvCodec::INLINE`] is `true` (u64, i64, u32 pairs, small
//!   newtypes — anything implementing the [`Inline8`] encoding) pack into the
//!   8-byte slot words of the Inlined [`DlhtMap`] path.
//! * Everything else (`String`, `Vec<u8>`, structs via the [`ByteCodec`]
//!   bytes encoding) goes to the Allocator mode ([`DlhtAllocMap`]) with
//!   variable-size records and epoch-GC'd deletes.
//!
//! The pair `(K, V)` runs inlined only when **both** types are inline; a mixed
//! pair (say `u64 -> Vec<u8>`) uses the Allocator mode with the inline half
//! encoded through its bytes representation.
//!
//! ```
//! use dlht_core::Dlht;
//!
//! // Same generic code path, two very different storage modes:
//! let ids: Dlht<u64, u64> = Dlht::with_capacity(1024);          // Inlined
//! let docs: Dlht<String, Vec<u8>> = Dlht::with_capacity(1024);  // Allocator
//!
//! ids.insert(&7, &700).unwrap();
//! docs.insert(&"seven".to_string(), &vec![7u8; 32]).unwrap();
//!
//! assert_eq!(ids.get(&7), Some(700));
//! assert_eq!(docs.get(&"seven".to_string()), Some(vec![7u8; 32]));
//! ```
//!
//! ## Reserved keys
//!
//! The Inlined path inherits DLHT's two reserved transfer keys: an inline key
//! encoding to `u64::MAX` or `u64::MAX - 1` is rejected with
//! [`DlhtError::ReservedKey`]. The Allocator path has no reserved keys (its
//! slot words are fingerprints that avoid the reserved range internally).

use crate::alloc_map::DlhtAllocMap;
use crate::batch::{Batch, BatchPolicy, Response};
use crate::config::DlhtConfig;
use crate::error::DlhtError;
use crate::map::DlhtMap;
use crate::sharded::ShardedTable;
use crate::stats::TableStats;
use std::cell::RefCell;
use std::marker::PhantomData;

thread_local! {
    /// Scratch batch reused by the typed batched lookups
    /// ([`Dlht::get_many_into`], [`DlhtShards::get_many_into`]) so they
    /// allocate nothing in steady state.
    static GET_MANY_SCRATCH: RefCell<Batch> = RefCell::new(Batch::new());
}

/// Shared body of the inline-mode batched lookups: fill the thread-local
/// scratch batch with Gets for `keys`, run it through `exec`, and decode the
/// value words into `out` (cleared first, capacity kept). A user codec that
/// re-enters a batched lookup from `encode`/`decode` would find the scratch
/// borrowed; fall back to a local batch rather than panicking on the RefCell.
fn get_many_via_scratch<K: KvCodec, V: KvCodec>(
    keys: &[K],
    out: &mut Vec<Option<V>>,
    exec: impl Fn(&mut Batch),
) {
    out.clear();
    out.reserve(keys.len());
    let run = |batch: &mut Batch, out: &mut Vec<Option<V>>| {
        batch.clear();
        for k in keys {
            batch.push_get(k.encode_word());
        }
        exec(batch);
        out.extend(batch.responses().iter().map(|r| match r {
            Response::Value(v) => v.map(V::decode_word),
            _ => None,
        }));
    };
    GET_MANY_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut batch) => run(&mut batch, out),
        Err(_) => run(&mut Batch::with_capacity(keys.len()), out),
    })
}

/// Lossless encoding of a type into the 8-byte inline slot word.
///
/// Implement this for small newtypes to route them through the Inlined mode
/// (then wire them into the facade with [`crate::impl_inline8_codec!`]):
///
/// ```
/// use dlht_core::{impl_inline8_codec, Dlht, Inline8};
///
/// #[derive(Clone, Copy, PartialEq, Debug)]
/// struct UserId(u64);
///
/// impl Inline8 for UserId {
///     fn to_word(self) -> u64 { self.0 }
///     fn from_word(word: u64) -> Self { UserId(word) }
/// }
/// impl_inline8_codec!(UserId);
///
/// let map: Dlht<UserId, u64> = Dlht::with_capacity(64);
/// map.insert(&UserId(9), &90).unwrap();
/// assert_eq!(map.get(&UserId(9)), Some(90));
/// ```
pub trait Inline8: Copy {
    /// Encode into a slot word.
    fn to_word(self) -> u64;
    /// Decode from a slot word. Must satisfy
    /// `from_word(x.to_word()) == x` for every `x`.
    fn from_word(word: u64) -> Self;
}

impl Inline8 for u64 {
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(word: u64) -> Self {
        word
    }
}

impl Inline8 for i64 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as i64
    }
}

impl Inline8 for u32 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as u32
    }
}

impl Inline8 for i32 {
    fn to_word(self) -> u64 {
        self as u32 as u64
    }
    fn from_word(word: u64) -> Self {
        word as u32 as i32
    }
}

impl Inline8 for u16 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as u16
    }
}

impl Inline8 for u8 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as u8
    }
}

impl Inline8 for (u32, u32) {
    fn to_word(self) -> u64 {
        ((self.0 as u64) << 32) | self.1 as u64
    }
    fn from_word(word: u64) -> Self {
        ((word >> 32) as u32, word as u32)
    }
}

impl Inline8 for [u8; 8] {
    fn to_word(self) -> u64 {
        u64::from_le_bytes(self)
    }
    fn from_word(word: u64) -> Self {
        word.to_le_bytes()
    }
}

/// Bytes encoding for out-of-line (Allocator-mode) keys and values.
///
/// `decode(e)` must reproduce the value for any `e` produced by `encode`.
pub trait ByteCodec: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode from an encoding produced by [`ByteCodec::encode`].
    fn decode(bytes: &[u8]) -> Self;
}

impl ByteCodec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Self {
        bytes.to_vec()
    }
}

impl ByteCodec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Self {
        String::from_utf8_lossy(bytes).into_owned()
    }
}

impl ByteCodec for Box<[u8]> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Self {
        bytes.to_vec().into_boxed_slice()
    }
}

/// The unified codec the facade dispatches on. `INLINE` decides the storage
/// mode at compile time; the word methods serve the Inlined path and the
/// bytes methods the Allocator path (both are total so mixed inline/bytes
/// pairs work).
///
/// Implemented for the primitive inline types and for the standard byte
/// containers; implement [`Inline8`] + [`crate::impl_inline8_codec!`] or
/// [`ByteCodec`] + [`crate::impl_bytes_codec!`] to add your own.
pub trait KvCodec: Send + Sync + 'static + Sized {
    /// Whether this type packs losslessly into the 8-byte slot word.
    const INLINE: bool;

    /// Encode into a slot word (Inlined path; unreachable for bytes types).
    fn encode_word(&self) -> u64 {
        unreachable!("encode_word called on a non-inline type")
    }

    /// Decode from a slot word (Inlined path; unreachable for bytes types).
    fn decode_word(_word: u64) -> Self {
        unreachable!("decode_word called on a non-inline type")
    }

    /// Append the bytes encoding to `buf` (Allocator path).
    fn encode_bytes(&self, buf: &mut Vec<u8>);

    /// Decode from the bytes encoding (Allocator path).
    fn decode_bytes(bytes: &[u8]) -> Self;
}

/// Wire an [`Inline8`] type into the typed facade as an inline codec.
#[macro_export]
macro_rules! impl_inline8_codec {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::KvCodec for $t {
            const INLINE: bool = true;
            fn encode_word(&self) -> u64 {
                $crate::Inline8::to_word(*self)
            }
            fn decode_word(word: u64) -> Self {
                <$t as $crate::Inline8>::from_word(word)
            }
            fn encode_bytes(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&$crate::Inline8::to_word(*self).to_le_bytes());
            }
            fn decode_bytes(bytes: &[u8]) -> Self {
                let mut word = [0u8; 8];
                word.copy_from_slice(&bytes[..8]);
                <$t as $crate::Inline8>::from_word(u64::from_le_bytes(word))
            }
        }
    )+};
}

/// Wire a [`ByteCodec`] type into the typed facade as an out-of-line codec.
#[macro_export]
macro_rules! impl_bytes_codec {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::KvCodec for $t {
            const INLINE: bool = false;
            fn encode_bytes(&self, buf: &mut Vec<u8>) {
                $crate::ByteCodec::encode(self, buf)
            }
            fn decode_bytes(bytes: &[u8]) -> Self {
                <$t as $crate::ByteCodec>::decode(bytes)
            }
        }
    )+};
}

impl_inline8_codec!(u64, i64, u32, i32, u16, u8, (u32, u32), [u8; 8]);
impl_bytes_codec!(Vec<u8>, String, Box<[u8]>);

enum Inner {
    /// Inlined mode (§3.1 mode 1): both halves live in the slot words.
    Inline(DlhtMap),
    /// Allocator mode (§3.1 mode 2): out-of-line variable-size records.
    Alloc(DlhtAllocMap),
}

/// Typed concurrent hashtable over any `K: KvCodec, V: KvCodec`, backed by
/// the paper mode the types call for (see the module docs).
///
/// All operations take `&self` and are thread-safe. On the Allocator path
/// each call opens a short-lived epoch session; long probe loops that want to
/// amortize that cost can drop to [`Dlht::alloc_map`] and manage an
/// [`crate::AllocSession`] directly.
pub struct Dlht<K: KvCodec, V: KvCodec> {
    inner: Inner,
    _marker: PhantomData<fn(K, V)>,
}

impl<K: KvCodec, V: KvCodec> Dlht<K, V> {
    /// Whether this instantiation runs in the Inlined mode.
    pub const INLINE: bool = K::INLINE && V::INLINE;

    /// Create a table sized to hold about `keys` pairs before its first
    /// resize.
    pub fn with_capacity(keys: usize) -> Self {
        Self::with_config(DlhtConfig::for_capacity(keys))
    }

    /// Create a table from an explicit configuration. The Allocator path
    /// forces `variable_size` on (every record carries its own lengths).
    pub fn with_config(config: DlhtConfig) -> Self {
        let inner = if Self::INLINE {
            Inner::Inline(DlhtMap::with_config(config))
        } else {
            Inner::Alloc(DlhtAllocMap::new(
                config.with_variable_size(true),
                dlht_alloc::AllocatorKind::Pool.build(),
                0,
                0,
            ))
        };
        Dlht {
            inner,
            _marker: PhantomData,
        }
    }

    /// The storage mode selected for this `(K, V)` pair, for diagnostics.
    pub fn mode(&self) -> &'static str {
        if Self::INLINE {
            "inlined"
        } else {
            "allocator"
        }
    }

    fn key_bytes(key: &K) -> Vec<u8> {
        let mut buf = Vec::new();
        key.encode_bytes(&mut buf);
        buf
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        match &self.inner {
            Inner::Inline(map) => map.get(key.encode_word()).map(V::decode_word),
            Inner::Alloc(map) => {
                let kb = Self::key_bytes(key);
                let mut s = map.session();
                s.get_with(0, &kb, V::decode_bytes)
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        match &self.inner {
            Inner::Inline(map) => map.contains(key.encode_word()),
            Inner::Alloc(map) => {
                let kb = Self::key_bytes(key);
                map.session().contains(0, &kb)
            }
        }
    }

    /// Insert `key -> value`; returns `Ok(false)` (without overwriting) when
    /// the key already exists. Inline keys encoding to the reserved transfer
    /// words fail with [`DlhtError::ReservedKey`].
    pub fn insert(&self, key: &K, value: &V) -> Result<bool, DlhtError> {
        match &self.inner {
            Inner::Inline(map) => Ok(map
                .insert(key.encode_word(), value.encode_word())?
                .inserted()),
            Inner::Alloc(map) => {
                let kb = Self::key_bytes(key);
                let mut vb = Vec::new();
                value.encode_bytes(&mut vb);
                let mut s = map.session();
                let r = s.insert(0, &kb, &vb);
                s.quiesce();
                r
            }
        }
    }

    /// Update an existing key; returns the previous value, or `None` when the
    /// key is absent. On the Allocator path the paper offers no Put (§3.2.4),
    /// so the update is expressed as delete + insert of the record; the key is
    /// therefore transiently absent to concurrent readers mid-update. A
    /// concurrent writer re-claiming the key between the two steps is retried,
    /// and an insert failure triggers a best-effort restore of the previous
    /// record (under concurrent insert pressure on a full, non-resizing table
    /// the restore itself can fail, in which case the `Err` stands and the key
    /// may be lost — the price of the paper's Put-less Allocator mode).
    pub fn put(&self, key: &K, value: &V) -> Result<Option<V>, DlhtError> {
        match &self.inner {
            Inner::Inline(map) => Ok(map
                .put(key.encode_word(), value.encode_word())
                .map(V::decode_word)),
            Inner::Alloc(map) => {
                let kb = Self::key_bytes(key);
                let mut vb = Vec::new();
                value.encode_bytes(&mut vb);
                let mut s = map.session();
                loop {
                    let Some(prev) = s.get_with(0, &kb, V::decode_bytes) else {
                        return Ok(None);
                    };
                    s.delete(0, &kb);
                    match s.insert(0, &kb, &vb) {
                        Ok(true) => {
                            s.quiesce();
                            return Ok(Some(prev));
                        }
                        // A concurrent writer re-inserted the key between our
                        // delete and insert; treat it as the now-existing value
                        // and retry the update against it.
                        Ok(false) => continue,
                        Err(e) => {
                            // Restore the record we removed: a failed update
                            // must leave the key present.
                            let mut old = Vec::new();
                            prev.encode_bytes(&mut old);
                            let _ = s.insert(0, &kb, &old);
                            s.quiesce();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Insert if absent, otherwise update; returns the previous value on
    /// update. Insert errors (table full, reserved key) are propagated; races
    /// with concurrent writers are retried as on the Inline path.
    pub fn upsert(&self, key: &K, value: &V) -> Result<Option<V>, DlhtError> {
        match &self.inner {
            Inner::Inline(map) => Ok(map
                .upsert(key.encode_word(), value.encode_word())?
                .map(V::decode_word)),
            Inner::Alloc(map) => {
                let kb = Self::key_bytes(key);
                let mut vb = Vec::new();
                value.encode_bytes(&mut vb);
                let mut s = map.session();
                loop {
                    let prev = s.get_with(0, &kb, V::decode_bytes);
                    if prev.is_some() {
                        s.delete(0, &kb);
                    }
                    match s.insert(0, &kb, &vb) {
                        Ok(true) => {
                            s.quiesce();
                            return Ok(prev);
                        }
                        // Lost a race with a concurrent inserter: the key
                        // exists again with their value — retry the update.
                        Ok(false) => continue,
                        Err(e) => {
                            if let Some(prev) = prev {
                                // Restore the record we removed.
                                let mut old = Vec::new();
                                prev.encode_bytes(&mut old);
                                let _ = s.insert(0, &kb, &old);
                            }
                            s.quiesce();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Remove `key`, returning its value. On the Inlined path the slot is
    /// immediately reusable; on the Allocator path the record is reclaimed by
    /// the epoch GC.
    pub fn remove(&self, key: &K) -> Option<V> {
        match &self.inner {
            Inner::Inline(map) => map.delete(key.encode_word()).map(V::decode_word),
            Inner::Alloc(map) => {
                let kb = Self::key_bytes(key);
                let mut s = map.session();
                let prev = s.get_with(0, &kb, V::decode_bytes)?;
                let deleted = s.delete(0, &kb);
                s.quiesce();
                deleted.then_some(prev)
            }
        }
    }

    /// Batched lookup. On the Inlined path the keys go through the
    /// order-preserving prefetched batch API (§3.3); on the Allocator path a
    /// prefetch sweep over every key's bin precedes the in-order lookups of
    /// one session. Allocates the result vector; hot loops should pass a
    /// reused buffer to [`Dlht::get_many_into`] instead.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::with_capacity(keys.len());
        self.get_many_into(keys, &mut out);
        out
    }

    /// [`Dlht::get_many`] into a caller-provided buffer (`out` is cleared
    /// first, its capacity is kept). On the Inlined path the request batch
    /// itself comes from a thread-local scratch [`Batch`], so steady-state
    /// calls perform no heap allocation beyond what `out` needs the first
    /// time.
    pub fn get_many_into(&self, keys: &[K], out: &mut Vec<Option<V>>) {
        match &self.inner {
            Inner::Inline(map) => {
                get_many_via_scratch(keys, out, |batch| map.execute(batch, BatchPolicy::RunAll))
            }
            Inner::Alloc(map) => {
                out.clear();
                out.reserve(keys.len());
                // Encode every key once into a flat buffer, prefetch-sweep
                // the bins, then look up in order — the §3.3 overlap pattern
                // applied to out-of-line records.
                let mut flat = Vec::new();
                let mut ranges = Vec::with_capacity(keys.len());
                for k in keys {
                    let start = flat.len();
                    k.encode_bytes(&mut flat);
                    ranges.push(start..flat.len());
                }
                let mut s = map.session();
                for r in &ranges {
                    s.prefetch(0, &flat[r.clone()]);
                }
                for r in &ranges {
                    out.push(s.get_with(0, &flat[r.clone()], V::decode_bytes));
                }
            }
        }
    }

    /// Execute a typed batch (see [`TypedBatch`]) through the
    /// order-preserving prefetched batch path.
    ///
    /// Only available on Inlined-mode instantiations — the Allocator mode
    /// offers no word-encoded batch path (§3.2.4 exposes the pointer API
    /// instead) and reports [`DlhtError::UnsupportedInMode`].
    pub fn execute(
        &self,
        batch: &mut TypedBatch<K, V>,
        policy: BatchPolicy,
    ) -> Result<(), DlhtError> {
        match &self.inner {
            Inner::Inline(map) => {
                map.execute(&mut batch.raw, policy);
                Ok(())
            }
            Inner::Alloc(_) => Err(DlhtError::UnsupportedInMode),
        }
    }

    /// Number of live keys (linear scan).
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Inline(map) => map.len(),
            Inner::Alloc(map) => map.len(),
        }
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics of the index.
    pub fn stats(&self) -> TableStats {
        match &self.inner {
            Inner::Inline(map) => map.stats(),
            Inner::Alloc(map) => map.stats(),
        }
    }

    /// The underlying Inlined-mode map, when this instantiation is inlined.
    pub fn inline_map(&self) -> Option<&DlhtMap> {
        match &self.inner {
            Inner::Inline(map) => Some(map),
            Inner::Alloc(_) => None,
        }
    }

    /// The underlying Allocator-mode map, when this instantiation is
    /// out-of-line (e.g. to open a long-lived [`crate::AllocSession`]).
    pub fn alloc_map(&self) -> Option<&DlhtAllocMap> {
        match &self.inner {
            Inner::Inline(_) => None,
            Inner::Alloc(map) => Some(map),
        }
    }
}

/// Typed facade over the shard-partitioned [`ShardedTable`]: N independent
/// DLHT shards behind the same typed surface as [`Dlht<K, V>`].
///
/// Shards resize independently (a hot shard grows without stalling its
/// siblings), and batches split into per-shard runs — see the
/// [`crate::sharded`] module docs for routing and ordering semantics.
///
/// `DlhtShards` serves the **Inlined** mode only: both `K` and `V` must be
/// inline codecs (`K::INLINE && V::INLINE`); the constructors panic otherwise.
/// Out-of-line types belong on [`Dlht<K, V>`], whose Allocator mode carries
/// its own epoch-GC machinery that is not sharded here.
///
/// ```
/// use dlht_core::{BatchPolicy, DlhtShards, TypedBatch, TypedResponse};
///
/// let map: DlhtShards<u64, u64> = DlhtShards::with_capacity(4, 10_000);
/// assert_eq!(map.num_shards(), 4);
/// map.insert(&7, &700).unwrap();
/// assert_eq!(map.get(&7), Some(700));
///
/// // Batches split into per-shard runs; responses keep submission order.
/// let mut batch: TypedBatch<u64, u64> = TypedBatch::new();
/// batch.push_get(&7);
/// batch.push_put(&7, &701);
/// map.execute(&mut batch, BatchPolicy::RunAll).unwrap();
/// assert_eq!(batch.response(1), Some(TypedResponse::Updated(Some(700))));
///
/// // Independent shard resizes stay observable through the stats.
/// assert_eq!(map.shard_stats().len(), 4);
/// ```
pub struct DlhtShards<K: KvCodec, V: KvCodec> {
    inner: ShardedTable,
    _marker: PhantomData<fn(K, V)>,
}

impl<K: KvCodec, V: KvCodec> DlhtShards<K, V> {
    /// Whether this `(K, V)` pair packs into the inline slot words — must be
    /// `true` for `DlhtShards` (checked at construction).
    pub const INLINE: bool = K::INLINE && V::INLINE;

    fn assert_inline() {
        assert!(
            Self::INLINE,
            "DlhtShards<K, V> requires inline codecs for both K and V; \
             use Dlht<K, V> for out-of-line (Allocator-mode) types"
        );
    }

    /// Create a table of `shards` shards (rounded up to a power of two)
    /// sized to hold about `keys` pairs in total before any shard's first
    /// resize.
    ///
    /// # Panics
    /// Panics when `K` or `V` is not an inline codec.
    pub fn with_capacity(shards: usize, keys: usize) -> Self {
        Self::assert_inline();
        DlhtShards {
            inner: ShardedTable::with_capacity(shards, keys),
            _marker: PhantomData,
        }
    }

    /// Create a table of `shards` shards from an explicit configuration
    /// (`config.num_bins` is the combined budget, split across shards).
    ///
    /// # Panics
    /// Panics when `K` or `V` is not an inline codec.
    pub fn with_config(shards: usize, config: DlhtConfig) -> Self {
        Self::assert_inline();
        DlhtShards {
            inner: ShardedTable::with_config(shards, config),
            _marker: PhantomData,
        }
    }

    /// Number of shards (a power of two, fixed for the table's lifetime).
    pub fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    /// The shard `key` routes to — stable across resizes.
    pub fn shard_of(&self, key: &K) -> usize {
        self.inner.shard_of(key.encode_word())
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.get(key.encode_word()).map(V::decode_word)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.contains(key.encode_word())
    }

    /// Insert `key -> value`; returns `Ok(false)` (without overwriting) when
    /// the key already exists.
    pub fn insert(&self, key: &K, value: &V) -> Result<bool, DlhtError> {
        Ok(self
            .inner
            .insert(key.encode_word(), value.encode_word())?
            .inserted())
    }

    /// Update an existing key; returns the previous value, or `None` when
    /// the key is absent.
    pub fn put(&self, key: &K, value: &V) -> Option<V> {
        self.inner
            .put(key.encode_word(), value.encode_word())
            .map(V::decode_word)
    }

    /// Insert if absent, otherwise update; returns the previous value on
    /// update and propagates insert errors.
    pub fn upsert(&self, key: &K, value: &V) -> Result<Option<V>, DlhtError> {
        Ok(self
            .inner
            .upsert(key.encode_word(), value.encode_word())?
            .map(V::decode_word))
    }

    /// Remove `key`, returning its value. The slot is immediately reusable.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.delete(key.encode_word()).map(V::decode_word)
    }

    /// Execute a typed batch through the per-shard-run batch path (see
    /// [`ShardedTable::execute`]). Always `Ok` — the signature matches
    /// [`Dlht::execute`] so the two facades stay drop-in interchangeable.
    pub fn execute(
        &self,
        batch: &mut TypedBatch<K, V>,
        policy: BatchPolicy,
    ) -> Result<(), DlhtError> {
        self.inner.execute(&mut batch.raw, policy);
        Ok(())
    }

    /// Batched typed lookup (allocates the result vector; hot loops should
    /// pass a reused buffer to [`DlhtShards::get_many_into`]).
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::with_capacity(keys.len());
        self.get_many_into(keys, &mut out);
        out
    }

    /// [`DlhtShards::get_many`] into a caller-provided buffer (`out` is
    /// cleared first, its capacity kept). Uses the same thread-local scratch
    /// [`Batch`] as [`Dlht::get_many_into`], so steady-state calls stay off
    /// the allocator beyond what `out` needs the first time.
    pub fn get_many_into(&self, keys: &[K], out: &mut Vec<Option<V>>) {
        get_many_via_scratch(keys, out, |batch| {
            self.inner.execute(batch, BatchPolicy::RunAll)
        })
    }

    /// Visit every live pair across all shards (weakly consistent snapshot).
    pub fn for_each(&self, mut f: impl FnMut(K, V)) {
        self.inner
            .for_each(|k, v| f(K::decode_word(k), V::decode_word(v)));
    }

    /// Number of live keys across all shards (linear scan).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Aggregated structural statistics (sums across shards, highest shard
    /// generation) — see [`ShardedTable::stats`].
    pub fn stats(&self) -> TableStats {
        self.inner.stats()
    }

    /// Per-shard statistics in routing order: the view that shows a hot
    /// shard resizing while its siblings stay put.
    pub fn shard_stats(&self) -> Vec<TableStats> {
        self.inner.shard_stats()
    }

    /// Total resizes across all shards since creation.
    pub fn resizes(&self) -> u64 {
        self.inner.resizes()
    }

    /// The untyped sharded table underneath (sessions, pipelines, advanced
    /// use).
    pub fn raw(&self) -> &ShardedTable {
        &self.inner
    }
}

/// A typed view of one executed batch slot — [`Response`] with the value
/// word decoded back to `V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypedResponse<V> {
    /// Result of a `Get`.
    Value(Option<V>),
    /// Result of a `Put`: the previous value if the key existed.
    Updated(Option<V>),
    /// Result of an `Insert`: whether the key was inserted.
    Inserted(Result<bool, DlhtError>),
    /// Result of a `Delete`: the removed value if the key existed.
    Deleted(Option<V>),
    /// Skipped under [`BatchPolicy::StopOnFailure`]; had no effect.
    Skipped,
}

/// A reusable typed batch builder over [`Dlht<K, V>`]: push typed requests,
/// execute through [`Dlht::execute`], and read responses decoded back to `V`.
///
/// Wraps a word-encoded [`Batch`], so it shares its zero-allocation reuse
/// property: [`TypedBatch::clear`] keeps both buffers' capacity.
///
/// Requests are word-encoded at push time, so `TypedBatch` serves **inline**
/// codecs (`K::INLINE && V::INLINE`); pushing a non-inline key or value
/// panics (its codec has no word encoding), and executing against an
/// Allocator-mode table reports [`DlhtError::UnsupportedInMode`].
///
/// ```
/// use dlht_core::{BatchPolicy, Dlht, TypedBatch, TypedResponse};
///
/// let map: Dlht<u64, u64> = Dlht::with_capacity(256);
/// let mut batch: TypedBatch<u64, u64> = TypedBatch::new();
/// batch.push_insert(&1, &100);
/// batch.push_get(&1);
/// map.execute(&mut batch, BatchPolicy::RunAll).unwrap();
/// assert_eq!(batch.response(1), Some(TypedResponse::Value(Some(100))));
/// ```
pub struct TypedBatch<K: KvCodec, V: KvCodec> {
    raw: Batch,
    _marker: PhantomData<fn(K, V)>,
}

impl<K: KvCodec, V: KvCodec> TypedBatch<K, V> {
    /// Create an empty typed batch.
    pub fn new() -> Self {
        TypedBatch {
            raw: Batch::new(),
            _marker: PhantomData,
        }
    }

    /// Create an empty typed batch with room for `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        TypedBatch {
            raw: Batch::with_capacity(capacity),
            _marker: PhantomData,
        }
    }

    /// Queue a lookup of `key`.
    pub fn push_get(&mut self, key: &K) {
        self.raw.push_get(key.encode_word());
    }

    /// Queue an update of `key` to `value`.
    pub fn push_put(&mut self, key: &K, value: &V) {
        self.raw.push_put(key.encode_word(), value.encode_word());
    }

    /// Queue an insert of `key -> value`.
    pub fn push_insert(&mut self, key: &K, value: &V) {
        self.raw.push_insert(key.encode_word(), value.encode_word());
    }

    /// Queue a delete of `key`.
    pub fn push_delete(&mut self, key: &K) {
        self.raw.push_delete(key.encode_word());
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Drop all requests and responses, keeping both allocations.
    pub fn clear(&mut self) {
        self.raw.clear();
    }

    /// The decoded response in slot `i` of the most recent execution.
    pub fn response(&self, i: usize) -> Option<TypedResponse<V>> {
        self.raw.responses().get(i).map(Self::decode)
    }

    /// Iterate over the decoded responses of the most recent execution, in
    /// submission order.
    pub fn responses(&self) -> impl Iterator<Item = TypedResponse<V>> + '_ {
        self.raw.responses().iter().map(Self::decode)
    }

    /// The word-encoded batch underneath (advanced use).
    pub fn raw(&self) -> &Batch {
        &self.raw
    }

    fn decode(r: &Response) -> TypedResponse<V> {
        match *r {
            Response::Value(v) => TypedResponse::Value(v.map(V::decode_word)),
            Response::Updated(v) => TypedResponse::Updated(v.map(V::decode_word)),
            Response::Inserted(r) => TypedResponse::Inserted(r.map(|o| o.inserted())),
            Response::Deleted(v) => TypedResponse::Deleted(v.map(V::decode_word)),
            Response::Skipped => TypedResponse::Skipped,
        }
    }
}

impl<K: KvCodec, V: KvCodec> Default for TypedBatch<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mode_selection_is_type_driven() {
        assert!(Dlht::<u64, u64>::INLINE);
        assert!(Dlht::<i64, u32>::INLINE);
        assert!(Dlht::<(u32, u32), [u8; 8]>::INLINE);
        assert!(!Dlht::<String, Vec<u8>>::INLINE);
        assert!(!Dlht::<u64, Vec<u8>>::INLINE, "mixed pairs go out of line");
        assert!(!Dlht::<String, u64>::INLINE);
    }

    #[test]
    fn inline_pair_roundtrip() {
        let map: Dlht<u64, u64> = Dlht::with_capacity(256);
        assert_eq!(map.mode(), "inlined");
        assert!(map.insert(&1, &10).unwrap());
        assert!(!map.insert(&1, &11).unwrap());
        assert_eq!(map.get(&1), Some(10));
        assert_eq!(map.put(&1, &12).unwrap(), Some(10));
        assert_eq!(map.upsert(&2, &20).unwrap(), None);
        assert_eq!(map.upsert(&2, &21).unwrap(), Some(20));
        assert_eq!(map.remove(&1), Some(12));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn bytes_pair_roundtrip() {
        let map: Dlht<String, Vec<u8>> = Dlht::with_capacity(256);
        assert_eq!(map.mode(), "allocator");
        let k = "hello".to_string();
        assert!(map.insert(&k, &vec![1, 2, 3]).unwrap());
        assert!(!map.insert(&k, &vec![9]).unwrap());
        assert_eq!(map.get(&k), Some(vec![1, 2, 3]));
        assert_eq!(map.put(&k, &vec![4, 5]).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(map.get(&k), Some(vec![4, 5]));
        assert_eq!(map.remove(&k), Some(vec![4, 5]));
        assert!(map.is_empty());
        assert_eq!(map.put(&k, &vec![0]).unwrap(), None, "put never inserts");
    }

    #[test]
    fn mixed_pair_uses_allocator_mode() {
        let map: Dlht<u64, Vec<u8>> = Dlht::with_capacity(128);
        assert_eq!(map.mode(), "allocator");
        for i in 0..200u64 {
            assert!(map.insert(&i, &vec![i as u8; 16]).unwrap());
        }
        for i in 0..200u64 {
            assert_eq!(map.get(&i), Some(vec![i as u8; 16]));
        }
        assert_eq!(map.len(), 200);
        // Inline-encodable keys on the allocator path may use any value,
        // including the words reserved by the Inlined mode.
        assert!(map.insert(&u64::MAX, &vec![1]).unwrap());
        assert_eq!(map.get(&u64::MAX), Some(vec![1]));
    }

    #[test]
    fn reserved_inline_keys_are_rejected() {
        let map: Dlht<u64, u64> = Dlht::with_capacity(64);
        assert_eq!(map.insert(&u64::MAX, &1), Err(DlhtError::ReservedKey));
        assert_eq!(map.insert(&(u64::MAX - 1), &1), Err(DlhtError::ReservedKey));
        assert_eq!(map.upsert(&u64::MAX, &1), Err(DlhtError::ReservedKey));
        assert_eq!(map.get(&u64::MAX), None);
        // i64: -1 and -2 encode to the reserved words.
        let signed: Dlht<i64, u64> = Dlht::with_capacity(64);
        assert_eq!(signed.insert(&-1, &1), Err(DlhtError::ReservedKey));
        assert_eq!(signed.insert(&-2, &1), Err(DlhtError::ReservedKey));
        assert!(signed.insert(&-3, &1).unwrap());
    }

    #[test]
    fn typed_batch_roundtrip_and_reuse() {
        let map: Dlht<u64, u64> = Dlht::with_capacity(256);
        let mut batch: TypedBatch<u64, u64> = TypedBatch::with_capacity(4);
        for round in 0..8u64 {
            batch.clear();
            batch.push_insert(&round, &(round * 10));
            batch.push_get(&round);
            batch.push_put(&round, &(round * 10 + 1));
            batch.push_delete(&round);
            map.execute(&mut batch, BatchPolicy::RunAll).unwrap();
            let out: Vec<_> = batch.responses().collect();
            assert_eq!(out[0], TypedResponse::Inserted(Ok(true)));
            assert_eq!(out[1], TypedResponse::Value(Some(round * 10)));
            assert_eq!(out[2], TypedResponse::Updated(Some(round * 10)));
            assert_eq!(out[3], TypedResponse::Deleted(Some(round * 10 + 1)));
        }
        assert!(map.is_empty());
    }

    #[test]
    fn typed_batch_stop_on_failure_marks_skipped() {
        let map: Dlht<u64, u64> = Dlht::with_capacity(64);
        let mut batch: TypedBatch<u64, u64> = TypedBatch::new();
        batch.push_insert(&1, &10);
        batch.push_insert(&1, &11); // duplicate -> failure
        batch.push_insert(&2, &20);
        map.execute(&mut batch, BatchPolicy::StopOnFailure).unwrap();
        assert_eq!(batch.response(0), Some(TypedResponse::Inserted(Ok(true))));
        assert_eq!(batch.response(1), Some(TypedResponse::Inserted(Ok(false))));
        assert_eq!(batch.response(2), Some(TypedResponse::Skipped));
        assert_eq!(map.get(&2), None, "skipped insert must not execute");
    }

    #[test]
    fn typed_batch_is_unsupported_in_allocator_mode() {
        // String -> u64 runs in Allocator mode, where the word-encoded batch
        // path does not exist. An empty batch never touches the key codec, so
        // this exercises exactly the mode check.
        let alloc: Dlht<String, u64> = Dlht::with_capacity(64);
        assert_eq!(alloc.mode(), "allocator");
        let mut batch: TypedBatch<String, u64> = TypedBatch::new();
        assert_eq!(
            alloc.execute(&mut batch, BatchPolicy::RunAll),
            Err(DlhtError::UnsupportedInMode)
        );
    }

    #[test]
    fn get_many_into_reuses_caller_buffer() {
        let inline: Dlht<u64, u64> = Dlht::with_capacity(512);
        for i in 0..100u64 {
            inline.insert(&i, &(i + 1)).unwrap();
        }
        let keys: Vec<u64> = (0..128).collect();
        let mut out = Vec::new();
        for _ in 0..3 {
            inline.get_many_into(&keys, &mut out);
            assert_eq!(out.len(), 128);
            for (i, v) in out.iter().enumerate() {
                let expect = if i < 100 { Some(i as u64 + 1) } else { None };
                assert_eq!(*v, expect);
            }
        }

        // Allocator path with the prefetch sweep.
        let bytes: Dlht<String, Vec<u8>> = Dlht::with_capacity(64);
        bytes.insert(&"x".to_string(), &vec![9]).unwrap();
        let mut bout = Vec::new();
        bytes.get_many_into(&["x".to_string(), "y".to_string()], &mut bout);
        assert_eq!(bout, vec![Some(vec![9]), None]);
    }

    #[test]
    fn get_many_batches_inline_and_alloc() {
        let inline: Dlht<u64, u64> = Dlht::with_capacity(256);
        for i in 0..64u64 {
            inline.insert(&i, &(i * 2)).unwrap();
        }
        let keys: Vec<u64> = (0..128).collect();
        let vals = inline.get_many(&keys);
        for (i, v) in vals.iter().enumerate() {
            let expect = if i < 64 { Some(i as u64 * 2) } else { None };
            assert_eq!(*v, expect);
        }

        let bytes: Dlht<String, Vec<u8>> = Dlht::with_capacity(64);
        bytes.insert(&"a".to_string(), &vec![1]).unwrap();
        let out = bytes.get_many(&["a".to_string(), "b".to_string()]);
        assert_eq!(out, vec![Some(vec![1]), None]);
    }

    #[test]
    fn sharded_facade_roundtrip_and_shard_stats() {
        for shards in [1usize, 2, 8] {
            let map: DlhtShards<u64, u64> = DlhtShards::with_capacity(shards, 512);
            assert_eq!(map.num_shards(), shards);
            for k in 0..200u64 {
                assert!(map.insert(&k, &(k * 2)).unwrap(), "shards {shards}");
            }
            assert_eq!(map.len(), 200);
            assert_eq!(map.get(&7), Some(14));
            assert_eq!(map.put(&7, &70), Some(14));
            assert_eq!(map.upsert(&7, &71).unwrap(), Some(70));
            assert_eq!(map.upsert(&1_000, &1).unwrap(), None);
            assert_eq!(map.remove(&1_000), Some(1));
            let occupied: usize = map.shard_stats().iter().map(|s| s.occupied_slots).sum();
            assert_eq!(occupied, map.stats().occupied_slots);
            let mut seen = 0;
            map.for_each(|_, _| seen += 1);
            assert_eq!(seen, 200);
            // Every key routes to a stable in-range shard.
            for k in 0..200u64 {
                assert!(map.shard_of(&k) < shards);
            }
        }
    }

    #[test]
    fn sharded_facade_typed_batches_keep_submission_order() {
        let map: DlhtShards<u64, u64> = DlhtShards::with_capacity(4, 512);
        let mut batch: TypedBatch<u64, u64> = TypedBatch::with_capacity(4);
        for round in 0..8u64 {
            batch.clear();
            batch.push_insert(&round, &(round * 10));
            batch.push_get(&round);
            batch.push_put(&round, &(round * 10 + 1));
            batch.push_delete(&round);
            map.execute(&mut batch, BatchPolicy::RunAll).unwrap();
            let out: Vec<_> = batch.responses().collect();
            assert_eq!(out[0], TypedResponse::Inserted(Ok(true)));
            assert_eq!(out[1], TypedResponse::Value(Some(round * 10)));
            assert_eq!(out[2], TypedResponse::Updated(Some(round * 10)));
            assert_eq!(out[3], TypedResponse::Deleted(Some(round * 10 + 1)));
        }
        assert!(map.is_empty());
    }

    #[test]
    fn sharded_facade_get_many_matches_serial_gets() {
        let map: DlhtShards<u64, u64> = DlhtShards::with_capacity(8, 1_024);
        for k in 0..100u64 {
            map.insert(&k, &(k + 1)).unwrap();
        }
        let keys: Vec<u64> = (0..128).collect();
        let mut out = Vec::new();
        for _ in 0..2 {
            map.get_many_into(&keys, &mut out);
            assert_eq!(out.len(), 128);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, map.get(&(i as u64)));
            }
        }
        assert_eq!(map.get_many(&keys), out);
    }

    #[test]
    #[should_panic(expected = "requires inline codecs")]
    fn sharded_facade_rejects_out_of_line_types() {
        let _ = DlhtShards::<String, u64>::with_capacity(2, 64);
    }

    #[test]
    fn concurrent_typed_access_both_modes() {
        let inline: Dlht<u64, u64> = Dlht::with_capacity(20_000);
        let bytes: Dlht<String, Vec<u8>> = Dlht::with_capacity(20_000);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let inline = &inline;
                let bytes = &bytes;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 1_000_000 + i;
                        inline.insert(&k, &i).unwrap();
                        bytes.insert(&format!("k-{k}"), &vec![t as u8; 8]).unwrap();
                    }
                });
            }
        });
        assert_eq!(inline.len(), 2_000);
        assert_eq!(bytes.len(), 2_000);
        assert_eq!(bytes.get(&"k-1000005".to_string()), Some(vec![1u8; 8]));
    }
}
