//! Tagged value pointers for the Allocator mode (§3.4.1, §3.4.2).
//!
//! In Allocator mode the 8-byte value word of a slot holds a pointer to the
//! out-of-line record instead of an inlined value. x86-64 pointers only use 48
//! bits, so the 16 most significant bits are overloaded:
//!
//! ```text
//!  63..60       59..48        47..0
//! +---------+-------------+----------------+
//! | key size| namespace id| 48-bit pointer |
//! +---------+-------------+----------------+
//! ```
//!
//! * **key size** (4 bits): length of an inlined (≤ 8 B) key, or 0 when the
//!   key is stored inside the record.
//! * **namespace id** (12 bits): 0..4096 namespaces (§3.4.2); keys with
//!   different namespace ids never conflict.

use crate::error::DlhtError;

/// Number of distinct namespaces supported (12 tag bits).
pub const MAX_NAMESPACES: u16 = 4096;

const PTR_BITS: u32 = 48;
const PTR_MASK: u64 = (1 << PTR_BITS) - 1;
const NS_SHIFT: u32 = 48;
const NS_MASK: u64 = 0xFFF;
const KEYSIZE_SHIFT: u32 = 60;

/// A value word carrying a 48-bit pointer, a namespace id, and an inline key
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedPtr(pub u64);

impl TaggedPtr {
    /// Pack a pointer with its namespace and inline key size (0 or 1..=8).
    ///
    /// # Errors
    /// Returns [`DlhtError::InvalidNamespace`] if `namespace >= 4096`.
    ///
    /// # Panics
    /// Panics (debug assertion) if the pointer does not fit in 48 bits or the
    /// key size exceeds 8.
    pub fn pack(ptr: *mut u8, namespace: u16, key_size: usize) -> Result<TaggedPtr, DlhtError> {
        if namespace as u64 > NS_MASK {
            return Err(DlhtError::InvalidNamespace);
        }
        debug_assert!(key_size <= 8, "inline key size must be 0..=8");
        let addr = ptr as u64;
        debug_assert_eq!(addr & !PTR_MASK, 0, "pointer exceeds 48 bits");
        Ok(TaggedPtr(
            (addr & PTR_MASK)
                | ((namespace as u64 & NS_MASK) << NS_SHIFT)
                | ((key_size as u64 & 0xF) << KEYSIZE_SHIFT),
        ))
    }

    /// The 48-bit pointer.
    // ESCAPE: pure bit-field accessor on a copied word — it dereferences
    // nothing and confers no lifetime. Whether the address may be followed
    // is decided by the caller's epoch guard, not by this decoder.
    #[inline]
    pub fn ptr(self) -> *mut u8 {
        (self.0 & PTR_MASK) as *mut u8
    }

    /// The namespace id.
    #[inline]
    pub fn namespace(self) -> u16 {
        ((self.0 >> NS_SHIFT) & NS_MASK) as u16
    }

    /// The inline key size (0 when the key lives in the record).
    #[inline]
    pub fn key_size(self) -> usize {
        ((self.0 >> KEYSIZE_SHIFT) & 0xF) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let fake = 0x0000_7ffd_1234_5678u64 as *mut u8;
        let t = TaggedPtr::pack(fake, 77, 8).unwrap();
        assert_eq!(t.ptr(), fake);
        assert_eq!(t.namespace(), 77);
        assert_eq!(t.key_size(), 8);
    }

    #[test]
    fn zero_values() {
        let t = TaggedPtr::pack(std::ptr::null_mut(), 0, 0).unwrap();
        assert!(t.ptr().is_null());
        assert_eq!(t.namespace(), 0);
        assert_eq!(t.key_size(), 0);
        assert_eq!(t.0, 0);
    }

    #[test]
    fn namespace_bounds_are_enforced() {
        assert!(TaggedPtr::pack(std::ptr::null_mut(), 4095, 0).is_ok());
        assert_eq!(
            TaggedPtr::pack(std::ptr::null_mut(), 4096, 0),
            Err(DlhtError::InvalidNamespace)
        );
    }

    #[test]
    fn real_allocation_pointers_roundtrip() {
        // Pointers from the allocator must fit in 48 bits on x86-64/Linux.
        for _ in 0..8 {
            let b: Box<u64> = Box::new(7);
            let raw = Box::into_raw(b) as *mut u8;
            let t = TaggedPtr::pack(raw, 4095, 5).unwrap();
            assert_eq!(t.ptr(), raw);
            assert_eq!(t.namespace(), 4095);
            assert_eq!(t.key_size(), 5);
            // SAFETY: round-tripping the Box we just leaked.
            drop(unsafe { Box::from_raw(raw as *mut u64) });
        }
    }
}

#[cfg(test)]
mod proptests {
    //! Deterministic pseudo-random property checks (offline replacement for
    //! the former proptest strategies).

    use super::*;
    use dlht_util::splitmix64 as splitmix;

    #[test]
    fn roundtrip_any_48bit_pointer() {
        let mut rng = 0x7A66_u64;
        for i in 0..4_096u64 {
            let addr = splitmix(&mut rng) & ((1 << 48) - 1);
            let ns = (splitmix(&mut rng) % 4096) as u16;
            let ks = (splitmix(&mut rng) % 9) as usize;
            let t = TaggedPtr::pack(addr as *mut u8, ns, ks).unwrap();
            assert_eq!(t.ptr() as u64, addr, "case {i}");
            assert_eq!(t.namespace(), ns, "case {i}");
            assert_eq!(t.key_size(), ks, "case {i}");
        }
    }
}
