//! The shared scenario harness behind every figure/table binary.
//!
//! Each binary is one registered [`Scenario`]: it declares which paper figure
//! it reproduces, which axes it sweeps, and what the expected qualitative
//! result is. [`run_scenario`] wraps the binary's body with the common
//! driver: it reads the run configuration ([`BenchScale`] — keys, threads,
//! seconds, shards, **seed**, smoke/full tier), prints the human-readable
//! header and tables to **stderr**, and streams one schema-versioned JSON
//! record per data point to **stdout** and to `BENCH_<scenario>.json`
//! (`DLHT_BENCH_DIR`, default the working directory) — the repo's
//! machine-readable perf trajectory that `bench_report` diffs across runs.
//!
//! Record schema (`dlht-bench/v1`, JSON lines):
//!
//! ```json
//! {"type":"header","schema":"dlht-bench/v1","scenario":"fig03_get_throughput",
//!  "figure":"Figure 3","tier":"smoke","keys":20000,"threads":[1,2],
//!  "secs":0.06,"warmup_secs":0.02,"shards":4,"seed":53735}
//! {"type":"point","scenario":"fig03_get_throughput","series":"DLHT",
//!  "axes":{"threads":2},"mops":34.1,"total_ops":2100000,"elapsed_s":0.061,
//!  "lat":{"samples":2100000,"mean_ns":57.2,"p50_ns":48,"p90_ns":88,
//!  "p99_ns":160,"p999_ns":320,"max_ns":81920},
//!  "stats":{"bins":8192,"occupancy":0.41,"resizes":0,...},"retired":0}
//! {"type":"footer","scenario":"fig03_get_throughput","points":16,"wall_s":4.2}
//! ```
//!
//! Measured points go through an explicit **warmup phase**
//! ([`BenchScale::warmup`]) followed by the **measure phase** with percentile
//! latency capture (via `dlht_workloads::hist`), and throughput plus the
//! table's [`TableStats`] / retired-index count are recorded alongside. The
//! exception is the cold-start scenarios (fig07 population, fig08 resize
//! timeline), where the growth transient from a cold table **is** the
//! measurement and a warmup pass would erase it.

use crate::json::Json;
use dlht_baselines::{KvBackend, MapKind};
use dlht_core::stats::TableStats;
use dlht_workloads::{
    prepopulate, run_workload, BenchScale, LatencyHistogram, RunResult, Table, WorkloadSpec,
};
use std::io::Write;
use std::time::Instant;

/// Version tag embedded in every `BENCH_*.json` header.
pub const SCHEMA: &str = "dlht-bench/v1";

/// Static description of one registered benchmark scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name, also the `BENCH_<name>.json` artifact name.
    pub name: &'static str,
    /// Binary name (`cargo run --release -p dlht-bench --bin <bin>`).
    /// Identical to `name` for the paper figures; the wire-protocol scenario
    /// keeps its artifact (`BENCH_server.json`) shorter than its binary
    /// (`bench_server`).
    pub bin: &'static str,
    /// Paper figure/table/section this reproduces.
    pub figure: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The paper's experimental setup for this figure.
    pub paper_setup: &'static str,
    /// The axes this scenario sweeps (human-readable).
    pub axes: &'static str,
    /// Expected qualitative result (printed after the tables; the
    /// pass/fail-by-eye criterion docs/BENCHMARKS.md tabulates).
    pub expected: &'static str,
}

/// Every figure/table scenario, in `run_all` execution order.
pub const REGISTRY: &[Scenario] = &[
    Scenario {
        name: "fig01_overview",
        bin: "fig01_overview",
        figure: "Figure 1",
        title: "headline Get and InsDel throughput of all maps",
        paper_setup: "2x18-core Xeon, 64 threads, 100M prepopulated keys, uniform access",
        axes: "map kind × {Get, InsDel} at the highest thread count",
        expected: "DLHT leads both workloads (paper: 1660 M Gets/s; ~12x GrowT on deletes)",
    },
    Scenario {
        name: "table1_features",
        bin: "table1_features",
        figure: "Table 1 + §5.1.5",
        title: "feature matrix and occupancy-until-resize",
        paper_setup: "feature matrix of GrowT, Folly, DRAMHiT, MICA, CLHT, DLHT; wyhash occupancy",
        axes: "map kind; occupancy measured at first resize",
        expected: "DLHT resizes at 61-72% occupancy, CLHT at 1-5%, open addressing rebuilds at 30-50%",
    },
    Scenario {
        name: "fig03_get_throughput",
        bin: "fig03_get_throughput",
        figure: "Figure 3",
        title: "Get throughput vs thread count",
        paper_setup: "100% Gets, uniform over 100M keys, 1..71 threads",
        axes: "threads × fastest map kinds (incl. sharded DLHT)",
        expected: "DLHT > DRAMHiT-like > (CLHT, GrowT-like, Folly-like, DLHT-NoBatch) > MICA-like",
    },
    Scenario {
        name: "fig04_power_efficiency",
        bin: "fig04_power_efficiency",
        figure: "Figure 4",
        title: "Get power-efficiency (modeled)",
        paper_setup: "100% Gets; paper peaks at 3.35 M req/s/W for DLHT (RAPL → model substitution)",
        axes: "threads × map kind; modeled watts from the feature matrix",
        expected: "DLHT most efficient, then DRAMHiT-like, then the resizable baselines",
    },
    Scenario {
        name: "fig05_insdel_throughput",
        bin: "fig05_insdel_throughput",
        figure: "Figure 5",
        title: "InsDel throughput vs thread count",
        paper_setup: "Insert immediately followed by Delete of the same key; empty 100M-capacity tables",
        axes: "threads × {DLHT, DLHT-NoBatch, CLHT, GrowT-like, MICA-like}",
        expected: "DLHT ~3x CLHT and >10x GrowT-like (which must migrate to shed tombstones)",
    },
    Scenario {
        name: "fig06_put_heavy",
        bin: "fig06_put_heavy",
        figure: "Figure 6",
        title: "Put-heavy (50% Get / 50% Put) throughput",
        paper_setup: "50% Gets + 50% Puts over 100M prepopulated keys; CLHT omitted (no Puts)",
        axes: "threads × map kind",
        expected: "DLHT first (paper: 1042 M req/s), DRAMHiT-like close, MICA-like last",
    },
    Scenario {
        name: "fig07_population",
        bin: "fig07_population",
        figure: "Figure 7",
        title: "population throughput of a growing index",
        paper_setup: "800M keys inserted into a small growing index",
        axes: "threads × resizable map kinds",
        expected: "DLHT fastest (parallel non-blocking resize; paper 3.9x GrowT, 8x CLHT)",
    },
    Scenario {
        name: "fig08_resize_timeline",
        bin: "fig08_resize_timeline",
        figure: "Figure 8",
        title: "Gets and Inserts during a non-blocking resize",
        paper_setup: "32 Get threads + 32 Insert threads, 800M -> 1.6B keys",
        axes: "time (ms) × {Gets, Inserts}, monolithic and sharded",
        expected: "Get throughput dips during transfers but never reaches zero; shard-local resizes shrink the dips",
    },
    Scenario {
        name: "fig09_value_size",
        bin: "fig09_value_size",
        figure: "Figure 9",
        title: "throughput vs value size (8B..1.5KB)",
        paper_setup: "8B..1.5KB values; Gets return pointers so only Get-Access pays for large values",
        axes: "value bytes × {Get, InsDel, Get-Access}, single thread",
        expected: "Get nearly flat (pointer API), InsDel degrades with allocation size, Get-Access drops fastest",
    },
    Scenario {
        name: "fig10_key_size",
        bin: "fig10_key_size",
        figure: "Figure 10",
        title: "throughput vs key size (8B..256B)",
        paper_setup: "8B..256B keys, 8B values; >8B keys leave only a signature in the slot",
        axes: "key bytes × {Get, InsDel}, single thread",
        expected: "clear drop from 8B to 16B keys (extra dereference), gentle decline after",
    },
    Scenario {
        name: "fig11_index_size",
        bin: "fig11_index_size",
        figure: "Figure 11",
        title: "throughput vs index size",
        paper_setup: "1MB (8K keys) .. 64GB (1B keys) index",
        axes: "prepopulated keys × {Get, Get-NoBatch, InsDel}",
        expected: "Get and Get-NoBatch converge for cache-resident sizes; the gap widens as the index grows",
    },
    Scenario {
        name: "fig12_batch_size",
        bin: "fig12_batch_size",
        figure: "Figure 12",
        title: "throughput vs batch size (1..128)",
        paper_setup: "batch 1..128; gains saturate around 24 (MSHR/TLB limits)",
        axes: "batch size × {Get, Get-Pipelined, Get-Resizing, InsDel}",
        expected: "throughput rises with batch size and saturates; the pipeline tracks the batch curve",
    },
    Scenario {
        name: "fig13_skew",
        bin: "fig13_skew",
        figure: "Figure 13",
        title: "skewed access with 1000 hot keys",
        paper_setup: "0%..100% of accesses to 1000 hot keys",
        axes: "hot-access % × {Get, Get-Sharded, Get-NoBatch, InsDel-hot-deletes}",
        expected: "Get rises with skew; at 100% skew Get-NoBatch overtakes batched Get; InsDel falls under contention",
    },
    Scenario {
        name: "fig14_features",
        bin: "fig14_features",
        figure: "Figure 14",
        title: "throughput cost of enabling features",
        paper_setup: "default -> +resizing -> +wyhash -> +variable sizes -> +namespaces -> no mimalloc; 32B values",
        axes: "feature configuration × {Get, InsDel}",
        expected: "each feature shaves a little throughput; the allocator swap mainly hurts InsDel",
    },
    Scenario {
        name: "fig15_latency",
        bin: "fig15_latency",
        figure: "Figure 15",
        title: "average and p99 latency vs offered load",
        paper_setup: "average in the 100s of ns, tail below 1us even under high load",
        axes: "threads × {Get, InsDel}, latency recording on",
        expected: "latency grows with load; InsDel above Get; p99 well under a microsecond at low load",
    },
    Scenario {
        name: "fig16_single_thread",
        bin: "fig16_single_thread",
        figure: "Figure 16",
        title: "single-threaded synchronization-free optimizations",
        paper_setup: "InsDel +31%, InsDel-Resize +35%, InsDel-Resize-NoBatch +91%, Get unchanged",
        axes: "workload × {thread-safe DLHT, single-thread optimized}",
        expected: "the optimized variant wins most where CASes and enter/leave notifications dominate",
    },
    Scenario {
        name: "fig17_lock_manager",
        bin: "fig17_lock_manager",
        figure: "Figure 17",
        title: "database lock manager over HashSet mode",
        paper_setup: "locks/unlocks per second; batching peaks near 1.5B ops/s, ~2.2x unbatched",
        axes: "threads × {batched, unbatched}",
        expected: "batched locking scales with threads and stays ahead of the unbatched variant",
    },
    Scenario {
        name: "fig18_ycsb",
        bin: "fig18_ycsb",
        figure: "Figure 18",
        title: "YCSB A/B/C/F mixes",
        paper_setup: "read-only C roughly 2x the update-only F at saturation",
        axes: "threads × YCSB mix",
        expected: "all mixes scale with threads; C (read-only) highest, F (update-only) lowest",
    },
    Scenario {
        name: "fig19_oltp",
        bin: "fig19_oltp",
        figure: "Figure 19",
        title: "TATP and Smallbank transactions per second",
        paper_setup: "1M TATP subscribers, 10M Smallbank accounts; paper: 175M / 129M txns/s at 64 threads",
        axes: "threads × {TATP, Smallbank}",
        expected: "both scale with threads; TATP (80% reads) ahead of Smallbank (15% reads)",
    },
    Scenario {
        name: "fig20_hash_join",
        bin: "fig20_hash_join",
        figure: "Figure 20",
        title: "non-partitioned hash join (workload A)",
        paper_setup: "build 2^27 tuples, probe 2^31; DLHT reaches 1.4B tuples/s, 2.2x DLHT-NoBatch",
        axes: "threads × {batched, unbatched}",
        expected: "batching (prefetching the probe side) clearly ahead of the unbatched join",
    },
    Scenario {
        name: "fig_cxl_emulation",
        bin: "fig_cxl_emulation",
        figure: "§5.3.2",
        title: "remote-memory (CXL) emulation",
        paper_setup: "paper pins DLHT memory on the remote socket; here a per-miss delay is injected",
        axes: "injected latency (ns) × {batched, unbatched}",
        expected: "the batched/unbatched gap widens with the emulated memory latency (paper: 2.9x)",
    },
    Scenario {
        name: "table5_summary",
        bin: "table5_summary",
        figure: "Table 5",
        title: "DLHT advantage over each baseline",
        paper_setup: "CLHT 3.5x slower Gets / 8x slower population; GrowT 12.8x slower InsDel; MICA 4.8x; DRAMHiT 1.7x",
        axes: "baseline × {Get ratio, InsDel ratio, Population ratio}",
        expected: "every ratio > 1 (DLHT faster), with the InsDel gap largest against GrowT-like",
    },
    Scenario {
        name: "server",
        bin: "bench_server",
        figure: "dlht-net (no paper counterpart)",
        title: "pipelined wire-protocol serving over the sharded table",
        paper_setup: "Pelikan-style pipelined TCP service; wire pipelining drains into DLHT's prefetched batch execution (§3.3)",
        axes: "connections × pipeline depth (GETs over TCP loopback, plus YCSB-A over the wire)",
        expected: "pipelined (depth >= 8) throughput >= 2x unpipelined at the same connection count",
    },
    Scenario {
        name: "cache",
        bin: "bench_cache",
        figure: "cache persona (fig09/fig11 memory-awareness applied)",
        title: "hit-ratio vs memory budget under zipfian cache-aside churn",
        paper_setup: "memcache-style cache over the TTL/eviction CacheMap; budget swept as a fraction of the working set, LRU vs FIFO",
        axes: "budget fraction × {LRU, FIFO} (zipfian cache-aside), plus an expiry-storm drain",
        expected: "hit-ratio rises with budget, LRU >= FIFO at every budget, resident bytes stay under the watermark, and the expiry storm drains to zero",
    },
];

/// Look up a scenario by binary name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// A figure/table sweep point: one map kind at one thread count, with the
/// structural statistics captured right after the measured phase.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Hashtable under test.
    pub kind: MapKind,
    /// Threads used.
    pub threads: usize,
    /// Measured result.
    pub result: RunResult,
    /// Index statistics after the measured run (resizes, occupancy, ...).
    pub stats: TableStats,
    /// Retired-but-unfreed index generations after the measured run.
    pub retired: usize,
}

enum Sink {
    File(std::io::BufWriter<std::fs::File>, std::path::PathBuf),
    Memory(Vec<String>),
}

/// The per-run driver handle every scenario body receives: the run
/// configuration plus the JSON point emitter.
pub struct ScenarioCtx {
    /// The scenario being run.
    pub meta: &'static Scenario,
    /// The run configuration (one source of truth, recorded in the header —
    /// including the RNG seed every workload stream derives from).
    pub scale: BenchScale,
    sink: Sink,
    echo_stdout: bool,
    points: usize,
    started: Instant,
}

impl ScenarioCtx {
    fn create(meta: &'static Scenario, scale: BenchScale, echo_stdout: bool) -> ScenarioCtx {
        let dir = std::env::var("DLHT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", meta.name));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        let mut ctx = ScenarioCtx {
            meta,
            scale,
            sink: Sink::File(std::io::BufWriter::new(file), path),
            echo_stdout,
            points: 0,
            started: Instant::now(),
        };
        ctx.emit_header();
        ctx
    }

    /// An in-memory context for tests: nothing touches the filesystem or
    /// stdout; emitted lines are collected via [`ScenarioCtx::lines`].
    pub fn for_test(meta: &'static Scenario, scale: BenchScale) -> ScenarioCtx {
        let mut ctx = ScenarioCtx {
            meta,
            scale,
            sink: Sink::Memory(Vec::new()),
            echo_stdout: false,
            points: 0,
            started: Instant::now(),
        };
        ctx.emit_header();
        ctx
    }

    /// The JSON lines emitted so far (test sink only).
    pub fn lines(&self) -> &[String] {
        match &self.sink {
            Sink::Memory(lines) => lines,
            Sink::File(..) => &[],
        }
    }

    /// Number of data points emitted so far.
    pub fn points(&self) -> usize {
        self.points
    }

    fn emit_line(&mut self, json: Json) {
        let line = json.render();
        match &mut self.sink {
            Sink::File(w, path) => {
                writeln!(w, "{line}")
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                if self.echo_stdout {
                    // Best-effort echo: a consumer closing the pipe (e.g.
                    // `| head`) must not kill the run — the file is the
                    // artifact of record.
                    let _ = writeln!(std::io::stdout(), "{line}");
                }
            }
            Sink::Memory(lines) => lines.push(line),
        }
    }

    fn emit_header(&mut self) {
        let header = Json::obj([
            ("type".to_string(), Json::from("header")),
            ("schema".to_string(), Json::from(SCHEMA)),
            ("scenario".to_string(), Json::from(self.meta.name)),
            ("figure".to_string(), Json::from(self.meta.figure)),
            ("title".to_string(), Json::from(self.meta.title)),
            ("tier".to_string(), Json::from(self.scale.tier.name())),
            ("keys".to_string(), Json::from(self.scale.keys)),
            (
                "threads".to_string(),
                Json::Arr(self.scale.threads.iter().map(|&t| Json::from(t)).collect()),
            ),
            // The *effective* (clamp-applied) measure duration, so the
            // recorded config is the one that drove the run even when
            // DLHT_SECS was below the 50ms floor.
            (
                "secs".to_string(),
                Json::from(self.scale.duration().as_secs_f64()),
            ),
            (
                "warmup_secs".to_string(),
                Json::from(self.scale.warmup().as_secs_f64()),
            ),
            ("shards".to_string(), Json::from(self.scale.shards)),
            ("seed".to_string(), Json::from(self.scale.seed)),
        ]);
        self.emit_line(header);
    }

    /// Start building one data point for `series` (a map kind or workload
    /// variant name). Attach axes/measurements, then [`PointBuilder::emit`].
    pub fn point(&mut self, series: impl Into<String>) -> PointBuilder<'_> {
        PointBuilder {
            ctx: self,
            series: series.into(),
            axes: Vec::new(),
            mops: None,
            total_ops: None,
            elapsed_s: None,
            lat: None,
            stats: None,
            retired: None,
            extra: Vec::new(),
        }
    }

    /// Run `spec` against `map` with the harness's two explicit phases:
    /// a warm-up pass ([`BenchScale::warmup`], discarded) followed by the
    /// measured pass with percentile-latency capture (skipped in pipeline
    /// mode, where per-op submit-side timing would be wrong). The spec's seed
    /// is overwritten with the run-wide [`BenchScale::seed`] so the recorded
    /// configuration is the one that drove the keys.
    pub fn measure(&self, map: &dyn KvBackend, spec: &WorkloadSpec) -> RunResult {
        let mut warm = spec.clone();
        warm.duration = self.scale.warmup();
        warm.record_latency = false;
        warm.seed = self.scale.seed;
        // Keep warmup inserts out of the measured pass's fresh-key space:
        // mixes whose inserts are not deleted again (insert_then_delete off)
        // would otherwise leave the warmup's keys resident and turn every
        // measured insert into a duplicate-key collision.
        warm.fresh_key_salt = 1 << 38;
        let _ = run_workload(map, &warm);

        let mut measured = spec.clone();
        measured.seed = self.scale.seed;
        if measured.pipeline_depth == 0 {
            measured.record_latency = true;
        }
        run_workload(map, &measured)
    }

    /// Run `spec_for(threads)` against every map kind in `kinds`
    /// (prepopulating each with `scale.keys` keys), through
    /// [`ScenarioCtx::measure`]'s warmup/measure phases, capturing stats and
    /// retired-index counts per point.
    pub fn sweep<F>(&self, kinds: &[MapKind], mut spec_for: F) -> Vec<SweepPoint>
    where
        F: FnMut(usize) -> WorkloadSpec,
    {
        let mut points = Vec::new();
        for &kind in kinds {
            for &threads in &self.scale.threads {
                let map = kind.build(self.scale.keys as usize * 2);
                prepopulate(map.as_ref(), self.scale.keys);
                let result = self.measure(map.as_ref(), &spec_for(threads));
                points.push(SweepPoint {
                    kind,
                    threads,
                    result,
                    stats: map.stats(),
                    retired: map.retired_indexes(),
                });
            }
        }
        points
    }

    /// Emit one JSON point per sweep point (series = map name, axis =
    /// threads, plus throughput/latency/stats capture).
    pub fn emit_sweep(&mut self, points: &[SweepPoint]) {
        for p in points {
            self.point(p.kind.name())
                .axis("threads", p.threads)
                .result(&p.result)
                .stats(&p.stats)
                .retired(p.retired)
                .emit();
        }
    }

    /// Print a human-readable table (stderr; stdout carries the JSON lines).
    pub fn table(&mut self, table: &Table) {
        match &self.sink {
            Sink::Memory(_) => {}
            Sink::File(..) => table.print_stderr(),
        }
    }

    /// Print a human-readable note line (stderr).
    pub fn note(&self, msg: &str) {
        if matches!(self.sink, Sink::File(..)) {
            eprintln!("{msg}");
        }
    }

    fn finish(mut self) {
        let footer = Json::obj([
            ("type".to_string(), Json::from("footer")),
            ("scenario".to_string(), Json::from(self.meta.name)),
            ("points".to_string(), Json::from(self.points)),
            (
                "wall_s".to_string(),
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
        ]);
        self.emit_line(footer);
        if let Sink::File(w, path) = &mut self.sink {
            w.flush()
                .unwrap_or_else(|e| panic!("cannot flush {}: {e}", path.display()));
            eprintln!("Expected shape: {}.", self.meta.expected);
            eprintln!(
                "Wrote {} ({} points, {:.1}s).",
                path.display(),
                self.points,
                self.started.elapsed().as_secs_f64()
            );
        }
    }
}

/// One data point under construction; finalize with [`PointBuilder::emit`].
pub struct PointBuilder<'a> {
    ctx: &'a mut ScenarioCtx,
    series: String,
    axes: Vec<(String, Json)>,
    mops: Option<f64>,
    total_ops: Option<u64>,
    elapsed_s: Option<f64>,
    lat: Option<Json>,
    stats: Option<Json>,
    retired: Option<usize>,
    extra: Vec<(String, Json)>,
}

impl PointBuilder<'_> {
    /// Attach one swept-axis coordinate (threads, batch size, hot %, ...).
    pub fn axis(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.axes.push((key.to_string(), value.into()));
        self
    }

    /// Record throughput in million requests per second.
    pub fn mops(mut self, mops: f64) -> Self {
        self.mops = Some(mops);
        self
    }

    /// Record the total operation count.
    pub fn ops(mut self, ops: u64) -> Self {
        self.total_ops = Some(ops);
        self
    }

    /// Capture everything a [`RunResult`] carries (throughput, op count,
    /// elapsed time, latency summary when recorded).
    pub fn result(mut self, r: &RunResult) -> Self {
        self.mops = Some(r.mops);
        self.total_ops = Some(r.total_ops);
        self.elapsed_s = Some(r.elapsed.as_secs_f64());
        if r.latency.count() > 0 {
            self = self.latency(&r.latency);
        }
        self
    }

    /// Capture a latency histogram's percentile summary.
    pub fn latency(mut self, hist: &LatencyHistogram) -> Self {
        let s = hist.summary();
        self.lat = Some(Json::obj([
            ("samples".to_string(), Json::from(s.samples)),
            ("mean_ns".to_string(), Json::from(s.mean_ns)),
            ("p50_ns".to_string(), Json::from(s.p50_ns)),
            ("p90_ns".to_string(), Json::from(s.p90_ns)),
            ("p99_ns".to_string(), Json::from(s.p99_ns)),
            ("p999_ns".to_string(), Json::from(s.p999_ns)),
            ("max_ns".to_string(), Json::from(s.max_ns)),
        ]));
        self
    }

    /// Capture the table's structural statistics (occupancy, resizes, ...).
    pub fn stats(mut self, stats: &TableStats) -> Self {
        self.stats = Some(Json::obj([
            ("bins".to_string(), Json::from(stats.bins)),
            ("links_used".to_string(), Json::from(stats.links_used)),
            (
                "occupied_slots".to_string(),
                Json::from(stats.occupied_slots),
            ),
            ("max_slots".to_string(), Json::from(stats.max_slots)),
            ("occupancy".to_string(), Json::from(stats.occupancy)),
            ("resizes".to_string(), Json::from(stats.resizes)),
            ("generation".to_string(), Json::from(stats.generation)),
            ("index_bytes".to_string(), Json::from(stats.index_bytes)),
        ]));
        self
    }

    /// Capture the retired-but-unfreed index generation count.
    pub fn retired(mut self, retired: usize) -> Self {
        self.retired = Some(retired);
        self
    }

    /// Attach a scenario-specific extra measurement (modeled watts, conflict
    /// counts, speedup ratios, ...).
    pub fn extra(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.extra.push((key.to_string(), value.into()));
        self
    }

    /// Write the point as one JSON line (file + stdout) and count it.
    pub fn emit(self) {
        let mut pairs: Vec<(String, Json)> = vec![
            ("type".to_string(), Json::from("point")),
            ("scenario".to_string(), Json::from(self.ctx.meta.name)),
            ("series".to_string(), Json::Str(self.series)),
            ("axes".to_string(), Json::Obj(self.axes)),
        ];
        if let Some(m) = self.mops {
            pairs.push(("mops".to_string(), Json::from(m)));
        }
        if let Some(n) = self.total_ops {
            pairs.push(("total_ops".to_string(), Json::from(n)));
        }
        if let Some(e) = self.elapsed_s {
            pairs.push(("elapsed_s".to_string(), Json::from(e)));
        }
        if let Some(lat) = self.lat {
            pairs.push(("lat".to_string(), lat));
        }
        if let Some(stats) = self.stats {
            pairs.push(("stats".to_string(), stats));
        }
        if let Some(r) = self.retired {
            pairs.push(("retired".to_string(), Json::from(r)));
        }
        if !self.extra.is_empty() {
            pairs.push(("extra".to_string(), Json::Obj(self.extra)));
        }
        self.ctx.points += 1;
        self.ctx.emit_line(Json::Obj(pairs));
    }
}

/// The entry point every figure binary wraps its body in: looks up `name` in
/// the [`REGISTRY`], reads the [`BenchScale`] configuration, prints the
/// header (stderr), opens `BENCH_<name>.json`, runs `body`, then prints the
/// expected-shape line and flushes the artifact.
pub fn run_scenario(name: &str, body: impl FnOnce(&mut ScenarioCtx)) {
    let meta = find(name)
        .unwrap_or_else(|| panic!("scenario {name} is not in dlht_bench::scenario::REGISTRY"));
    let scale = BenchScale::from_env();
    eprintln!("== Reproducing {} ({}) ==", meta.figure, meta.title);
    eprintln!("Paper setup    : {}", meta.paper_setup);
    eprintln!("Swept axes     : {}", meta.axes);
    eprintln!(
        "This run       : tier {}, {} keys, threads {:?}, {:.2}s measure + {:.2}s warmup per point, seed {} (DLHT_KEYS/DLHT_THREADS/DLHT_SECS/DLHT_SEED, --smoke/--full)",
        scale.tier.name(),
        scale.keys,
        scale.threads,
        scale.duration().as_secs_f64(),
        scale.warmup().as_secs_f64(),
        scale.seed,
    );
    eprintln!();
    let mut ctx = ScenarioCtx::create(meta, scale, true);
    body(&mut ctx);
    ctx.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn smoke_scale() -> BenchScale {
        BenchScale {
            keys: 2_000,
            threads: vec![1, 2],
            secs: 0.03,
            shards: 2,
            seed: 7,
            tier: dlht_workloads::Tier::Smoke,
        }
    }

    #[test]
    fn registry_names_are_unique_and_cover_all_figures() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        assert_eq!(
            names.len(),
            24,
            "one scenario per figure/table binary plus the wire-protocol server and the cache persona"
        );
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24, "duplicate scenario names");
        let mut bins: Vec<&str> = REGISTRY.iter().map(|s| s.bin).collect();
        bins.sort_unstable();
        bins.dedup();
        assert_eq!(bins.len(), 24, "duplicate scenario binaries");
        for fig in [
            "Figure 1",
            "Table 1",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12",
            "Figure 13",
            "Figure 14",
            "Figure 15",
            "Figure 16",
            "Figure 17",
            "Figure 18",
            "Figure 19",
            "Figure 20",
            "§5.3.2",
            "Table 5",
            "dlht-net",
        ] {
            assert!(
                REGISTRY.iter().any(|s| s.figure.starts_with(fig)),
                "no scenario covers {fig}"
            );
        }
        assert!(find("fig03_get_throughput").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn points_emit_schema_versioned_json_lines() {
        let meta = find("fig03_get_throughput").unwrap();
        let mut ctx = ScenarioCtx::for_test(meta, smoke_scale());
        let map = MapKind::Dlht.build(4_096);
        prepopulate(map.as_ref(), 1_000);
        let spec = WorkloadSpec::get_default(1_000, 2, Duration::from_millis(20));
        let r = ctx.measure(map.as_ref(), &spec);
        assert!(r.total_ops > 0);
        assert!(
            r.latency.count() > 0,
            "measure() must capture percentile latency"
        );
        ctx.point("DLHT")
            .axis("threads", 2usize)
            .result(&r)
            .stats(&map.stats())
            .retired(map.retired_indexes())
            .extra("note", "test")
            .emit();
        assert_eq!(ctx.points(), 1);

        let lines = ctx.lines().to_vec();
        assert_eq!(lines.len(), 2, "header + one point");
        let header = Json::parse(&lines[0]).unwrap();
        assert_eq!(header.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(header.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(header.get("tier").and_then(Json::as_str), Some("smoke"));
        let point = Json::parse(&lines[1]).unwrap();
        assert_eq!(point.get("series").and_then(Json::as_str), Some("DLHT"));
        assert_eq!(
            point
                .get("axes")
                .and_then(|a| a.get("threads"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert!(point.get("mops").and_then(Json::as_f64).unwrap() > 0.0);
        let lat = point.get("lat").expect("latency summary captured");
        assert!(lat.get("p99_ns").and_then(Json::as_u64).unwrap() > 0);
        let stats = point.get("stats").expect("table stats captured");
        assert!(stats.get("bins").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(point.get("retired").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn sweep_runs_warmup_and_measure_for_every_kind_and_thread_count() {
        let meta = find("fig03_get_throughput").unwrap();
        let mut ctx = ScenarioCtx::for_test(meta, smoke_scale());
        let keys = ctx.scale.keys;
        let duration = ctx.scale.duration();
        let points = ctx.sweep(&[MapKind::Dlht, MapKind::Clht], |threads| {
            WorkloadSpec::get_default(keys, threads, duration)
        });
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.result.total_ops > 0));
        ctx.emit_sweep(&points);
        assert_eq!(ctx.points(), 4);
        // 1 header + 4 points; every point parses and carries stats.
        for line in &ctx.lines()[1..] {
            let j = Json::parse(line).unwrap();
            assert_eq!(j.get("type").and_then(Json::as_str), Some("point"));
            assert!(j.get("stats").is_some());
        }
    }
}
