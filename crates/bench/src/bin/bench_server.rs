//! `server` scenario: throughput of the `dlht-net` wire protocol over TCP
//! loopback, sweeping connection count × client pipeline depth.
//!
//! The scenario starts an in-process [`DlhtServer`] over a prepopulated
//! [`ShardedTable`] on an ephemeral port, then drives 100%-GET traffic from
//! `connections` client threads (one TCP connection each, mirroring the
//! server's thread-per-connection model). Depth 1 issues one request per
//! network round trip; depth `d` pipelines `d` requests per round trip,
//! which the server drains into **one** prefetched batch execution — so the
//! depth axis is simultaneously the wire-pipelining axis and the server-side
//! batch-size axis (paper §3.3 over a socket).
//!
//! One extra series runs YCSB A *over the wire* through [`RemoteBackend`],
//! demonstrating that the whole workload harness drives a remote table
//! unchanged (the same switch `fig18_ycsb --server <addr>` exposes).
//!
//! Expected shape (the acceptance bar for the subsystem): pipelined depth
//! ≥ 8 beats unpipelined (depth 1) by ≥ 2× at every connection count — each
//! point records its `speedup_vs_depth1`.

use dlht_bench::run_scenario;
use dlht_core::{KvBackend, Request, Response, ShardedTable};
use dlht_net::{DlhtClient, DlhtServer, RemoteBackend};
use dlht_workloads::ycsb::{run_ycsb, YcsbMix};
use dlht_workloads::{fmt_mops, prepopulate, Table, Xoshiro256};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline depths swept at every connection count (1 = no pipelining).
const DEPTHS: [usize; 3] = [1, 8, 32];

/// Drive 100%-GET traffic from `connections` clients at `depth`, returning
/// (total ops, wall time).
fn run_wire_gets(
    addr: std::net::SocketAddr,
    connections: usize,
    depth: usize,
    keys: u64,
    seed: u64,
    duration: Duration,
) -> (u64, Duration) {
    let started = Instant::now();
    let totals: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|tid| {
                s.spawn(move || {
                    let mut client = DlhtClient::connect(addr).expect("connect to bench server");
                    let mut rng = Xoshiro256::new(
                        seed ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut reqs: Vec<Request> = Vec::with_capacity(depth);
                    let mut resps: Vec<Response> = Vec::with_capacity(depth);
                    let deadline = Instant::now() + duration;
                    let mut ops = 0u64;
                    while Instant::now() < deadline {
                        reqs.clear();
                        for _ in 0..depth {
                            reqs.push(Request::Get(rng.next_below(keys.max(1))));
                        }
                        if depth == 1 {
                            let r = client.request(reqs[0]).expect("wire get");
                            std::hint::black_box(&r);
                        } else {
                            resps.clear();
                            client
                                .pipelined_into(&reqs, &mut resps)
                                .expect("pipelined wire gets");
                            std::hint::black_box(&resps);
                        }
                        ops += depth as u64;
                    }
                    ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (totals.iter().sum(), started.elapsed())
}

fn main() {
    run_scenario("server", |ctx| {
        let scale = ctx.scale.clone();
        let table = Arc::new(ShardedTable::with_capacity(
            scale.shards,
            scale.keys as usize * 2,
        ));
        prepopulate(&*table as &dyn KvBackend, scale.keys);
        let server = DlhtServer::bind("127.0.0.1:0", table).expect("bind bench server");
        let addr = server.local_addr();
        ctx.note(&format!(
            "Serving on {addr} ({} shards, {} keys prepopulated).",
            scale.shards, scale.keys
        ));

        let mut table_out = Table::new(
            "dlht-net — GET throughput over TCP loopback (M req/s)",
            &[
                "connections",
                "depth 1",
                "depth 8",
                "depth 32",
                "depth8/depth1",
            ],
        );
        let connection_counts = scale.threads.clone();
        for &connections in &connection_counts {
            let mut mops_by_depth: Vec<(usize, f64)> = Vec::new();
            for depth in DEPTHS {
                let seed = scale.seed_for(&format!("server/c{connections}/d{depth}"));
                // Warm-up pass (discarded): connections, caches, allocator.
                let _ = run_wire_gets(addr, connections, depth, scale.keys, seed, scale.warmup());
                let (ops, elapsed) =
                    run_wire_gets(addr, connections, depth, scale.keys, seed, scale.duration());
                let mops = ops as f64 / elapsed.as_secs_f64() / 1e6;
                mops_by_depth.push((depth, mops));
                let depth1 = mops_by_depth[0].1;
                let mut point = ctx
                    .point("GET")
                    .axis("connections", connections)
                    .axis("depth", depth)
                    .mops(mops)
                    .ops(ops);
                if depth >= 8 && depth1 > 0.0 {
                    point = point.extra("speedup_vs_depth1", mops / depth1);
                }
                point.emit();
            }
            let depth1 = mops_by_depth[0].1;
            let speedup8 = mops_by_depth[1].1 / depth1.max(f64::MIN_POSITIVE);
            table_out.row(&[
                connections.to_string(),
                fmt_mops(mops_by_depth[0].1),
                fmt_mops(mops_by_depth[1].1),
                fmt_mops(mops_by_depth[2].1),
                format!("{speedup8:.1}x"),
            ]);
        }

        // YCSB A over the wire: the whole workload harness driving the
        // remote backend (one connection per worker thread) unchanged.
        let connections = *connection_counts.last().unwrap_or(&1);
        let remote = RemoteBackend::connect(addr.to_string()).expect("connect remote backend");
        let _ = run_ycsb(
            &remote,
            YcsbMix::A,
            scale.keys,
            connections,
            scale.warmup(),
            true,
        );
        let r = run_ycsb(
            &remote,
            YcsbMix::A,
            scale.keys,
            connections,
            scale.duration(),
            true,
        );
        ctx.point("YCSB A (wire)")
            .axis("connections", connections)
            .result(&r)
            .emit();
        table_out.row(&[
            format!("{connections} (YCSB A)"),
            "-".into(),
            fmt_mops(r.mops),
            "-".into(),
            "-".into(),
        ]);

        ctx.table(&table_out);
        let counters = server.shutdown();
        ctx.note(&format!(
            "Server counters: {} connections, {} ops in {} batches ({} protocol errors).",
            counters.connections, counters.ops, counters.batches, counters.protocol_errors
        ));
    });
}
