//! `server` scenario: throughput and scaling of the `dlht-net` wire
//! protocol over TCP loopback against the event-driven server.
//!
//! Four series:
//!
//! 1. **GET sweep** — connection count × client pipeline depth. Depth 1
//!    issues one request per network round trip; depth `d` pipelines `d`
//!    requests per round trip, which the server drains into **one**
//!    prefetched batch execution — the depth axis is simultaneously the
//!    wire-pipelining axis and the server-side batch-size axis (paper §3.3
//!    over a socket). Acceptance bar: depth ≥ 8 beats depth 1 by ≥ 2×.
//! 2. **Worker scaling** — fixed connection count, sweeping the event-loop
//!    worker pool size (one server per point). Throughput should follow
//!    workers, not connections: connections are just poll registrations.
//! 3. **Connection sweep** — hold hundreds of live connections (256 in
//!    smoke, 1024 in `--full`) that each ran real traffic, and measure
//!    `buffer_bytes / connections`. The point records `bytes_per_conn` and
//!    the scenario **fails** if per-connection memory is not flat (rings
//!    must shrink back after their burst).
//! 4. **Admin probe under load** — round-trip `STATS` on the admin plane
//!    while every worker is saturated with pipelined data traffic,
//!    recording the admin latency.
//! 5. **Metrics overhead** — GET throughput with a 10 Hz Prometheus
//!    scraper hammering `GET /metrics` on the admin plane versus the same
//!    run unscraped, interleaved best-of-3. The scenario **fails** if
//!    scraping costs more than 2% throughput: the registry promises
//!    scrapes never touch the hot path.
//!
//! One extra series runs YCSB A *over the wire* through [`RemoteBackend`],
//! demonstrating that the whole workload harness drives a remote table
//! unchanged (the same switch `fig18_ycsb --server <addr>` exposes).

use dlht_bench::run_scenario;
use dlht_core::{KvBackend, Request, Response, ShardedTable};
use dlht_net::{bind_ephemeral, ByteRing, DlhtClient, RemoteBackend, ServerConfig};
use dlht_workloads::report::Tier;
use dlht_workloads::ycsb::{run_ycsb, YcsbMix};
use dlht_workloads::{fmt_mops, prepopulate, Table, Xoshiro256};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline depths swept at every connection count (1 = no pipelining).
const DEPTHS: [usize; 3] = [1, 8, 32];

/// Flat-memory bar for the connection sweep: average ring capacity pinned
/// per live connection after its burst drained. Two rings per connection,
/// each allowed its retained capacity.
const FLAT_BYTES_PER_CONN: u64 = 2 * ByteRing::SHRINK_CAPACITY as u64;

/// Drive 100%-GET traffic from `connections` clients at `depth`, returning
/// (total ops, wall time).
fn run_wire_gets(
    addr: std::net::SocketAddr,
    connections: usize,
    depth: usize,
    keys: u64,
    seed: u64,
    duration: Duration,
) -> (u64, Duration) {
    let started = Instant::now();
    let totals: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|tid| {
                s.spawn(move || {
                    let mut client = DlhtClient::connect(addr).expect("connect to bench server");
                    let mut rng = Xoshiro256::new(
                        seed ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut reqs: Vec<Request> = Vec::with_capacity(depth);
                    let mut resps: Vec<Response> = Vec::with_capacity(depth);
                    let deadline = Instant::now() + duration;
                    let mut ops = 0u64;
                    while Instant::now() < deadline {
                        reqs.clear();
                        for _ in 0..depth {
                            reqs.push(Request::Get(rng.next_below(keys.max(1))));
                        }
                        if depth == 1 {
                            let r = client.request(reqs[0]).expect("wire get");
                            std::hint::black_box(&r);
                        } else {
                            resps.clear();
                            client
                                .pipelined_into(&reqs, &mut resps)
                                .expect("pipelined wire gets");
                            std::hint::black_box(&resps);
                        }
                        ops += depth as u64;
                    }
                    ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (totals.iter().sum(), started.elapsed())
}

/// One `GET /metrics` scrape over plain HTTP/1.1; returns the body length
/// so the scraper can prove the exposition was non-trivial.
fn scrape_once(addr: std::net::SocketAddr) -> usize {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("scraper connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("scraper request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("scraper response");
    response.len()
}

fn main() {
    run_scenario("server", |ctx| {
        let scale = ctx.scale.clone();
        let table = Arc::new(ShardedTable::with_capacity(
            scale.shards,
            scale.keys as usize * 2,
        ));
        prepopulate(&*table as &dyn KvBackend, scale.keys);
        let server = bind_ephemeral(table.clone(), ServerConfig::default());
        let addr = server.local_addr();
        ctx.note(&format!(
            "Serving on {addr} ({} event-loop workers, {} shards, {} keys prepopulated).",
            server.workers(),
            scale.shards,
            scale.keys
        ));

        // --- Series 1: GET throughput, connections × pipeline depth -----
        let mut table_out = Table::new(
            "dlht-net — GET throughput over TCP loopback (M req/s)",
            &[
                "connections",
                "depth 1",
                "depth 8",
                "depth 32",
                "depth8/depth1",
            ],
        );
        let connection_counts = scale.threads.clone();
        for &connections in &connection_counts {
            let mut mops_by_depth: Vec<(usize, f64)> = Vec::new();
            for depth in DEPTHS {
                let seed = scale.seed_for(&format!("server/c{connections}/d{depth}"));
                // Warm-up pass (discarded): connections, caches, allocator.
                let _ = run_wire_gets(addr, connections, depth, scale.keys, seed, scale.warmup());
                let (ops, elapsed) =
                    run_wire_gets(addr, connections, depth, scale.keys, seed, scale.duration());
                let mops = ops as f64 / elapsed.as_secs_f64() / 1e6;
                mops_by_depth.push((depth, mops));
                let depth1 = mops_by_depth[0].1;
                let mut point = ctx
                    .point("GET")
                    .axis("connections", connections)
                    .axis("depth", depth)
                    .mops(mops)
                    .ops(ops);
                if depth >= 8 && depth1 > 0.0 {
                    point = point.extra("speedup_vs_depth1", mops / depth1);
                }
                point.emit();
            }
            let depth1 = mops_by_depth[0].1;
            let speedup8 = mops_by_depth[1].1 / depth1.max(f64::MIN_POSITIVE);
            table_out.row(&[
                connections.to_string(),
                fmt_mops(mops_by_depth[0].1),
                fmt_mops(mops_by_depth[1].1),
                fmt_mops(mops_by_depth[2].1),
                format!("{speedup8:.1}x"),
            ]);
        }

        // --- Series 2: worker scaling (one server per pool size) --------
        // Throughput should track the worker axis, not the connection
        // count: with the readiness loop, connections are just poll
        // registrations. (On a single-core runner all points land close
        // together — the JSON still records the curve.)
        let mut worker_table = Table::new(
            "dlht-net — worker scaling (fixed connections, depth 32)",
            &["workers", "M req/s"],
        );
        let fixed_conns = connection_counts.last().copied().unwrap_or(1) * 2;
        for &workers in &scale.threads {
            let wtable = Arc::new(ShardedTable::with_capacity(
                scale.shards,
                scale.keys as usize * 2,
            ));
            prepopulate(&*wtable as &dyn KvBackend, scale.keys);
            let wserver = bind_ephemeral(
                wtable,
                ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
            );
            let seed = scale.seed_for(&format!("server/workers{workers}"));
            let _ = run_wire_gets(
                wserver.local_addr(),
                fixed_conns,
                32,
                scale.keys,
                seed,
                scale.warmup(),
            );
            let (ops, elapsed) = run_wire_gets(
                wserver.local_addr(),
                fixed_conns,
                32,
                scale.keys,
                seed,
                scale.duration(),
            );
            let mops = ops as f64 / elapsed.as_secs_f64() / 1e6;
            ctx.point("GET (worker scaling)")
                .axis("workers", workers)
                .axis("connections", fixed_conns)
                .axis("depth", 32usize)
                .mops(mops)
                .ops(ops)
                .emit();
            worker_table.row(&[workers.to_string(), fmt_mops(mops)]);
            wserver.shutdown();
        }

        // --- Series 3: connection sweep with flat-memory assertion ------
        let sweep_conns: usize = match scale.tier {
            Tier::Smoke => 256,
            Tier::Full => 1024,
        };
        {
            let deadline = Instant::now() + Duration::from_secs(60);
            let mut held: Vec<DlhtClient<std::net::TcpStream>> = Vec::with_capacity(sweep_conns);
            for i in 0..sweep_conns {
                let mut c =
                    DlhtClient::connect(addr).unwrap_or_else(|e| panic!("sweep connect #{i}: {e}"));
                // Real traffic on every connection so its rings see use.
                let reqs: Vec<Request> = (0..16u64)
                    .map(|k| Request::Get((i as u64 * 16 + k) % scale.keys.max(1)))
                    .collect();
                let resps = c.pipelined(&reqs).expect("sweep pipelined GETs");
                assert_eq!(resps.len(), 16);
                held.push(c);
                assert!(Instant::now() < deadline, "connection sweep timed out");
            }
            // Let the workers finish their passes, then read the gauge.
            std::thread::sleep(Duration::from_millis(100));
            let live = server.counters().active;
            assert!(
                live >= sweep_conns as u64,
                "expected {sweep_conns} live connections, server sees {live}"
            );
            let buffered = server.buffer_bytes();
            let bytes_per_conn = buffered / sweep_conns as u64;
            ctx.point("connection sweep")
                .axis("connections", sweep_conns)
                .ops(sweep_conns as u64 * 16)
                .extra("buffer_bytes", buffered as f64)
                .extra("bytes_per_conn", bytes_per_conn as f64)
                .emit();
            ctx.note(&format!(
                "Connection sweep: {sweep_conns} live connections hold {buffered} buffer bytes \
                 ({bytes_per_conn} B/conn; flat bar {FLAT_BYTES_PER_CONN} B/conn)."
            ));
            assert!(
                bytes_per_conn <= FLAT_BYTES_PER_CONN,
                "per-connection memory is not flat: {bytes_per_conn} B/conn \
                 (bar {FLAT_BYTES_PER_CONN})"
            );
            drop(held);
            // Wait for the server to notice the closes (keeps the YCSB
            // series below from sharing the sweep's fds).
            let deadline = Instant::now() + Duration::from_secs(30);
            while server.counters().active > 0 {
                assert!(Instant::now() < deadline, "sweep connections never drained");
                std::thread::sleep(Duration::from_millis(20));
            }
        }

        // --- Series 4: admin plane probed under data-plane saturation ---
        {
            let atable = Arc::new(ShardedTable::with_capacity(
                scale.shards,
                scale.keys as usize * 2,
            ));
            prepopulate(&*atable as &dyn KvBackend, scale.keys);
            let aserver = bind_ephemeral(
                atable,
                ServerConfig {
                    admin_addr: Some("127.0.0.1:0".to_string()),
                    ..ServerConfig::default()
                },
            );
            let data_addr = aserver.local_addr();
            let admin_addr = aserver.admin_addr().expect("admin plane");
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let hammers: Vec<_> = (0..2)
                .map(|tid| {
                    let stop = stop.clone();
                    let keys = scale.keys;
                    std::thread::spawn(move || {
                        let mut client = DlhtClient::connect(data_addr).expect("hammer connect");
                        let mut rng = Xoshiro256::new(0xAD1A + tid as u64);
                        let mut reqs: Vec<Request> = Vec::with_capacity(32);
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            reqs.clear();
                            for _ in 0..32 {
                                reqs.push(Request::Get(rng.next_below(keys.max(1))));
                            }
                            let _ = client.pipelined(&reqs).expect("hammer pipeline");
                        }
                    })
                })
                .collect();
            let mut admin = DlhtClient::connect(admin_addr).expect("admin connect");
            let probes = 32u32;
            let t = Instant::now();
            for _ in 0..probes {
                let stats = admin.stats().expect("admin STATS under load");
                std::hint::black_box(&stats);
            }
            let avg_us = t.elapsed().as_secs_f64() * 1e6 / probes as f64;
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for h in hammers {
                h.join().expect("hammer thread");
            }
            ctx.point("admin STATS under load")
                .axis("connections", 2usize)
                .ops(probes as u64)
                .extra("admin_stats_us", avg_us)
                .emit();
            ctx.note(&format!(
                "Admin plane answered {probes} STATS probes at {avg_us:.0} µs average while \
                 the data plane ran saturated pipelines."
            ));
            aserver.shutdown();
        }

        // --- Series 5: metrics overhead under a 10 Hz scraper -----------
        {
            let mtable = Arc::new(ShardedTable::with_capacity(
                scale.shards,
                scale.keys as usize * 2,
            ));
            prepopulate(&*mtable as &dyn KvBackend, scale.keys);
            let mserver = bind_ephemeral(
                mtable,
                ServerConfig {
                    admin_addr: Some("127.0.0.1:0".to_string()),
                    ..ServerConfig::default()
                },
            );
            let data_addr = mserver.local_addr();
            let metrics_addr = mserver.admin_addr().expect("admin plane");
            let conns = 2usize;
            // Floor the measurement window: smoke-tier 60 ms rounds would
            // see at most one scrape and drown a 2% delta in noise.
            let window = scale.duration().max(Duration::from_millis(400));
            let seed = scale.seed_for("server/metrics-overhead");
            let _ = run_wire_gets(data_addr, conns, 32, scale.keys, seed, scale.warmup());
            // Interleaved best-of-3 so machine drift hits both modes alike.
            let mut best_unscraped = 0.0f64;
            let mut best_scraped = 0.0f64;
            let mut scrapes = 0u64;
            for round in 0..3 {
                for scraped in [false, true] {
                    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
                    let scraper = scraped.then(|| {
                        let stop = stop.clone();
                        std::thread::spawn(move || {
                            let mut count = 0u64;
                            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                                assert!(scrape_once(metrics_addr) > 0, "empty scrape");
                                count += 1;
                                std::thread::sleep(Duration::from_millis(100));
                            }
                            count
                        })
                    });
                    let round_seed =
                        scale.seed_for(&format!("server/metrics-overhead/{round}/{scraped}"));
                    let (ops, elapsed) =
                        run_wire_gets(data_addr, conns, 32, scale.keys, round_seed, window);
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                    if let Some(h) = scraper {
                        scrapes += h.join().expect("scraper thread");
                    }
                    let mops = ops as f64 / elapsed.as_secs_f64() / 1e6;
                    if scraped {
                        best_scraped = best_scraped.max(mops);
                    } else {
                        best_unscraped = best_unscraped.max(mops);
                    }
                }
            }
            let overhead_pct = ((best_unscraped - best_scraped) / best_unscraped * 100.0).max(0.0);
            ctx.point("metrics-overhead")
                .axis("connections", conns)
                .axis("depth", 32usize)
                .mops(best_scraped)
                .extra("mops_scraped", best_scraped)
                .extra("mops_unscraped", best_unscraped)
                .extra("overhead_pct", overhead_pct)
                .extra("scrapes", scrapes as f64)
                .emit();
            ctx.note(&format!(
                "Metrics overhead: {} scraped vs {} unscraped under {scrapes} \
                 10 Hz scrapes — {overhead_pct:.2}% overhead (bar 2%).",
                fmt_mops(best_scraped),
                fmt_mops(best_unscraped)
            ));
            assert!(
                overhead_pct <= 2.0,
                "Prometheus scraping cost {overhead_pct:.2}% GET throughput (bar 2%)"
            );
            mserver.shutdown();
        }

        // --- YCSB A over the wire (workload harness unchanged) ----------
        let connections = *connection_counts.last().unwrap_or(&1);
        let remote = RemoteBackend::connect(addr.to_string()).expect("connect remote backend");
        let _ = run_ycsb(
            &remote,
            YcsbMix::A,
            scale.keys,
            connections,
            scale.warmup(),
            true,
        );
        let r = run_ycsb(
            &remote,
            YcsbMix::A,
            scale.keys,
            connections,
            scale.duration(),
            true,
        );
        ctx.point("YCSB A (wire)")
            .axis("connections", connections)
            .result(&r)
            .emit();
        table_out.row(&[
            format!("{connections} (YCSB A)"),
            "-".into(),
            fmt_mops(r.mops),
            "-".into(),
            "-".into(),
        ]);

        ctx.table(&table_out);
        ctx.table(&worker_table);
        let counters = server.shutdown();
        ctx.note(&format!(
            "Server counters: {} connections, {} ops in {} batches ({} protocol errors, \
             {} panics).",
            counters.connections,
            counters.ops,
            counters.batches,
            counters.protocol_errors,
            counters.panics
        ));
    });
}
