//! `cache` scenario: the cache persona's memory-awareness, measured.
//!
//! Three series:
//!
//! 1. **Hit-ratio vs budget** — a zipfian cache-aside trace (mostly Gets;
//!    every miss fills) against a [`CacheMap`] whose `--memory-budget` is a
//!    fraction of the full working set, swept for both eviction policies.
//!    LRU should beat FIFO at every budget (the hot set stays resident),
//!    and the resident-bytes gauge must stay under the budget — this is
//!    the paper's fig09/fig11 memory-awareness story applied to caching.
//! 2. **Churn throughput** — the same trace, measured as M ops/s, so the
//!    TTL/eviction machinery's overhead shows up in the perf trajectory.
//! 3. **Expiry-storm drain** — every key stored with a TTL inside a short
//!    window, the clock stepped past it, and the reaper swept until the
//!    cache reports zero items and zero pending reclamation: the fast-
//!    delete property under its worst case.
//!
//! The scenario **fails** (panics) if resident bytes ever exceed the
//! budget after a sweep, or if the storm does not drain — these are the
//! acceptance bars, not just expectations by eye.

use dlht_bench::run_scenario;
use dlht_core::{CacheConfig, CacheMap, CacheSession, EvictionPolicy, ManualClock};
use dlht_workloads::{cache_key_bytes, fmt_mops, CacheOp, ExpiryStorm, Table, ZipfianChurn};
use std::sync::Arc;
use std::time::Instant;

/// Budget fractions of the full working set swept in series 1.
const BUDGET_FRACTIONS: [(u64, u64); 3] = [(1, 8), (1, 4), (1, 2)];

/// Stored value size (bytes) for every trace entry.
const VALUE_LEN: usize = 64;

/// Zipfian skew (YCSB default).
const THETA: f64 = 0.99;

/// Drive `ops` cache-aside operations from `churn` against `session`,
/// filling on every miss. Returns (hits, misses).
fn run_cache_aside(
    session: &mut CacheSession<'_>,
    churn: &mut ZipfianChurn,
    ops: u64,
) -> (u64, u64) {
    let value = vec![0xCAu8; VALUE_LEN];
    let mut key_buf = [0u8; 24];
    let (mut hits, mut misses) = (0u64, 0u64);
    for _ in 0..ops {
        let op = churn.next_op();
        let key = cache_key_bytes(&mut key_buf, op.key());
        match op {
            CacheOp::Get { .. } => {
                if session.get_with(key, |_| ()).is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                    // Cache-aside: the application fetches from the backing
                    // store and fills the cache.
                    let _ = session.set(key, &value, 0, 0);
                }
            }
            CacheOp::Set { exptime, .. } => {
                let _ = session.set(key, &value, 0, exptime);
            }
            CacheOp::Delete { .. } => {
                session.delete(key);
            }
            CacheOp::Touch { exptime, .. } => {
                session.touch(key, exptime);
            }
        }
    }
    (hits, misses)
}

fn main() {
    run_scenario("cache", |ctx| {
        let scale = ctx.scale.clone();
        let population = scale.keys.max(4_096);
        let ops = (population * 8).max(100_000);

        // Measure the full working set once: an unbounded cache holding
        // every key tells us what "100% of the working set" costs, split
        // into index bytes (fixed for a given capacity) and record bytes
        // (headers + keys + values). Budgets are index + a fraction of the
        // record bytes — a budget below the index alone would (by design)
        // evict everything.
        let full = {
            let cache = CacheMap::new(CacheConfig {
                shards: scale.shards,
                capacity: population as usize * 2,
                memory_budget: 0,
                eviction: EvictionPolicy::Lru,
            });
            let mut session = cache.session();
            let value = vec![0xCAu8; VALUE_LEN];
            let mut key_buf = [0u8; 24];
            for id in 0..population {
                let key = cache_key_bytes(&mut key_buf, id);
                session.set(key, &value, 0, 0).expect("populate");
            }
            cache.stats()
        };
        ctx.note(&format!(
            "Working set: {population} keys x {VALUE_LEN} B values = {} record bytes \
             + {} index bytes; {ops} cache-aside ops per point.",
            full.value_bytes, full.index_bytes
        ));

        // --- Series 1 + 2: hit-ratio and throughput vs budget ------------
        let mut table = Table::new(
            "cache persona — zipfian cache-aside, hit-ratio vs memory budget",
            &[
                "budget",
                "policy",
                "hit ratio",
                "resident/budget",
                "evicted",
                "M ops/s",
            ],
        );
        for (num, den) in BUDGET_FRACTIONS {
            // Index bytes plus a fraction of the record bytes; the extra
            // /7*8 headroom compensates for the evictor's 7/8 low
            // watermark so roughly `num/den` of the records stay resident.
            let budget = full.index_bytes + (full.value_bytes * num / den) / 7 * 8;
            for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo] {
                let cache = CacheMap::new(CacheConfig {
                    shards: scale.shards,
                    capacity: population as usize * 2,
                    memory_budget: budget,
                    eviction: policy,
                });
                let mut session = cache.session();
                let seed = scale.seed_for(&format!("cache/{num}of{den}/{policy:?}"));
                let mut churn = ZipfianChurn::new(population, THETA, seed, VALUE_LEN);
                // Warm-up pass (discarded): fill the hot set, reach steady
                // state under eviction.
                let _ = run_cache_aside(&mut session, &mut churn, ops / 4);
                let warm_stats = cache.stats();
                let started = Instant::now();
                let (hits, misses) = run_cache_aside(&mut session, &mut churn, ops);
                let elapsed = started.elapsed();
                session.reap();
                session.quiesce();
                let stats = cache.stats();
                let hit_ratio = hits as f64 / (hits + misses).max(1) as f64;
                let mops = (hits + misses) as f64 / elapsed.as_secs_f64() / 1e6;
                // Acceptance bar: the budget is a hard watermark.
                assert!(
                    stats.total_bytes() <= budget,
                    "resident {} B exceeds budget {} B ({policy:?}, {num}/{den})",
                    stats.total_bytes(),
                    budget
                );
                let policy_name = match policy {
                    EvictionPolicy::Lru => "LRU",
                    EvictionPolicy::Fifo => "FIFO",
                };
                table.row(&[
                    format!("{num}/{den}"),
                    policy_name.to_string(),
                    format!("{:.3}", hit_ratio),
                    format!("{}/{}", stats.total_bytes(), budget),
                    format!("{}", stats.evicted),
                    fmt_mops(mops),
                ]);
                ctx.point(policy_name)
                    .axis("budget_fraction", format!("{num}/{den}"))
                    .axis("budget_bytes", budget)
                    .mops(mops)
                    .ops(hits + misses)
                    .extra("hit_ratio", hit_ratio)
                    .extra("hits", hits)
                    .extra("misses", misses)
                    .extra("resident_bytes", stats.total_bytes())
                    .extra("warm_resident_bytes", warm_stats.total_bytes())
                    .extra("evicted", stats.evicted)
                    .extra("expired", stats.expired)
                    .stats(&cache.table_stats())
                    .retired(cache.retired_indexes())
                    .emit();
            }
        }
        ctx.table(&table);

        // --- Series 3: expiry-storm drain --------------------------------
        {
            let clock = Arc::new(ManualClock::new(1));
            let cache = CacheMap::with_clock(
                CacheConfig {
                    shards: scale.shards,
                    capacity: population as usize * 2,
                    memory_budget: 0,
                    eviction: EvictionPolicy::Lru,
                },
                clock.clone(),
            );
            let mut session = cache.session();
            let seed = scale.seed_for("cache/storm");
            let storm = ExpiryStorm::new(population, seed, 1, 5, VALUE_LEN);
            let horizon = storm.horizon_secs();
            let value = vec![0xCAu8; VALUE_LEN];
            let mut key_buf = [0u8; 24];
            for op in storm {
                let CacheOp::Set { key, exptime, .. } = op else {
                    unreachable!("storms are all sets")
                };
                session
                    .set(cache_key_bytes(&mut key_buf, key), &value, 0, exptime)
                    .expect("storm set");
            }
            let stored = cache.len();
            clock.advance(horizon as u32 + 1);
            let started = Instant::now();
            let mut sweeps = 0u64;
            while !cache.is_empty() || session.pending_garbage() > 0 {
                session.reap();
                sweeps += 1;
                assert!(sweeps < 64, "storm failed to drain after {sweeps} sweeps");
            }
            let drain = started.elapsed();
            let stats = cache.stats();
            ctx.note(&format!(
                "Expiry storm: {stored} TTL'd entries drained to zero in {sweeps} sweeps \
                 ({:.1} ms); expired counter = {}.",
                drain.as_secs_f64() * 1e3,
                stats.expired
            ));
            assert_eq!(cache.len(), 0, "storm must drain to an empty cache");
            assert_eq!(
                stats.pending_reclaim_bytes, 0,
                "storm garbage must be reclaimed, not parked"
            );
            ctx.point("expiry_storm")
                .axis("keys", stored)
                .ops(stored)
                .extra("sweeps", sweeps)
                .extra("drain_ms", drain.as_secs_f64() * 1e3)
                .extra("expired", stats.expired)
                .extra("pending_reclaim_bytes", stats.pending_reclaim_bytes)
                .retired(cache.retired_indexes())
                .emit();
        }
    });
}
