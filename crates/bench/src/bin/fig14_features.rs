//! Figure 14: throughput cost of enabling features (resizing checks, wyhash,
//! variable value/key sizes, namespaces, switching off the pooled allocator),
//! stacked and one-at-a-time, for the Get and InsDel workloads.

use dlht_baselines::DlhtAdapter;
use dlht_bench::print_header;
use dlht_core::DlhtAllocMap;
use dlht_core::DlhtConfig;
use dlht_hash::HashKind;
use dlht_workloads::{
    fmt_mops, prepopulate, run_workload, BenchScale, Table, WorkloadSpec, Xoshiro256,
};
use std::time::Instant;

/// Measure Get and InsDel throughput of an Inlined-mode configuration.
fn measure_inlined(config: DlhtConfig, scale: &BenchScale) -> (f64, f64) {
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let map = DlhtAdapter::with_config(config);
    prepopulate(&map, scale.keys);
    let get = run_workload(
        &map,
        &WorkloadSpec::get_default(scale.keys, threads, scale.duration()),
    );
    let insdel = run_workload(
        &map,
        &WorkloadSpec::insdel_default(scale.keys, threads, scale.duration()),
    );
    (get.mops, insdel.mops)
}

/// Measure Get and InsDel throughput of an Allocator-mode configuration with
/// 32-byte values (the figure's default value size).
fn measure_alloc(
    config: DlhtConfig,
    allocator: dlht_core::alloc::AllocatorKind,
    scale: &BenchScale,
) -> (f64, f64) {
    let keys = scale.keys.min(100_000);
    let map = DlhtAllocMap::new(config, allocator.build(), 8, 32);
    let mut session = map.session();
    let value = [5u8; 32];
    for k in 0..keys {
        session.insert(0, &k.to_le_bytes(), &value).unwrap();
    }
    let ops = (keys * 2).max(20_000);
    let mut rng = Xoshiro256::new(9);
    let t = Instant::now();
    for _ in 0..ops {
        let k = rng.next_below(keys).to_le_bytes();
        std::hint::black_box(session.get_with(0, &k, |_| ()));
    }
    let get = ops as f64 / t.elapsed().as_secs_f64() / 1e6;
    let t = Instant::now();
    for i in 0..ops / 4 {
        let k = (keys + 1 + i).to_le_bytes();
        session.insert(0, &k, &value).unwrap();
        session.delete(0, &k);
        if i % 64 == 0 {
            session.quiesce();
        }
    }
    let insdel = (ops / 4 * 2) as f64 / t.elapsed().as_secs_f64() / 1e6;
    (get, insdel)
}

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 14 (cost of enabling features, stacked and single)",
        "default -> +resizing -> +wyhash -> +variable sizes -> +namespaces -> no mimalloc; 32B values",
        &scale,
    );
    let mut table = Table::new(
        "Fig. 14 — throughput with features enabled (M req/s)",
        &["configuration", "Get", "InsDel"],
    );
    let base_bins = DlhtConfig::for_capacity(scale.keys as usize * 2).num_bins;

    // Inlined-mode bars: default, +resizing, +wyhash (stacked).
    let default_cfg = DlhtConfig::new(base_bins).with_resizing(false);
    let (g, i) = measure_inlined(default_cfg.clone(), &scale);
    table.row(&[
        "default (no features)".to_string(),
        fmt_mops(g),
        fmt_mops(i),
    ]);

    let resizing = default_cfg.clone().with_resizing(true);
    let (g, i) = measure_inlined(resizing.clone(), &scale);
    table.row(&["+ resizing checks".to_string(), fmt_mops(g), fmt_mops(i)]);

    let hashed = resizing.clone().with_hash(HashKind::WyHash);
    let (g, i) = measure_inlined(hashed.clone(), &scale);
    table.row(&["+ wyhash".to_string(), fmt_mops(g), fmt_mops(i)]);

    // Allocator-mode bars (32-byte values): variable sizes, namespaces, malloc.
    let alloc_base = DlhtConfig::new(base_bins).with_hash(HashKind::WyHash);
    let (g, i) = measure_alloc(
        alloc_base.clone(),
        dlht_core::alloc::AllocatorKind::Pool,
        &scale,
    );
    table.row(&[
        "allocator mode (fixed sizes, pool)".to_string(),
        fmt_mops(g),
        fmt_mops(i),
    ]);

    let var = alloc_base.clone().with_variable_size(true);
    let (g, i) = measure_alloc(var.clone(), dlht_core::alloc::AllocatorKind::Pool, &scale);
    table.row(&[
        "+ variable key/value sizes".to_string(),
        fmt_mops(g),
        fmt_mops(i),
    ]);

    let ns = var.clone().with_namespaces(true);
    let (g, i) = measure_alloc(ns.clone(), dlht_core::alloc::AllocatorKind::Pool, &scale);
    table.row(&["+ namespaces".to_string(), fmt_mops(g), fmt_mops(i)]);

    let (g, i) = measure_alloc(ns, dlht_core::alloc::AllocatorKind::System, &scale);
    table.row(&[
        "+ no mimalloc (system malloc)".to_string(),
        fmt_mops(g),
        fmt_mops(i),
    ]);

    table.print();
    println!("Expected shape: each feature shaves a little throughput; the allocator swap mainly hurts InsDel.");
}
