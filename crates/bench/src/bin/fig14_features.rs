//! Figure 14: throughput cost of enabling features (resizing checks, wyhash,
//! variable value/key sizes, namespaces, switching off the pooled allocator),
//! stacked and one-at-a-time, for the Get and InsDel workloads.

use dlht_baselines::DlhtAdapter;
use dlht_bench::{run_scenario, timed_mops, ScenarioCtx};
use dlht_core::DlhtAllocMap;
use dlht_core::DlhtConfig;
use dlht_hash::HashKind;
use dlht_workloads::{fmt_mops, prepopulate, Table, WorkloadSpec};

/// Measure Get and InsDel throughput of an Inlined-mode configuration.
fn measure_inlined(ctx: &ScenarioCtx, config: DlhtConfig) -> (f64, f64) {
    let scale = &ctx.scale;
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let map = DlhtAdapter::with_config(config);
    prepopulate(&map, scale.keys);
    let get = ctx.measure(
        &map,
        &WorkloadSpec::get_default(scale.keys, threads, scale.duration()),
    );
    let insdel = ctx.measure(
        &map,
        &WorkloadSpec::insdel_default(scale.keys, threads, scale.duration()),
    );
    (get.mops, insdel.mops)
}

/// Measure Get and InsDel throughput of an Allocator-mode configuration with
/// 32-byte values (the figure's default value size).
fn measure_alloc(
    ctx: &ScenarioCtx,
    config: DlhtConfig,
    allocator: dlht_core::alloc::AllocatorKind,
) -> (f64, f64) {
    let scale = &ctx.scale;
    let keys = scale.keys.min(100_000);
    let map = DlhtAllocMap::new(config, allocator.build(), 8, 32);
    let mut session = map.session();
    let value = [5u8; 32];
    for k in 0..keys {
        session.insert(0, &k.to_le_bytes(), &value).unwrap();
    }
    let ops = (keys * 2).max(20_000);
    let mut rng = scale.stream("fig14/alloc");
    let get = timed_mops(ops, ops / 10, |_| {
        let k = rng.next_below(keys).to_le_bytes();
        std::hint::black_box(session.get_with(0, &k, |_| ()));
    });
    let insdel = 2.0
        * timed_mops(ops / 4, ops / 40, |i| {
            let k = (keys + 1 + i).to_le_bytes();
            session.insert(0, &k, &value).unwrap();
            session.delete(0, &k);
            if i % 64 == 0 {
                session.quiesce();
            }
        });
    (get, insdel)
}

fn main() {
    run_scenario("fig14_features", |ctx| {
        let mut table = Table::new(
            "Fig. 14 — throughput with features enabled (M req/s)",
            &["configuration", "Get", "InsDel"],
        );
        let base_bins = DlhtConfig::for_capacity(ctx.scale.keys as usize * 2).num_bins;

        // Inlined-mode bars: default, +resizing, +wyhash (stacked).
        let default_cfg = DlhtConfig::new(base_bins).with_resizing(false);
        let resizing = default_cfg.clone().with_resizing(true);
        let hashed = resizing.clone().with_hash(HashKind::WyHash);
        let inlined: [(&str, DlhtConfig); 3] = [
            ("default (no features)", default_cfg),
            ("+ resizing checks", resizing),
            ("+ wyhash", hashed),
        ];
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for (label, cfg) in inlined {
            let (g, i) = measure_inlined(ctx, cfg);
            rows.push((label.to_string(), g, i));
        }

        // Allocator-mode bars (32-byte values): variable sizes, namespaces,
        // malloc.
        let alloc_base = DlhtConfig::new(base_bins).with_hash(HashKind::WyHash);
        let var = alloc_base.clone().with_variable_size(true);
        let ns = var.clone().with_namespaces(true);
        let alloc: [(&str, DlhtConfig, dlht_core::alloc::AllocatorKind); 4] = [
            (
                "allocator mode (fixed sizes, pool)",
                alloc_base,
                dlht_core::alloc::AllocatorKind::Pool,
            ),
            (
                "+ variable key/value sizes",
                var,
                dlht_core::alloc::AllocatorKind::Pool,
            ),
            (
                "+ namespaces",
                ns.clone(),
                dlht_core::alloc::AllocatorKind::Pool,
            ),
            (
                "+ no mimalloc (system malloc)",
                ns,
                dlht_core::alloc::AllocatorKind::System,
            ),
        ];
        for (label, cfg, kind) in alloc {
            let (g, i) = measure_alloc(ctx, cfg, kind);
            rows.push((label.to_string(), g, i));
        }

        for (label, get, insdel) in &rows {
            for (workload, mops) in [("Get", *get), ("InsDel", *insdel)] {
                ctx.point(label.as_str())
                    .axis("workload", workload)
                    .mops(mops)
                    .emit();
            }
            table.row(&[label.clone(), fmt_mops(*get), fmt_mops(*insdel)]);
        }
        ctx.table(&table);
    });
}
