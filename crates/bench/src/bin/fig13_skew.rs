//! Figure 13: skewed access with 1000 hot keys receiving an increasing share
//! of the requests (Get, Get-NoBatch, InsDel).

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, print_header};
use dlht_workloads::{fmt_mops, run_workload, BenchScale, KeySampler, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 13 (skew with 1000 hot keys)",
        "0%..100% of accesses to 1000 hot keys; Gets speed up with locality, InsDel suffers conflicts",
        &scale,
    );
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let duration = scale.duration();
    let keys = scale.keys;
    let map = build_prepopulated(MapKind::Dlht, &scale);
    // Sharded front at the --shards / DLHT_SHARDS fan-out: skew also skews
    // the per-shard load, which is exactly what shard-local resizes absorb.
    let sharded = build_prepopulated(MapKind::DlhtSharded(scale.shards_u8()), &scale);
    let mut table = Table::new(
        "Fig. 13 — throughput vs skewed-access percentage (M req/s)",
        &[
            "hot %",
            "Get",
            "Get-Sharded",
            "Get-NoBatch",
            "InsDel-hot-deletes",
        ],
    );
    for &hot_pct in &[0u32, 25, 50, 75, 90, 99, 100] {
        let sampler = KeySampler::hot_set(keys, 1_000, hot_pct as f64 / 100.0);
        let get = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(keys, threads, duration).with_sampler(sampler.clone()),
        );
        let get_sharded = run_workload(
            sharded.as_ref(),
            &WorkloadSpec::get_default(keys, threads, duration).with_sampler(sampler.clone()),
        );
        let get_nobatch = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(keys, threads, duration)
                .with_sampler(sampler.clone())
                .without_batching(),
        );
        // InsDel under skew: deletes target the hot set, inserts are fresh.
        let mut insdel_spec = WorkloadSpec::insdel_default(keys, threads, duration);
        insdel_spec.mix.insert = 50;
        insdel_spec.mix.delete = 50;
        insdel_spec.insert_then_delete = false;
        insdel_spec.sampler = sampler;
        let insdel = run_workload(map.as_ref(), &insdel_spec);
        table.row(&[
            hot_pct.to_string(),
            fmt_mops(get.mops),
            fmt_mops(get_sharded.mops),
            fmt_mops(get_nobatch.mops),
            fmt_mops(insdel.mops),
        ]);
    }
    table.print();
    println!("Expected shape: Get rises with skew; at 100% skew Get-NoBatch overtakes batched Get; InsDel falls under contention.");
}
