//! Figure 13: skewed access with 1000 hot keys receiving an increasing share
//! of the requests (Get, Get-NoBatch, InsDel).

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, run_scenario};
use dlht_workloads::{fmt_mops, KeySampler, Table, WorkloadSpec};

fn main() {
    run_scenario("fig13_skew", |ctx| {
        let scale = ctx.scale.clone();
        let threads = *scale.threads.iter().max().unwrap_or(&1);
        let duration = scale.duration();
        let keys = scale.keys;
        let map = build_prepopulated(MapKind::Dlht, &scale);
        // Sharded front at the --shards / DLHT_SHARDS fan-out: skew also
        // skews the per-shard load, which is exactly what shard-local
        // resizes absorb.
        let sharded = build_prepopulated(MapKind::DlhtSharded(scale.shards_u8()), &scale);
        let mut table = Table::new(
            "Fig. 13 — throughput vs skewed-access percentage (M req/s)",
            &[
                "hot %",
                "Get",
                "Get-Sharded",
                "Get-NoBatch",
                "InsDel-hot-deletes",
            ],
        );
        for &hot_pct in &[0u32, 25, 50, 75, 90, 99, 100] {
            let sampler = KeySampler::hot_set(keys, 1_000, hot_pct as f64 / 100.0);
            let get = ctx.measure(
                map.as_ref(),
                &WorkloadSpec::get_default(keys, threads, duration).with_sampler(sampler.clone()),
            );
            let get_sharded = ctx.measure(
                sharded.as_ref(),
                &WorkloadSpec::get_default(keys, threads, duration).with_sampler(sampler.clone()),
            );
            let get_nobatch = ctx.measure(
                map.as_ref(),
                &WorkloadSpec::get_default(keys, threads, duration)
                    .with_sampler(sampler.clone())
                    .without_batching(),
            );
            // InsDel under skew: deletes target the hot set, inserts are fresh.
            let mut insdel_spec = WorkloadSpec::insdel_default(keys, threads, duration);
            insdel_spec.mix.insert = 50;
            insdel_spec.mix.delete = 50;
            insdel_spec.insert_then_delete = false;
            insdel_spec.sampler = sampler;
            let insdel = ctx.measure(map.as_ref(), &insdel_spec);
            for (series, r) in [
                ("Get", &get),
                ("Get-Sharded", &get_sharded),
                ("Get-NoBatch", &get_nobatch),
                ("InsDel-hot-deletes", &insdel),
            ] {
                ctx.point(series)
                    .axis("hot_pct", hot_pct)
                    .axis("threads", threads)
                    .result(r)
                    .emit();
            }
            table.row(&[
                hot_pct.to_string(),
                fmt_mops(get.mops),
                fmt_mops(get_sharded.mops),
                fmt_mops(get_nobatch.mops),
                fmt_mops(insdel.mops),
            ]);
        }
        ctx.table(&table);
    });
}
