//! Figure 16: single-threaded application with and without the
//! synchronization-free optimizations (§3.4.5): InsDel, InsDel-Resize,
//! InsDel-Resize-NoBatch, and Get.

use dlht_bench::run_scenario;
use dlht_core::{Batch, BatchPolicy, DlhtConfig, DlhtMap, SingleThreadMap};
use dlht_workloads::{fmt_mops, Table, Xoshiro256};
use std::time::Instant;

const BATCH: usize = 16;

fn run_concurrent_map(
    map: &DlhtMap,
    keys: u64,
    ops: u64,
    workload: &str,
    batched: bool,
    rng: &mut Xoshiro256,
) -> f64 {
    let mut batch = Batch::with_capacity(BATCH);
    let t = Instant::now();
    match workload {
        "Get" => {
            if batched {
                let mut done = 0;
                while done < ops {
                    batch.clear();
                    for _ in 0..BATCH {
                        batch.push_get(rng.next_below(keys));
                    }
                    map.execute(&mut batch, BatchPolicy::RunAll);
                    std::hint::black_box(batch.responses());
                    done += BATCH as u64;
                }
            } else {
                for _ in 0..ops {
                    std::hint::black_box(map.get(rng.next_below(keys)));
                }
            }
        }
        _ => {
            // InsDel: insert a fresh key then delete it, optionally batched.
            if batched {
                let mut next = keys + 1;
                let mut done = 0;
                while done < ops {
                    batch.clear();
                    for _ in 0..BATCH / 2 {
                        batch.push_insert(next, next);
                        batch.push_delete(next);
                        next += 1;
                    }
                    map.execute(&mut batch, BatchPolicy::RunAll);
                    std::hint::black_box(batch.responses());
                    done += BATCH as u64;
                }
            } else {
                for next in keys + 1..keys + 1 + ops / 2 {
                    let _ = map.insert(next, next).unwrap();
                    map.delete(next);
                }
            }
        }
    }
    ops as f64 / t.elapsed().as_secs_f64() / 1e6
}

fn run_single_thread_map(
    map: &mut SingleThreadMap,
    keys: u64,
    ops: u64,
    workload: &str,
    batched: bool,
    rng: &mut Xoshiro256,
) -> f64 {
    let mut batch = Batch::with_capacity(BATCH);
    let t = Instant::now();
    match workload {
        "Get" => {
            for _ in 0..ops {
                std::hint::black_box(map.get(rng.next_below(keys)));
            }
        }
        _ => {
            if batched {
                let mut next = keys + 1;
                let mut done = 0;
                while done < ops {
                    batch.clear();
                    for _ in 0..BATCH / 2 {
                        batch.push_insert(next, next);
                        batch.push_delete(next);
                        next += 1;
                    }
                    map.execute(&mut batch, BatchPolicy::RunAll);
                    std::hint::black_box(batch.responses());
                    done += BATCH as u64;
                }
            } else {
                for next in keys + 1..keys + 1 + ops / 2 {
                    let _ = map.insert(next, next).unwrap();
                    map.delete(next);
                }
            }
        }
    }
    ops as f64 / t.elapsed().as_secs_f64() / 1e6
}

fn main() {
    run_scenario("fig16_single_thread", |ctx| {
        let scale = ctx.scale.clone();
        let keys = scale.keys;
        let ops = (keys * 4).max(100_000);
        let warmup_ops = (ops / 10).max(BATCH as u64);
        let mut table = Table::new(
            "Fig. 16 — single-thread throughput (M req/s)",
            &[
                "workload",
                "thread-safe DLHT",
                "single-thread optimized",
                "speedup",
            ],
        );
        for (workload, resizing, batched) in [
            ("InsDel", false, true),
            ("InsDel-Resize", true, true),
            ("InsDel-Resize-NoBatch", true, false),
            ("Get", false, true),
        ] {
            let cfg = DlhtConfig::for_capacity(keys as usize * 2).with_resizing(resizing);
            let concurrent = DlhtMap::with_config(cfg.clone());
            let mut single = SingleThreadMap::with_config(cfg);
            for k in 0..keys {
                let _ = concurrent.insert(k, k).unwrap();
                let _ = single.insert(k, k).unwrap();
            }
            let mut rng = scale.stream("fig16");
            // Warm-up pass (discarded), then the measured pass. InsDel leaves
            // the population unchanged, so the key space is reusable.
            let _ = run_concurrent_map(&concurrent, keys, warmup_ops, workload, batched, &mut rng);
            let base = run_concurrent_map(&concurrent, keys, ops, workload, batched, &mut rng);
            let _ =
                run_single_thread_map(&mut single, keys, warmup_ops, workload, batched, &mut rng);
            let opt = run_single_thread_map(&mut single, keys, ops, workload, batched, &mut rng);
            let speedup_pct = (opt / base - 1.0) * 100.0;
            for (series, mops) in [("thread-safe", base), ("single-thread", opt)] {
                ctx.point(series)
                    .axis("workload", workload)
                    .mops(mops)
                    .extra("speedup_pct", speedup_pct)
                    .emit();
            }
            table.row(&[
                workload.to_string(),
                fmt_mops(base),
                fmt_mops(opt),
                format!("{speedup_pct:+.0}%"),
            ]);
        }
        ctx.table(&table);
    });
}
