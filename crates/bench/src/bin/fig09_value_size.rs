//! Figure 9: varying the value size from 8 B (inlined) to 1.5 KB (Allocator
//! mode) for the Get, InsDel, and Get-Access workloads.

use dlht_bench::print_header;
use dlht_core::{DlhtAllocMap, DlhtConfig, DlhtMap};
use dlht_workloads::{fmt_mops, BenchScale, Table, Xoshiro256};
use std::time::Instant;

fn ops_per_sec(ops: u64, start: Instant) -> f64 {
    ops as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 9 (varying value size: Get, InsDel, Get-Access)",
        "8B..1.5KB values; Gets return pointers so only Get-Access pays for large values",
        &scale,
    );
    let keys = scale.keys.min(50_000);
    let ops = (keys * 4).max(50_000);
    let mut table = Table::new(
        "Fig. 9 — throughput vs value size (M req/s, single thread)",
        &["value bytes", "Get", "InsDel", "Get-Access"],
    );
    for &value_size in &[8usize, 16, 64, 256, 1024, 1536] {
        let (get, insdel, get_access) = if value_size == 8 {
            // Inlined mode.
            let map = DlhtMap::with_capacity(keys as usize * 2);
            for k in 0..keys {
                let _ = map.insert(k, k).unwrap();
            }
            let mut rng = Xoshiro256::new(1);
            let t = Instant::now();
            for _ in 0..ops {
                std::hint::black_box(map.get(rng.next_below(keys)));
            }
            let get = ops_per_sec(ops, t);
            let t = Instant::now();
            for i in 0..ops / 2 {
                let k = keys + 1 + i;
                let _ = map.insert(k, k).unwrap();
                map.delete(k);
            }
            let insdel = ops_per_sec(ops / 2 * 2, t);
            (get, insdel, get)
        } else {
            // Allocator mode with fixed-size values.
            let map = DlhtAllocMap::new(
                DlhtConfig::for_capacity(keys as usize * 2),
                dlht_core::alloc::AllocatorKind::Pool.build(),
                8,
                value_size,
            );
            let mut session = map.session();
            let value = vec![7u8; value_size];
            for k in 0..keys {
                session.insert(0, &k.to_le_bytes(), &value).unwrap();
            }
            let mut rng = Xoshiro256::new(2);
            let t = Instant::now();
            for _ in 0..ops {
                let k = rng.next_below(keys).to_le_bytes();
                std::hint::black_box(session.get_with(0, &k, |_| ()));
            }
            let get = ops_per_sec(ops, t);
            let t = Instant::now();
            let mut sum = 0u64;
            for _ in 0..ops / 4 {
                let k = rng.next_below(keys).to_le_bytes();
                sum += session
                    .get_with(0, &k, |v| v.iter().map(|&b| b as u64).sum::<u64>())
                    .unwrap_or(0);
            }
            std::hint::black_box(sum);
            let get_access = ops_per_sec(ops / 4, t);
            let t = Instant::now();
            for i in 0..ops / 8 {
                let k = (keys + 1 + i).to_le_bytes();
                session.insert(0, &k, &value).unwrap();
                session.delete(0, &k);
                if i % 128 == 0 {
                    session.quiesce();
                }
            }
            let insdel = ops_per_sec(ops / 8 * 2, t);
            (get, insdel, get_access)
        };
        table.row(&[
            value_size.to_string(),
            fmt_mops(get),
            fmt_mops(insdel),
            fmt_mops(get_access),
        ]);
    }
    table.print();
    println!("Expected shape: Get nearly flat (pointer API), InsDel degrades with allocation size, Get-Access drops fastest.");
}
