//! Figure 9: varying the value size from 8 B (inlined) to 1.5 KB (Allocator
//! mode) for the Get, InsDel, and Get-Access workloads.

use dlht_bench::{run_scenario, timed_mops};
use dlht_core::{DlhtAllocMap, DlhtConfig, DlhtMap};
use dlht_workloads::{fmt_mops, Table};

fn main() {
    run_scenario("fig09_value_size", |ctx| {
        let scale = ctx.scale.clone();
        let keys = scale.keys.min(50_000);
        let ops = (keys * 4).max(50_000);
        let warmup = ops / 10;
        let mut table = Table::new(
            "Fig. 9 — throughput vs value size (M req/s, single thread)",
            &["value bytes", "Get", "InsDel", "Get-Access"],
        );
        for &value_size in &[8usize, 16, 64, 256, 1024, 1536] {
            let (get, insdel, get_access) = if value_size == 8 {
                // Inlined mode.
                let map = DlhtMap::with_capacity(keys as usize * 2);
                for k in 0..keys {
                    let _ = map.insert(k, k).unwrap();
                }
                let mut rng = scale.stream("fig09/inline/get");
                let get = timed_mops(ops, warmup, |_| {
                    std::hint::black_box(map.get(rng.next_below(keys)));
                });
                // Two operations (insert + delete of a fresh key) per step.
                let insdel = 2.0
                    * timed_mops(ops / 2, warmup / 2, |i| {
                        let k = keys + 1 + i;
                        let _ = map.insert(k, k).unwrap();
                        map.delete(k);
                    });
                (get, insdel, get)
            } else {
                // Allocator mode with fixed-size values.
                let map = DlhtAllocMap::new(
                    DlhtConfig::for_capacity(keys as usize * 2),
                    dlht_core::alloc::AllocatorKind::Pool.build(),
                    8,
                    value_size,
                );
                let mut session = map.session();
                let value = vec![7u8; value_size];
                for k in 0..keys {
                    session.insert(0, &k.to_le_bytes(), &value).unwrap();
                }
                let mut rng = scale.stream("fig09/alloc/get");
                let get = timed_mops(ops, warmup, |_| {
                    let k = rng.next_below(keys).to_le_bytes();
                    std::hint::black_box(session.get_with(0, &k, |_| ()));
                });
                let mut sum = 0u64;
                let get_access = timed_mops(ops / 4, warmup / 4, |_| {
                    let k = rng.next_below(keys).to_le_bytes();
                    sum += session
                        .get_with(0, &k, |v| v.iter().map(|&b| b as u64).sum::<u64>())
                        .unwrap_or(0);
                });
                std::hint::black_box(sum);
                let insdel = 2.0
                    * timed_mops(ops / 8, warmup / 8, |i| {
                        let k = (keys + 1 + i).to_le_bytes();
                        session.insert(0, &k, &value).unwrap();
                        session.delete(0, &k);
                        if i % 128 == 0 {
                            session.quiesce();
                        }
                    });
                (get, insdel, get_access)
            };
            for (series, mops) in [("Get", get), ("InsDel", insdel), ("Get-Access", get_access)] {
                ctx.point(series)
                    .axis("value_bytes", value_size)
                    .mops(mops)
                    .emit();
            }
            table.row(&[
                value_size.to_string(),
                fmt_mops(get),
                fmt_mops(insdel),
                fmt_mops(get_access),
            ]);
        }
        ctx.table(&table);
    });
}
