//! Table 1: the feature matrix (collision handling, non-blocking operations,
//! memory-access awareness) plus the occupancy-until-resize study of §5.1.5.

use dlht_baselines::{DlhtAdapter, KvBackend, MapKind};
use dlht_bench::print_header;
use dlht_core::DlhtConfig;
use dlht_hash::HashKind;
use dlht_workloads::{BenchScale, Table};

/// Measure DLHT's occupancy when an insert-only population first triggers a
/// resize (wyhash, link buckets limited to one-fifth of the bins as in
/// §5.1.5).
fn dlht_occupancy_until_resize(bins: usize) -> f64 {
    let map = DlhtAdapter::with_config(
        DlhtConfig::new(bins)
            .with_hash(HashKind::WyHash)
            .with_link_ratio(5),
    );
    let mut k = 0u64;
    loop {
        let _ = map.insert(k, k);
        k += 1;
        if map.inner().resizes() > 0 {
            break;
        }
    }
    // Occupancy right before the grow: keys inserted over the slots of the
    // original index.
    let original_slots = bins * 3 + (bins / 5) * 4;
    (k as usize - 1) as f64 / original_slots as f64
}

/// Measure the CLHT-like baseline's occupancy when it first resizes.
fn clht_occupancy_until_resize(capacity: usize) -> f64 {
    let map = dlht_baselines::ClhtMap::with_capacity(capacity);
    let mut k = 0u64;
    loop {
        let _ = map.insert(k, k);
        k += 1;
        if map.resizes() > 0 {
            break;
        }
    }
    (k as usize - 1) as f64 / capacity as f64
}

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Table 1 (key features for memory-resident performance) + §5.1.5 occupancy",
        "feature matrix of GrowT, Folly, DRAMHiT, MICA, CLHT, DLHT; occupancy until resize with wyhash",
        &scale,
    );
    let mut table = Table::new(
        "Table 1 — feature matrix",
        &[
            "map",
            "collision handling",
            "lock-free gets",
            "puts",
            "inserts",
            "deletes free slots",
            "resizable",
            "non-blocking resize",
            "prefetching",
            "inlined values",
        ],
    );
    let yes_no = |b: bool| if b { "yes" } else { "no" }.to_string();
    for kind in MapKind::all() {
        let f = kind.build(64).features();
        table.row(&[
            kind.name().to_string(),
            f.collision_handling.to_string(),
            yes_no(f.lock_free_gets),
            yes_no(f.non_blocking_puts),
            yes_no(f.non_blocking_inserts),
            yes_no(f.deletes_free_slots),
            yes_no(f.resizable),
            yes_no(f.non_blocking_resize),
            yes_no(f.overlaps_memory_accesses),
            yes_no(f.inline_values),
        ]);
    }
    table.print();

    let bins = (scale.keys as usize / 2).max(4_096);
    let mut occ = Table::new(
        "§5.1.5 — occupancy until resize (wyhash)",
        &["map", "occupancy at first resize", "paper"],
    );
    occ.row(&[
        "DLHT (links = bins/5)".to_string(),
        format!("{:.0}%", dlht_occupancy_until_resize(bins) * 100.0),
        "61-72%".to_string(),
    ]);
    occ.row(&[
        "CLHT (no chaining)".to_string(),
        format!("{:.0}%", clht_occupancy_until_resize(bins * 3) * 100.0),
        "1-5%".to_string(),
    ]);
    occ.row(&[
        "open-addressing rebuild threshold (GrowT codebase)".to_string(),
        "30%".to_string(),
        "30-50%".to_string(),
    ]);
    occ.print();
}
