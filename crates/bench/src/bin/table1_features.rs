//! Table 1: the feature matrix (collision handling, non-blocking operations,
//! memory-access awareness) plus the occupancy-until-resize study of §5.1.5.

use dlht_baselines::{DlhtAdapter, KvBackend, MapKind};
use dlht_bench::run_scenario;
use dlht_core::DlhtConfig;
use dlht_hash::HashKind;
use dlht_workloads::Table;

/// Measure DLHT's occupancy when an insert-only population first triggers a
/// resize (wyhash, link buckets limited to one-fifth of the bins as in
/// §5.1.5).
fn dlht_occupancy_until_resize(bins: usize) -> f64 {
    let map = DlhtAdapter::with_config(
        DlhtConfig::new(bins)
            .with_hash(HashKind::WyHash)
            .with_link_ratio(5),
    );
    let mut k = 0u64;
    loop {
        let _ = map.insert(k, k);
        k += 1;
        if map.inner().resizes() > 0 {
            break;
        }
    }
    // Occupancy right before the grow: keys inserted over the slots of the
    // original index.
    let original_slots = bins * 3 + (bins / 5) * 4;
    (k as usize - 1) as f64 / original_slots as f64
}

/// Measure the CLHT-like baseline's occupancy when it first resizes.
fn clht_occupancy_until_resize(capacity: usize) -> f64 {
    let map = dlht_baselines::ClhtMap::with_capacity(capacity);
    let mut k = 0u64;
    loop {
        let _ = map.insert(k, k);
        k += 1;
        if map.resizes() > 0 {
            break;
        }
    }
    (k as usize - 1) as f64 / capacity as f64
}

fn main() {
    run_scenario("table1_features", |ctx| {
        let scale = ctx.scale.clone();
        let mut table = Table::new(
            "Table 1 — feature matrix",
            &[
                "map",
                "collision handling",
                "lock-free gets",
                "puts",
                "inserts",
                "deletes free slots",
                "resizable",
                "non-blocking resize",
                "prefetching",
                "inlined values",
            ],
        );
        let yes_no = |b: bool| if b { "yes" } else { "no" }.to_string();
        for kind in MapKind::all() {
            let f = kind.build(64).features();
            ctx.point(kind.name())
                .axis("table", "features")
                .extra("collision_handling", f.collision_handling)
                .extra("lock_free_gets", f.lock_free_gets)
                .extra("non_blocking_puts", f.non_blocking_puts)
                .extra("non_blocking_inserts", f.non_blocking_inserts)
                .extra("deletes_free_slots", f.deletes_free_slots)
                .extra("resizable", f.resizable)
                .extra("non_blocking_resize", f.non_blocking_resize)
                .extra("prefetching", f.overlaps_memory_accesses)
                .extra("inline_values", f.inline_values)
                .emit();
            table.row(&[
                kind.name().to_string(),
                f.collision_handling.to_string(),
                yes_no(f.lock_free_gets),
                yes_no(f.non_blocking_puts),
                yes_no(f.non_blocking_inserts),
                yes_no(f.deletes_free_slots),
                yes_no(f.resizable),
                yes_no(f.non_blocking_resize),
                yes_no(f.overlaps_memory_accesses),
                yes_no(f.inline_values),
            ]);
        }
        ctx.table(&table);

        let bins = (scale.keys as usize / 2).max(4_096);
        let dlht_occ = dlht_occupancy_until_resize(bins);
        let clht_occ = clht_occupancy_until_resize(bins * 3);
        let mut occ = Table::new(
            "§5.1.5 — occupancy until resize (wyhash)",
            &["map", "occupancy at first resize", "paper"],
        );
        for (series, occupancy, paper) in [
            ("DLHT (links = bins/5)", dlht_occ, "61-72%"),
            ("CLHT (no chaining)", clht_occ, "1-5%"),
        ] {
            ctx.point(series)
                .axis("table", "occupancy_until_resize")
                .extra("occupancy", occupancy)
                .extra("paper_range", paper)
                .emit();
            occ.row(&[
                series.to_string(),
                format!("{:.0}%", occupancy * 100.0),
                paper.to_string(),
            ]);
        }
        occ.row(&[
            "open-addressing rebuild threshold (GrowT codebase)".to_string(),
            "30%".to_string(),
            "30-50%".to_string(),
        ]);
        ctx.table(&occ);
    });
}
