//! Figure 1: headline throughput of all eight baselines plus DLHT on the Get
//! and InsDel (Delete) workloads at the highest thread count.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, print_header};
use dlht_workloads::{fmt_mops, run_workload, BenchScale, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 1 (throughput of state-of-the-art hashtables and DLHT, 64 threads, 100M objects)",
        "2x18-core Xeon, 64 threads, 100M prepopulated keys, uniform access",
        &scale,
    );
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let mut table = Table::new(
        "Fig. 1 — Get and InsDel throughput (M req/s)",
        &["map", "Get", "InsDel"],
    );
    for kind in MapKind::all() {
        let map = build_prepopulated(kind, &scale);
        let get = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(scale.keys, threads, scale.duration()),
        );
        let insdel = run_workload(
            map.as_ref(),
            &WorkloadSpec::insdel_default(scale.keys, threads, scale.duration()),
        );
        table.row(&[
            kind.name().to_string(),
            fmt_mops(get.mops),
            fmt_mops(insdel.mops),
        ]);
    }
    table.print();
    println!(
        "Paper reference points: DLHT 1660 M Gets/s; all others < 1000 M; DLHT ~12x GrowT on deletes."
    );
}
