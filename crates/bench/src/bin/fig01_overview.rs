//! Figure 1: headline throughput of all eight baselines plus DLHT on the Get
//! and InsDel (Delete) workloads at the highest thread count.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, run_scenario};
use dlht_workloads::{fmt_mops, Table, WorkloadSpec};

fn main() {
    run_scenario("fig01_overview", |ctx| {
        let scale = ctx.scale.clone();
        let threads = *scale.threads.iter().max().unwrap_or(&1);
        let mut table = Table::new(
            "Fig. 1 — Get and InsDel throughput (M req/s)",
            &["map", "Get", "InsDel"],
        );
        for kind in MapKind::all() {
            let map = build_prepopulated(kind, &scale);
            let mut mops = Vec::new();
            // Capture stats/retired right after each workload's run, so the
            // Get point doesn't carry the later InsDel run's mutations.
            for (workload, spec) in [
                (
                    "Get",
                    WorkloadSpec::get_default(scale.keys, threads, scale.duration()),
                ),
                (
                    "InsDel",
                    WorkloadSpec::insdel_default(scale.keys, threads, scale.duration()),
                ),
            ] {
                let r = ctx.measure(map.as_ref(), &spec);
                ctx.point(kind.name())
                    .axis("workload", workload)
                    .axis("threads", threads)
                    .result(&r)
                    .stats(&map.stats())
                    .retired(map.retired_indexes())
                    .emit();
                mops.push(r.mops);
            }
            table.row(&[
                kind.name().to_string(),
                fmt_mops(mops[0]),
                fmt_mops(mops[1]),
            ]);
        }
        ctx.table(&table);
        ctx.note(
            "Paper reference points: DLHT 1660 M Gets/s; all others < 1000 M; DLHT ~12x GrowT on deletes.",
        );
    });
}
