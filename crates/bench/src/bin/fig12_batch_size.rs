//! Figure 12: varying the batch size (1..128) for Get, InsDel, and
//! Get-Resizing (resizing compiled in but not exercised), plus the
//! pipelined submission interface (depth = batch size) for comparison.

use dlht_baselines::DlhtAdapter;
use dlht_bench::print_header;
use dlht_core::DlhtConfig;
use dlht_workloads::{fmt_mops, prepopulate, run_workload, BenchScale, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 12 (varying batch size)",
        "batch 1..128; gains saturate around 24 (MSHR/TLB limits); resizing support costs more without batching",
        &scale,
    );
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let duration = scale.duration();
    let keys = scale.keys;

    // Get / Get-Resizing / InsDel maps: resizing disabled vs enabled.
    let no_resize =
        DlhtAdapter::with_config(DlhtConfig::for_capacity(keys as usize * 2).with_resizing(false));
    let with_resize =
        DlhtAdapter::with_config(DlhtConfig::for_capacity(keys as usize * 2).with_resizing(true));
    prepopulate(&no_resize, keys);
    prepopulate(&with_resize, keys);

    let mut table = Table::new(
        "Fig. 12 — throughput vs batch size (M req/s)",
        &["batch", "Get", "Get-Pipelined", "Get-Resizing", "InsDel"],
    );
    for &batch in &[1usize, 2, 4, 8, 16, 24, 32, 64, 128] {
        let get = run_workload(
            &no_resize,
            &WorkloadSpec::get_default(keys, threads, duration).with_batch_size(batch),
        );
        let get_pipelined = run_workload(
            &no_resize,
            &WorkloadSpec::get_default(keys, threads, duration)
                .with_batch_size(batch)
                .with_pipeline(batch),
        );
        let get_resizing = run_workload(
            &with_resize,
            &WorkloadSpec::get_default(keys, threads, duration).with_batch_size(batch),
        );
        let insdel = run_workload(
            &no_resize,
            &WorkloadSpec::insdel_default(keys, threads, duration).with_batch_size(batch),
        );
        table.row(&[
            batch.to_string(),
            fmt_mops(get.mops),
            fmt_mops(get_pipelined.mops),
            fmt_mops(get_resizing.mops),
            fmt_mops(insdel.mops),
        ]);
    }
    table.print();
    println!("Expected shape: throughput rises with batch size and saturates; Get-Resizing trails Get most at batch 1; the pipeline tracks the batch curve without window boundaries.");
}
