//! Figure 12: varying the batch size (1..128) for Get, InsDel, and
//! Get-Resizing (resizing compiled in but not exercised), plus the
//! pipelined submission interface (depth = batch size) for comparison.

use dlht_baselines::DlhtAdapter;
use dlht_bench::run_scenario;
use dlht_core::DlhtConfig;
use dlht_workloads::{fmt_mops, prepopulate, Table, WorkloadSpec};

fn main() {
    run_scenario("fig12_batch_size", |ctx| {
        let scale = ctx.scale.clone();
        let threads = *scale.threads.iter().max().unwrap_or(&1);
        let duration = scale.duration();
        let keys = scale.keys;

        // Get / Get-Resizing / InsDel maps: resizing disabled vs enabled.
        let no_resize = DlhtAdapter::with_config(
            DlhtConfig::for_capacity(keys as usize * 2).with_resizing(false),
        );
        let with_resize = DlhtAdapter::with_config(
            DlhtConfig::for_capacity(keys as usize * 2).with_resizing(true),
        );
        prepopulate(&no_resize, keys);
        prepopulate(&with_resize, keys);

        let mut table = Table::new(
            "Fig. 12 — throughput vs batch size (M req/s)",
            &["batch", "Get", "Get-Pipelined", "Get-Resizing", "InsDel"],
        );
        for &batch in &[1usize, 2, 4, 8, 16, 24, 32, 64, 128] {
            let get = ctx.measure(
                &no_resize,
                &WorkloadSpec::get_default(keys, threads, duration).with_batch_size(batch),
            );
            let get_pipelined = ctx.measure(
                &no_resize,
                &WorkloadSpec::get_default(keys, threads, duration)
                    .with_batch_size(batch)
                    .with_pipeline(batch),
            );
            let get_resizing = ctx.measure(
                &with_resize,
                &WorkloadSpec::get_default(keys, threads, duration).with_batch_size(batch),
            );
            let insdel = ctx.measure(
                &no_resize,
                &WorkloadSpec::insdel_default(keys, threads, duration).with_batch_size(batch),
            );
            for (series, r) in [
                ("Get", &get),
                ("Get-Pipelined", &get_pipelined),
                ("Get-Resizing", &get_resizing),
                ("InsDel", &insdel),
            ] {
                ctx.point(series)
                    .axis("batch", batch)
                    .axis("threads", threads)
                    .result(r)
                    .emit();
            }
            table.row(&[
                batch.to_string(),
                fmt_mops(get.mops),
                fmt_mops(get_pipelined.mops),
                fmt_mops(get_resizing.mops),
                fmt_mops(insdel.mops),
            ]);
        }
        ctx.table(&table);
    });
}
