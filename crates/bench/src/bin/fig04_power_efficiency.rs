//! Figure 4: Get power-efficiency (M req/s per watt) vs thread count.
//!
//! Substitution (DESIGN.md): power comes from the deterministic model in
//! `dlht_workloads::power` instead of RAPL; the ordering (fewer memory
//! accesses per request ⇒ higher efficiency) is what this reproduces.

use dlht_baselines::MapKind;
use dlht_bench::run_scenario;
use dlht_workloads::power::{efficiency_mops_per_watt, PowerInput};
use dlht_workloads::{Table, WorkloadSpec};

fn main() {
    run_scenario("fig04_power_efficiency", |ctx| {
        let scale = ctx.scale.clone();
        let kinds = [
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::Dramhit,
            MapKind::Growt,
            MapKind::Clht,
            MapKind::Mica,
        ];
        let points = ctx.sweep(&kinds, |threads| {
            WorkloadSpec::get_default(scale.keys, threads, scale.duration())
        });
        let mut table = Table::new(
            "Fig. 4 — Get power efficiency (M req/s per modeled watt)",
            &["map", "threads", "Mreq/s", "modeled W", "Mreq/s/W"],
        );
        for p in &points {
            let features = p.kind.build(64).features();
            let input = PowerInput {
                mops: p.result.mops,
                threads: p.threads,
                write_fraction: 0.0,
            };
            let watts = dlht_workloads::power::modeled_power(&features, input);
            let efficiency = efficiency_mops_per_watt(&features, input);
            ctx.point(p.kind.name())
                .axis("threads", p.threads)
                .result(&p.result)
                .stats(&p.stats)
                .retired(p.retired)
                .extra("modeled_watts", watts)
                .extra("mops_per_watt", efficiency)
                .emit();
            table.row(&[
                p.kind.name().to_string(),
                p.threads.to_string(),
                dlht_workloads::fmt_mops(p.result.mops),
                format!("{watts:.1}"),
                format!("{efficiency:.3}"),
            ]);
        }
        ctx.table(&table);
    });
}
