//! Figure 4: Get power-efficiency (M req/s per watt) vs thread count.
//!
//! Substitution (DESIGN.md): power comes from the deterministic model in
//! `dlht_workloads::power` instead of RAPL; the ordering (fewer memory
//! accesses per request ⇒ higher efficiency) is what this reproduces.

use dlht_baselines::MapKind;
use dlht_bench::{print_header, sweep};
use dlht_workloads::power::{efficiency_mops_per_watt, PowerInput};
use dlht_workloads::{BenchScale, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 4 (Get power-efficiency, modeled)",
        "100% Gets; paper peaks at 3.35 M req/s/W for DLHT",
        &scale,
    );
    let keys = scale.keys;
    let duration = scale.duration();
    let kinds = [
        MapKind::Dlht,
        MapKind::DlhtNoBatch,
        MapKind::Dramhit,
        MapKind::Growt,
        MapKind::Clht,
        MapKind::Mica,
    ];
    let points = sweep(&kinds, &scale, |threads| {
        WorkloadSpec::get_default(keys, threads, duration)
    });
    let mut table = Table::new(
        "Fig. 4 — Get power efficiency (M req/s per modeled watt)",
        &["map", "threads", "Mreq/s", "modeled W", "Mreq/s/W"],
    );
    for p in &points {
        let features = p.kind.build(64).features();
        let input = PowerInput {
            mops: p.result.mops,
            threads: p.threads,
            write_fraction: 0.0,
        };
        let watts = dlht_workloads::power::modeled_power(&features, input);
        table.row(&[
            p.kind.name().to_string(),
            p.threads.to_string(),
            dlht_workloads::fmt_mops(p.result.mops),
            format!("{watts:.1}"),
            format!("{:.3}", efficiency_mops_per_watt(&features, input)),
        ]);
    }
    table.print();
    println!(
        "Expected shape: DLHT most efficient, then DRAMHiT-like, then the resizable baselines."
    );
}
