//! Figure 17: database lock manager built on DLHT's HashSet mode — locks and
//! unlocks per second with and without order-preserving batching.

use dlht_bench::run_scenario;
use dlht_workloads::lockmgr::run_lock_manager;
use dlht_workloads::{fmt_mops, Table};

fn main() {
    run_scenario("fig17_lock_manager", |ctx| {
        let scale = ctx.scale.clone();
        let records = scale.keys;
        let mut table = Table::new(
            "Fig. 17 — lock/unlock throughput (M ops/s)",
            &[
                "threads",
                "DLHT (batched)",
                "DLHT-NoBatch",
                "conflicts (batched)",
            ],
        );
        for &threads in &scale.threads {
            // Warm-up pass (discarded) then the measured pass, per variant.
            let _ = run_lock_manager(records, 8, threads, scale.warmup(), true);
            let batched = run_lock_manager(records, 8, threads, scale.duration(), true);
            let _ = run_lock_manager(records, 8, threads, scale.warmup(), false);
            let unbatched = run_lock_manager(records, 8, threads, scale.duration(), false);
            for (series, r) in [("batched", &batched), ("unbatched", &unbatched)] {
                ctx.point(series)
                    .axis("threads", threads)
                    .mops(r.mops)
                    .extra("conflicts", r.conflicted)
                    .emit();
            }
            table.row(&[
                threads.to_string(),
                fmt_mops(batched.mops),
                fmt_mops(unbatched.mops),
                batched.conflicted.to_string(),
            ]);
        }
        ctx.table(&table);
    });
}
