//! Figure 17: database lock manager built on DLHT's HashSet mode — locks and
//! unlocks per second with and without order-preserving batching.

use dlht_bench::print_header;
use dlht_workloads::lockmgr::run_lock_manager;
use dlht_workloads::{fmt_mops, BenchScale, Table};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 17 (lock manager over HashSet)",
        "locks/unlocks per second; batching peaks near 1.5B ops/s, ~2.2x the unbatched variant",
        &scale,
    );
    let records = scale.keys;
    let mut table = Table::new(
        "Fig. 17 — lock/unlock throughput (M ops/s)",
        &[
            "threads",
            "DLHT (batched)",
            "DLHT-NoBatch",
            "conflicts (batched)",
        ],
    );
    for &threads in &scale.threads {
        let batched = run_lock_manager(records, 8, threads, scale.duration(), true);
        let unbatched = run_lock_manager(records, 8, threads, scale.duration(), false);
        table.row(&[
            threads.to_string(),
            fmt_mops(batched.mops),
            fmt_mops(unbatched.mops),
            batched.conflicted.to_string(),
        ]);
    }
    table.print();
    println!("Expected shape: batched locking scales with threads and stays ahead of the unbatched variant.");
}
