//! Table 5: comparison summary of DLHT against the fastest baselines —
//! Get throughput ratio, InsDel ratio, and population ratio.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, run_scenario, ScenarioCtx};
use dlht_workloads::population::populate_growing;
use dlht_workloads::{Table, WorkloadSpec};

fn measure(ctx: &ScenarioCtx, kind: MapKind, threads: usize) -> (f64, f64) {
    let scale = &ctx.scale;
    let map = build_prepopulated(kind, scale);
    let get = ctx.measure(
        map.as_ref(),
        &WorkloadSpec::get_default(scale.keys, threads, scale.duration()),
    );
    let insdel = ctx.measure(
        map.as_ref(),
        &WorkloadSpec::insdel_default(scale.keys, threads, scale.duration()),
    );
    (get.mops, insdel.mops)
}

fn population(ctx: &ScenarioCtx, kind: MapKind, threads: usize) -> f64 {
    let map = kind.build(1_024);
    populate_growing(map.as_ref(), ctx.scale.keys * 2, threads).mops
}

fn main() {
    run_scenario("table5_summary", |ctx| {
        let threads = *ctx.scale.threads.iter().max().unwrap_or(&1);
        let (dlht_get, dlht_insdel) = measure(ctx, MapKind::Dlht, threads);
        let dlht_pop = population(ctx, MapKind::Dlht, threads);

        let mut table = Table::new(
            "Table 5 — DLHT advantage over each baseline (ratio > 1 means DLHT is faster)",
            &[
                "baseline",
                "Get ratio",
                "InsDel ratio",
                "Population ratio",
                "paper says",
            ],
        );
        let paper = [
            (MapKind::Clht, "3.5x Gets, ~3x InsDel, 8x population"),
            (MapKind::Growt, "3.5x Gets, 12.8x InsDel, 3.9x population"),
            (MapKind::Folly, "3.5x Gets"),
            (MapKind::Dramhit, "1.7x Gets"),
            (MapKind::Mica, "4.8x Gets"),
            (MapKind::DlhtNoBatch, "2.2x Gets (value of prefetching)"),
        ];
        for (kind, note) in paper {
            let (get, insdel) = measure(ctx, kind, threads);
            let get_ratio = dlht_get / get.max(1e-9);
            let insdel_ratio = dlht_insdel / insdel.max(1e-9);
            let pop_ratio = if kind.build(64).features().resizable {
                Some(dlht_pop / population(ctx, kind, threads).max(1e-9))
            } else {
                None
            };
            let mut point = ctx
                .point(kind.name())
                .axis("threads", threads)
                .extra("get_ratio", get_ratio)
                .extra("insdel_ratio", insdel_ratio)
                .extra("paper_says", note);
            if let Some(p) = pop_ratio {
                point = point.extra("population_ratio", p);
            }
            point.emit();
            table.row(&[
                kind.name().to_string(),
                format!("{get_ratio:.1}x"),
                format!("{insdel_ratio:.1}x"),
                pop_ratio
                    .map(|p| format!("{p:.1}x"))
                    .unwrap_or_else(|| "n/a".to_string()),
                note.to_string(),
            ]);
        }
        ctx.table(&table);
    });
}
