//! Table 5: comparison summary of DLHT against the fastest baselines —
//! Get throughput ratio, InsDel ratio, and population ratio.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, print_header};
use dlht_workloads::population::populate_growing;
use dlht_workloads::{run_workload, BenchScale, Table, WorkloadSpec};

fn measure(kind: MapKind, scale: &BenchScale, threads: usize) -> (f64, f64) {
    let map = build_prepopulated(kind, scale);
    let get = run_workload(
        map.as_ref(),
        &WorkloadSpec::get_default(scale.keys, threads, scale.duration()),
    );
    let insdel = run_workload(
        map.as_ref(),
        &WorkloadSpec::insdel_default(scale.keys, threads, scale.duration()),
    );
    (get.mops, insdel.mops)
}

fn population(kind: MapKind, scale: &BenchScale, threads: usize) -> f64 {
    let map = kind.build(1_024);
    populate_growing(map.as_ref(), scale.keys * 2, threads).mops
}

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Table 5 (comparison summary of DLHT and the fastest baselines)",
        "paper: CLHT 3.5x slower Gets / 8x slower population; GrowT 12.8x slower InsDel; MICA 4.8x slower Gets; DRAMHiT 1.7x slower Gets",
        &scale,
    );
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let (dlht_get, dlht_insdel) = measure(MapKind::Dlht, &scale, threads);
    let dlht_pop = population(MapKind::Dlht, &scale, threads);

    let mut table = Table::new(
        "Table 5 — DLHT advantage over each baseline (ratio > 1 means DLHT is faster)",
        &[
            "baseline",
            "Get ratio",
            "InsDel ratio",
            "Population ratio",
            "paper says",
        ],
    );
    let paper = [
        (MapKind::Clht, "3.5x Gets, ~3x InsDel, 8x population"),
        (MapKind::Growt, "3.5x Gets, 12.8x InsDel, 3.9x population"),
        (MapKind::Folly, "3.5x Gets"),
        (MapKind::Dramhit, "1.7x Gets"),
        (MapKind::Mica, "4.8x Gets"),
        (MapKind::DlhtNoBatch, "2.2x Gets (value of prefetching)"),
    ];
    for (kind, note) in paper {
        let (get, insdel) = measure(kind, &scale, threads);
        let pop = if kind.build(64).features().resizable {
            format!(
                "{:.1}x",
                dlht_pop / population(kind, &scale, threads).max(1e-9)
            )
        } else {
            "n/a".to_string()
        };
        table.row(&[
            kind.name().to_string(),
            format!("{:.1}x", dlht_get / get.max(1e-9)),
            format!("{:.1}x", dlht_insdel / insdel.max(1e-9)),
            pop,
            note.to_string(),
        ]);
    }
    table.print();
}
