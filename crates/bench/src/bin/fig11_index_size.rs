//! Figure 11: varying the index size from cache-resident (1 MB) to
//! memory-resident (paper: up to 64 GB). Prefetching/batching only pays off
//! once the index no longer fits in the caches.

use dlht_baselines::MapKind;
use dlht_bench::print_header;
use dlht_workloads::{fmt_mops, prepopulate, run_workload, BenchScale, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 11 (varying index size: Get, Get-NoBatch, InsDel)",
        "1MB (8K keys) .. 64GB (1B keys) index; batching only helps once the index exceeds the caches",
        &scale,
    );
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let duration = scale.duration();
    let mut table = Table::new(
        "Fig. 11 — throughput vs prepopulated keys (M req/s)",
        &["keys", "Get", "Get-NoBatch", "InsDel"],
    );
    let sizes: Vec<u64> = [8_192u64, 65_536, 262_144, 1_048_576, 4_194_304]
        .iter()
        .copied()
        .filter(|&k| k <= scale.keys.max(8_192) * 32)
        .collect();
    for keys in sizes {
        let map = MapKind::Dlht.build(keys as usize * 2);
        prepopulate(map.as_ref(), keys);
        let get = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(keys, threads, duration),
        );
        let get_nobatch = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(keys, threads, duration).without_batching(),
        );
        let insdel = run_workload(
            map.as_ref(),
            &WorkloadSpec::insdel_default(keys, threads, duration),
        );
        table.row(&[
            keys.to_string(),
            fmt_mops(get.mops),
            fmt_mops(get_nobatch.mops),
            fmt_mops(insdel.mops),
        ]);
    }
    table.print();
    println!("Expected shape: Get and Get-NoBatch converge for cache-resident sizes; the gap widens as the index grows.");
}
