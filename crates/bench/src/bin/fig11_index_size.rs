//! Figure 11: varying the index size from cache-resident (1 MB) to
//! memory-resident (paper: up to 64 GB). Prefetching/batching only pays off
//! once the index no longer fits in the caches.

use dlht_baselines::MapKind;
use dlht_bench::run_scenario;
use dlht_workloads::{fmt_mops, prepopulate, Table, WorkloadSpec};

fn main() {
    run_scenario("fig11_index_size", |ctx| {
        let scale = ctx.scale.clone();
        let threads = *scale.threads.iter().max().unwrap_or(&1);
        let duration = scale.duration();
        let mut table = Table::new(
            "Fig. 11 — throughput vs prepopulated keys (M req/s)",
            &["keys", "Get", "Get-NoBatch", "InsDel"],
        );
        let sizes: Vec<u64> = [8_192u64, 65_536, 262_144, 1_048_576, 4_194_304]
            .iter()
            .copied()
            .filter(|&k| k <= scale.keys.max(8_192) * 32)
            .collect();
        for keys in sizes {
            let map = MapKind::Dlht.build(keys as usize * 2);
            prepopulate(map.as_ref(), keys);
            let specs = [
                ("Get", WorkloadSpec::get_default(keys, threads, duration)),
                (
                    "Get-NoBatch",
                    WorkloadSpec::get_default(keys, threads, duration).without_batching(),
                ),
                (
                    "InsDel",
                    WorkloadSpec::insdel_default(keys, threads, duration),
                ),
            ];
            let mut row = vec![keys.to_string()];
            for (series, spec) in specs {
                let r = ctx.measure(map.as_ref(), &spec);
                ctx.point(series)
                    .axis("keys", keys)
                    .axis("threads", threads)
                    .result(&r)
                    .stats(&map.stats())
                    .retired(map.retired_indexes())
                    .emit();
                row.push(fmt_mops(r.mops));
            }
            table.row(&row);
        }
        ctx.table(&table);
    });
}
