//! Figure 6: Put-heavy workload (50% Gets / 50% Puts) throughput vs threads.

use dlht_baselines::MapKind;
use dlht_bench::{run_scenario, throughput_table};
use dlht_workloads::{Mix, WorkloadSpec};

fn main() {
    run_scenario("fig06_put_heavy", |ctx| {
        let scale = ctx.scale.clone();
        let kinds = [
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::Growt,
            MapKind::Folly,
            MapKind::Dramhit,
            MapKind::Mica,
        ];
        let points = ctx.sweep(&kinds, |threads| WorkloadSpec {
            mix: Mix::PUT_HEAVY,
            ..WorkloadSpec::get_default(scale.keys, threads, scale.duration())
        });
        ctx.emit_sweep(&points);
        ctx.table(&throughput_table(
            "Fig. 6 — Put-heavy throughput (M req/s)",
            &points,
            &scale,
        ));
    });
}
