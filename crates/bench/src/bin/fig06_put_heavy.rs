//! Figure 6: Put-heavy workload (50% Gets / 50% Puts) throughput vs threads.

use dlht_baselines::MapKind;
use dlht_bench::{print_header, sweep, throughput_table};
use dlht_workloads::{BenchScale, Mix, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 6 (Put-heavy throughput)",
        "50% Gets + 50% Puts over 100M prepopulated keys; CLHT omitted (no Puts)",
        &scale,
    );
    let keys = scale.keys;
    let duration = scale.duration();
    let kinds = [
        MapKind::Dlht,
        MapKind::DlhtNoBatch,
        MapKind::Growt,
        MapKind::Folly,
        MapKind::Dramhit,
        MapKind::Mica,
    ];
    let points = sweep(&kinds, &scale, |threads| WorkloadSpec {
        mix: Mix::PUT_HEAVY,
        ..WorkloadSpec::get_default(keys, threads, duration)
    });
    throughput_table("Fig. 6 — Put-heavy throughput (M req/s)", &points, &scale).print();
    println!(
        "Expected shape: DLHT first (paper: 1042 M req/s), DRAMHiT-like close, MICA-like last."
    );
}
