//! Figure 10: varying the key size from 8 B to 256 B (Get and InsDel); keys
//! larger than 8 B leave only a signature in the slot and force a pointer
//! dereference on every Get.

use dlht_bench::print_header;
use dlht_core::{DlhtAllocMap, DlhtConfig};
use dlht_workloads::{fmt_mops, BenchScale, Table, Xoshiro256};
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 10 (varying key size: Get, InsDel)",
        "8B..256B keys, 8B values; steep drop past 8B keys (signature + dereference)",
        &scale,
    );
    let keys = scale.keys.min(50_000);
    let ops = (keys * 4).max(50_000);
    let mut table = Table::new(
        "Fig. 10 — throughput vs key size (M req/s, single thread)",
        &["key bytes", "Get", "InsDel"],
    );
    for &key_size in &[8usize, 16, 32, 64, 128, 256] {
        let map = DlhtAllocMap::new(
            DlhtConfig::for_capacity(keys as usize * 2).with_variable_size(true),
            dlht_core::alloc::AllocatorKind::Pool.build(),
            0,
            0,
        );
        let mut session = map.session();
        let make_key = |i: u64| -> Vec<u8> {
            let mut k = vec![0u8; key_size];
            k[..8].copy_from_slice(&i.to_le_bytes());
            k
        };
        for i in 0..keys {
            session.insert(0, &make_key(i), &i.to_le_bytes()).unwrap();
        }
        let mut rng = Xoshiro256::new(3);
        let t = Instant::now();
        for _ in 0..ops {
            let k = make_key(rng.next_below(keys));
            std::hint::black_box(session.get_with(0, &k, |_| ()));
        }
        let get = ops as f64 / t.elapsed().as_secs_f64() / 1e6;
        let t = Instant::now();
        for i in 0..ops / 8 {
            let k = make_key(keys + 1 + i);
            session.insert(0, &k, &i.to_le_bytes()).unwrap();
            session.delete(0, &k);
            if i % 128 == 0 {
                session.quiesce();
            }
        }
        let insdel = (ops / 8 * 2) as f64 / t.elapsed().as_secs_f64() / 1e6;
        table.row(&[key_size.to_string(), fmt_mops(get), fmt_mops(insdel)]);
    }
    table.print();
    println!("Expected shape: clear drop from 8B to 16B keys (extra dereference + larger allocations), gentle decline after.");
}
