//! Figure 10: varying the key size from 8 B to 256 B (Get and InsDel); keys
//! larger than 8 B leave only a signature in the slot and force a pointer
//! dereference on every Get.

use dlht_bench::{run_scenario, timed_mops};
use dlht_core::{DlhtAllocMap, DlhtConfig};
use dlht_workloads::{fmt_mops, Table};

fn main() {
    run_scenario("fig10_key_size", |ctx| {
        let scale = ctx.scale.clone();
        let keys = scale.keys.min(50_000);
        let ops = (keys * 4).max(50_000);
        let mut table = Table::new(
            "Fig. 10 — throughput vs key size (M req/s, single thread)",
            &["key bytes", "Get", "InsDel"],
        );
        for &key_size in &[8usize, 16, 32, 64, 128, 256] {
            let map = DlhtAllocMap::new(
                DlhtConfig::for_capacity(keys as usize * 2).with_variable_size(true),
                dlht_core::alloc::AllocatorKind::Pool.build(),
                0,
                0,
            );
            let mut session = map.session();
            let make_key = |i: u64| -> Vec<u8> {
                let mut k = vec![0u8; key_size];
                k[..8].copy_from_slice(&i.to_le_bytes());
                k
            };
            for i in 0..keys {
                session.insert(0, &make_key(i), &i.to_le_bytes()).unwrap();
            }
            let mut rng = scale.stream("fig10/get");
            let get = timed_mops(ops, ops / 10, |_| {
                let k = make_key(rng.next_below(keys));
                std::hint::black_box(session.get_with(0, &k, |_| ()));
            });
            let insdel = 2.0
                * timed_mops(ops / 8, ops / 80, |i| {
                    let k = make_key(keys + 1 + i);
                    session.insert(0, &k, &i.to_le_bytes()).unwrap();
                    session.delete(0, &k);
                    if i % 128 == 0 {
                        session.quiesce();
                    }
                });
            for (series, mops) in [("Get", get), ("InsDel", insdel)] {
                ctx.point(series)
                    .axis("key_bytes", key_size)
                    .mops(mops)
                    .emit();
            }
            table.row(&[key_size.to_string(), fmt_mops(get), fmt_mops(insdel)]);
        }
        ctx.table(&table);
    });
}
