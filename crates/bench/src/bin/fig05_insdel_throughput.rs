//! Figure 5: InsDel (50% Insert / 50% Delete of the same key) throughput vs
//! threads — the workload where tombstone-based open addressing collapses.

use dlht_baselines::MapKind;
use dlht_bench::{run_scenario, throughput_table};
use dlht_workloads::WorkloadSpec;

fn main() {
    run_scenario("fig05_insdel_throughput", |ctx| {
        let scale = ctx.scale.clone();
        let kinds = [
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::Clht,
            MapKind::Growt,
            MapKind::Mica,
        ];
        let points = ctx.sweep(&kinds, |threads| {
            WorkloadSpec::insdel_default(scale.keys, threads, scale.duration())
        });
        ctx.emit_sweep(&points);
        ctx.table(&throughput_table(
            "Fig. 5 — InsDel throughput (M req/s)",
            &points,
            &scale,
        ));
    });
}
