//! Figure 5: InsDel (50% Insert / 50% Delete of the same key) throughput vs
//! threads — the workload where tombstone-based open addressing collapses.

use dlht_baselines::MapKind;
use dlht_bench::{print_header, sweep, throughput_table};
use dlht_workloads::{BenchScale, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 5 (InsDel throughput)",
        "Insert immediately followed by Delete of the same key; empty 100M-capacity tables",
        &scale,
    );
    let keys = scale.keys;
    let duration = scale.duration();
    let kinds = [
        MapKind::Dlht,
        MapKind::DlhtNoBatch,
        MapKind::Clht,
        MapKind::Growt,
        MapKind::Mica,
    ];
    let points = sweep(&kinds, &scale, |threads| {
        WorkloadSpec::insdel_default(keys, threads, duration)
    });
    throughput_table("Fig. 5 — InsDel throughput (M req/s)", &points, &scale).print();
    println!("Expected shape: DLHT ~3x CLHT and >10x GrowT-like (which must keep migrating to shed tombstones).");
}
