//! Figure 15: average and 99th-percentile latency of Gets and InsDel as the
//! offered load (thread count) increases.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, print_header};
use dlht_workloads::{run_workload, BenchScale, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 15 (latency of Gets and InsDel vs load)",
        "average in the 100s of ns, tail below 1us even under high load",
        &scale,
    );
    let map = build_prepopulated(MapKind::Dlht, &scale);
    let mut table = Table::new(
        "Fig. 15 — latency vs load",
        &["threads", "workload", "Mreq/s", "avg (ns)", "p99 (ns)"],
    );
    for &threads in &scale.threads {
        for (name, spec) in [
            (
                "Get",
                WorkloadSpec::get_default(scale.keys, threads, scale.duration())
                    .with_latency_recording(),
            ),
            (
                "InsDel",
                WorkloadSpec::insdel_default(scale.keys, threads, scale.duration())
                    .with_latency_recording(),
            ),
        ] {
            let r = run_workload(map.as_ref(), &spec);
            table.row(&[
                threads.to_string(),
                name.to_string(),
                dlht_workloads::fmt_mops(r.mops),
                format!("{:.0}", r.latency.mean_ns()),
                r.latency.percentile_ns(99.0).to_string(),
            ]);
        }
    }
    table.print();
    println!("Expected shape: latency grows with load; InsDel above Get; p99 stays well under a microsecond at low load.");
}
