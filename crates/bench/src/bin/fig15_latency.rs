//! Figure 15: average and 99th-percentile latency of Gets and InsDel as the
//! offered load (thread count) increases.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, run_scenario};
use dlht_workloads::{Table, WorkloadSpec};

fn main() {
    run_scenario("fig15_latency", |ctx| {
        let scale = ctx.scale.clone();
        let map = build_prepopulated(MapKind::Dlht, &scale);
        let mut table = Table::new(
            "Fig. 15 — latency vs load",
            &["threads", "workload", "Mreq/s", "avg (ns)", "p99 (ns)"],
        );
        for &threads in &scale.threads {
            for (name, spec) in [
                (
                    "Get",
                    WorkloadSpec::get_default(scale.keys, threads, scale.duration())
                        .with_latency_recording(),
                ),
                (
                    "InsDel",
                    WorkloadSpec::insdel_default(scale.keys, threads, scale.duration())
                        .with_latency_recording(),
                ),
            ] {
                let r = ctx.measure(map.as_ref(), &spec);
                ctx.point(name)
                    .axis("threads", threads)
                    .result(&r)
                    .stats(&map.stats())
                    .retired(map.retired_indexes())
                    .emit();
                table.row(&[
                    threads.to_string(),
                    name.to_string(),
                    dlht_workloads::fmt_mops(r.mops),
                    format!("{:.0}", r.latency.mean_ns()),
                    r.latency.percentile_ns(99.0).to_string(),
                ]);
            }
        }
        ctx.table(&table);
    });
}
