//! Run the entire figure/table suite sequentially, driven by the scenario
//! registry. Each experiment is also available as its own binary; this
//! wrapper exists so `cargo run --release -p dlht-bench --bin run_all --
//! --smoke` (CI tier) or `-- --full` (environment-scaled) regenerates
//! everything the paper's evaluation section reports **and** leaves one
//! schema-versioned `BENCH_<scenario>.json` artifact per scenario
//! (`DLHT_BENCH_DIR`, default the working directory) for `bench_report`
//! to diff against another run.

use dlht_bench::REGISTRY;
use std::process::Command;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = dlht_workloads::BenchScale::from_env_and_args(args.iter().cloned());
    let bench_dir = std::env::var("DLHT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("cannot locate the bench binaries");
    eprintln!(
        "Running all {} scenarios at tier {} (BENCH_*.json -> {bench_dir})",
        REGISTRY.len(),
        scale.tier.name()
    );
    let started = Instant::now();
    let mut failures = Vec::new();
    for scenario in REGISTRY {
        eprintln!("\n================================================================");
        eprintln!("  {} ({})", scenario.name, scenario.figure);
        eprintln!("================================================================");
        let t = Instant::now();
        let path = exe_dir.join(scenario.bin);
        // The resolved tier and shard count travel by environment so every
        // child applies the same configuration the wrapper resolved
        // (children don't re-parse --smoke / --shards).
        let status = Command::new(&path)
            .env("DLHT_TIER", scale.tier.name())
            .env("DLHT_SHARDS", scale.shards.to_string())
            .status();
        match status {
            Ok(s) if s.success() => {
                let artifact =
                    std::path::Path::new(&bench_dir).join(format!("BENCH_{}.json", scenario.name));
                if artifact.is_file() {
                    eprintln!(
                        "  -> ok in {:.1}s ({})",
                        t.elapsed().as_secs_f64(),
                        artifact.display()
                    );
                } else {
                    eprintln!(
                        "{}: exited cleanly but wrote no {}",
                        scenario.name,
                        artifact.display()
                    );
                    failures.push(scenario.name);
                }
            }
            Ok(s) => {
                eprintln!("{} exited with {s}", scenario.name);
                failures.push(scenario.name);
            }
            Err(e) => {
                eprintln!(
                    "failed to launch {} ({e}); run it via `cargo run --release -p dlht-bench --bin {}`",
                    scenario.name, scenario.bin
                );
                failures.push(scenario.name);
            }
        }
    }
    eprintln!("\n================================================================");
    if failures.is_empty() {
        eprintln!(
            "All {} scenarios completed in {:.1}s; diff two runs with `bench_report <old> <new>`.",
            REGISTRY.len(),
            started.elapsed().as_secs_f64()
        );
    } else {
        eprintln!("Completed with {} failures: {:?}", failures.len(), failures);
        std::process::exit(1);
    }
}
