//! Run the entire figure/table suite sequentially. Each experiment is also
//! available as its own binary; this wrapper exists so
//! `cargo run --release -p dlht-bench --bin run_all` regenerates everything
//! the paper's evaluation section reports, at the environment-selected scale.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig01_overview",
    "table1_features",
    "fig03_get_throughput",
    "fig04_power_efficiency",
    "fig05_insdel_throughput",
    "fig06_put_heavy",
    "fig07_population",
    "fig08_resize_timeline",
    "fig09_value_size",
    "fig10_key_size",
    "fig11_index_size",
    "fig12_batch_size",
    "fig13_skew",
    "fig14_features",
    "fig15_latency",
    "fig16_single_thread",
    "fig17_lock_manager",
    "fig18_ycsb",
    "fig19_oltp",
    "fig20_hash_join",
    "fig_cxl_emulation",
    "table5_summary",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("cannot locate the bench binaries");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n================================================================");
        println!("  {exp}");
        println!("================================================================");
        let path = exe_dir.join(exp);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("failed to launch {exp} ({e}); run it via `cargo run --release -p dlht-bench --bin {exp}`");
                failures.push(*exp);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("All {} experiments completed.", EXPERIMENTS.len());
    } else {
        println!("Completed with {} failures: {:?}", failures.len(), failures);
        std::process::exit(1);
    }
}
