//! `bench_report <old> <new> [--fail-threshold PCT]` — render a markdown
//! regression diff between two recorded benchmark runs.
//!
//! Each argument is either one `BENCH_*.json` file or a directory containing
//! several (e.g. the `DLHT_BENCH_DIR` a `run_all` invocation filled, or the
//! checked-in `benchmarks/baseline/`). Data points are matched across the
//! two runs by (scenario, series, axes) and compared on throughput and
//! p50/p99 latency; the report goes to stdout as GitHub-flavored markdown.
//!
//! Exit status is 0 unless `--fail-threshold PCT` is given and some matched
//! point's throughput regressed by more than PCT percent (for CI gating on a
//! stable machine; the default is report-only because baseline and CI
//! hardware rarely agree).

use dlht_bench::Json;
use dlht_workloads::Table;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::exit;

/// One loaded run: every point keyed by (scenario, series, rendered axes).
struct Run {
    label: String,
    tier: Option<String>,
    points: BTreeMap<(String, String, String), Json>,
    /// scenario -> figure (from headers).
    figures: BTreeMap<String, String>,
}

fn load_run(arg: &str) -> Result<Run, String> {
    let path = Path::new(arg);
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut fs: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read directory {arg}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        fs.sort();
        if fs.is_empty() {
            return Err(format!("{arg} contains no BENCH_*.json files"));
        }
        fs
    } else if path.is_file() {
        vec![path.to_path_buf()]
    } else {
        return Err(format!("{arg} is neither a file nor a directory"));
    };

    let mut run = Run {
        label: arg.to_string(),
        tier: None,
        points: BTreeMap::new(),
        figures: BTreeMap::new(),
    };
    for file in files {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record =
                Json::parse(line).map_err(|e| format!("{}:{}: {e}", file.display(), lineno + 1))?;
            let scenario = record
                .get("scenario")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            match record.get("type").and_then(Json::as_str) {
                Some("header") => {
                    if let Some(fig) = record.get("figure").and_then(Json::as_str) {
                        run.figures.insert(scenario.clone(), fig.to_string());
                    }
                    if run.tier.is_none() {
                        run.tier = record
                            .get("tier")
                            .and_then(Json::as_str)
                            .map(str::to_string);
                    }
                }
                Some("point") => {
                    let series = record
                        .get("series")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string();
                    let axes = record.get("axes").map(Json::render).unwrap_or_default();
                    run.points.insert((scenario, series, axes), record);
                }
                _ => {}
            }
        }
    }
    Ok(run)
}

/// Human-readable axes: `{"threads":4}` -> `threads=4`.
fn axes_label(axes_json: &str) -> String {
    match Json::parse(axes_json) {
        Ok(json) => json
            .entries()
            .map(|pairs| {
                pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render().trim_matches('"')))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default(),
        Err(_) => axes_json.to_string(),
    }
}

fn mops(point: &Json) -> Option<f64> {
    point.get("mops").and_then(Json::as_f64)
}

fn lat_ns(point: &Json, which: &str) -> Option<u64> {
    point
        .get("lat")
        .and_then(|l| l.get(which))
        .and_then(Json::as_u64)
}

fn pct_delta(old: f64, new: f64) -> Option<f64> {
    (old.abs() > 1e-12).then(|| (new / old - 1.0) * 100.0)
}

fn fmt_delta(delta: Option<f64>) -> String {
    match delta {
        Some(d) => format!("{d:+.1}%"),
        None => "n/a".to_string(),
    }
}

fn fmt_lat(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{ns}"),
        None => "-".to_string(),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut fail_threshold: Option<f64> = None;
    if let Some(i) = args.iter().position(|a| a == "--fail-threshold") {
        if i + 1 >= args.len() {
            eprintln!("--fail-threshold requires a percentage");
            exit(2);
        }
        fail_threshold = args[i + 1].parse().ok();
        if fail_threshold.is_none() {
            eprintln!("invalid --fail-threshold value: {}", args[i + 1]);
            exit(2);
        }
        args.drain(i..=i + 1);
    }
    if args.len() != 2 {
        eprintln!("usage: bench_report <old file|dir> <new file|dir> [--fail-threshold PCT]");
        exit(2);
    }
    let old = load_run(&args[0]).unwrap_or_else(|e| {
        eprintln!("error loading old run: {e}");
        exit(2);
    });
    let new = load_run(&args[1]).unwrap_or_else(|e| {
        eprintln!("error loading new run: {e}");
        exit(2);
    });

    println!("# dlht-bench regression report");
    println!();
    for (role, run) in [("old", &old), ("new", &new)] {
        println!(
            "- {role}: `{}` — {} points, tier {}",
            run.label,
            run.points.len(),
            run.tier.as_deref().unwrap_or("?")
        );
    }
    println!();

    // Scenarios present in either run, in registry order where known.
    let mut scenarios: Vec<String> = dlht_bench::REGISTRY
        .iter()
        .map(|s| s.name.to_string())
        .filter(|name| {
            old.points.keys().any(|(s, _, _)| s == name)
                || new.points.keys().any(|(s, _, _)| s == name)
        })
        .collect();
    for (s, _, _) in old.points.keys().chain(new.points.keys()) {
        if !scenarios.contains(s) {
            scenarios.push(s.clone());
        }
    }

    let mut worst: Option<(f64, String)> = None;
    let mut best: Option<(f64, String)> = None;
    let mut only_old: Vec<String> = Vec::new();
    let mut only_new: Vec<String> = Vec::new();
    let mut matched = 0usize;
    let mut violations: Vec<String> = Vec::new();

    for scenario in &scenarios {
        let figure = new
            .figures
            .get(scenario)
            .or_else(|| old.figures.get(scenario))
            .cloned()
            .unwrap_or_default();
        println!("## {scenario} ({figure})");
        println!();
        let mut table = Table::new(
            scenario,
            &[
                "series", "axes", "old M/s", "new M/s", "Δ", "old p50", "new p50", "old p99",
                "new p99", "Δ p99",
            ],
        );
        for ((s, series, axes), new_point) in &new.points {
            if s != scenario {
                continue;
            }
            let key = (s.clone(), series.clone(), axes.clone());
            let Some(old_point) = old.points.get(&key) else {
                only_new.push(format!("{scenario} / {series} / {}", axes_label(axes)));
                continue;
            };
            matched += 1;
            let (old_mops, new_mops) = (mops(old_point), mops(new_point));
            let delta = match (old_mops, new_mops) {
                (Some(o), Some(n)) => pct_delta(o, n),
                _ => None,
            };
            if let Some(d) = delta {
                let label = format!("{scenario} / {series} / {}", axes_label(axes));
                if worst.as_ref().is_none_or(|(w, _)| d < *w) {
                    worst = Some((d, label.clone()));
                }
                if best.as_ref().is_none_or(|(b, _)| d > *b) {
                    best = Some((d, label.clone()));
                }
                if let Some(t) = fail_threshold {
                    if d < -t {
                        violations.push(format!("{label}: {d:+.1}%"));
                    }
                }
            }
            let (old_p99, new_p99) = (lat_ns(old_point, "p99_ns"), lat_ns(new_point, "p99_ns"));
            let p99_delta = match (old_p99, new_p99) {
                (Some(o), Some(n)) if o > 0 => pct_delta(o as f64, n as f64),
                _ => None,
            };
            table.row(&[
                series.clone(),
                axes_label(axes),
                old_mops.map(|m| format!("{m:.2}")).unwrap_or("-".into()),
                new_mops.map(|m| format!("{m:.2}")).unwrap_or("-".into()),
                fmt_delta(delta),
                fmt_lat(lat_ns(old_point, "p50_ns")),
                fmt_lat(lat_ns(new_point, "p50_ns")),
                fmt_lat(old_p99),
                fmt_lat(new_p99),
                fmt_delta(p99_delta),
            ]);
        }
        only_old.extend(
            old.points
                .keys()
                .filter(|(s, series, axes)| {
                    s == scenario
                        && !new
                            .points
                            .contains_key(&(s.clone(), series.clone(), axes.clone()))
                })
                .map(|(s, series, axes)| format!("{s} / {series} / {}", axes_label(axes))),
        );
        if table.is_empty() {
            println!("_no matching data points_");
        } else {
            print!("{}", table.to_markdown());
        }
        println!();
    }

    println!("## Summary");
    println!();
    println!(
        "- matched points: {matched} (only in old: {}, only in new: {})",
        only_old.len(),
        only_new.len()
    );
    for (role, unmatched) in [("only in old", &only_old), ("only in new", &only_new)] {
        const LIST_CAP: usize = 12;
        for label in unmatched.iter().take(LIST_CAP) {
            println!("  - {role}: {label}");
        }
        if unmatched.len() > LIST_CAP {
            println!("  - {role}: ... and {} more", unmatched.len() - LIST_CAP);
        }
    }
    if let Some((d, label)) = worst {
        println!("- worst throughput change: {d:+.1}% ({label})");
    }
    if let Some((d, label)) = best {
        println!("- best throughput change: {d:+.1}% ({label})");
    }
    if matched == 0 {
        println!("- no comparable points — are these runs from the same schema/scenarios?");
    }
    if let Some(t) = fail_threshold {
        if violations.is_empty() {
            println!("- threshold check: no point regressed by more than {t}%");
        } else {
            println!(
                "- threshold check FAILED ({} points regressed by more than {t}%):",
                violations.len()
            );
            for v in &violations {
                println!("  - {v}");
            }
            exit(1);
        }
    }
}
