//! Figure 19: multi-key OLTP benchmarks — TATP (read-intensive) and
//! Smallbank (write-intensive) transactions per second over DLHT.

use dlht_bench::print_header;
use dlht_workloads::smallbank::{run_smallbank, SmallbankDatabase};
use dlht_workloads::tatp::{run_tatp, TatpDatabase};
use dlht_workloads::{BenchScale, Table};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 19 (TATP and Smallbank)",
        "1M TATP subscribers, 10M Smallbank accounts; paper: 175M / 129M txns/s at 64 threads",
        &scale,
    );
    let tatp_db = TatpDatabase::populate((scale.keys / 4).max(1_000));
    let smallbank_db = SmallbankDatabase::populate((scale.keys / 2).max(1_000));
    let mut table = Table::new(
        "Fig. 19 — transactions per second (millions)",
        &["threads", "TATP (M txn/s)", "Smallbank (M txn/s)"],
    );
    for &threads in &scale.threads {
        let tatp = run_tatp(&tatp_db, threads, scale.duration());
        let smallbank = run_smallbank(&smallbank_db, threads, scale.duration());
        table.row(&[
            threads.to_string(),
            format!("{:.2}", tatp.mtps),
            format!("{:.2}", smallbank.mtps),
        ]);
    }
    table.print();
    println!(
        "Expected shape: both scale with threads; TATP (80% reads) ahead of Smallbank (15% reads)."
    );
}
