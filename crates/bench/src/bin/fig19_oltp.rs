//! Figure 19: multi-key OLTP benchmarks — TATP (read-intensive) and
//! Smallbank (write-intensive) transactions per second over DLHT.

use dlht_bench::run_scenario;
use dlht_workloads::smallbank::{run_smallbank, SmallbankDatabase};
use dlht_workloads::tatp::{run_tatp, TatpDatabase};
use dlht_workloads::Table;

fn main() {
    run_scenario("fig19_oltp", |ctx| {
        let scale = ctx.scale.clone();
        let tatp_db = TatpDatabase::populate((scale.keys / 4).max(1_000));
        let smallbank_db = SmallbankDatabase::populate((scale.keys / 2).max(1_000));
        let mut table = Table::new(
            "Fig. 19 — transactions per second (millions)",
            &["threads", "TATP (M txn/s)", "Smallbank (M txn/s)"],
        );
        for &threads in &scale.threads {
            // Warm-up pass (discarded) then the measured pass.
            let _ = run_tatp(&tatp_db, threads, scale.warmup());
            let tatp = run_tatp(&tatp_db, threads, scale.duration());
            let _ = run_smallbank(&smallbank_db, threads, scale.warmup());
            let smallbank = run_smallbank(&smallbank_db, threads, scale.duration());
            for (series, mtps) in [("TATP", tatp.mtps), ("Smallbank", smallbank.mtps)] {
                ctx.point(series).axis("threads", threads).mops(mtps).emit();
            }
            table.row(&[
                threads.to_string(),
                format!("{:.2}", tatp.mtps),
                format!("{:.2}", smallbank.mtps),
            ]);
        }
        ctx.table(&table);
    });
}
