//! Figure 18: the four single-key YCSB mixes (A, B, C, F) over DLHT as the
//! thread count grows.
//!
//! With `--server <addr>` (or `DLHT_SERVER`) the same sweep runs **over the
//! wire** against a `dlht_server` process through `dlht-net`'s
//! [`RemoteBackend`] — one TCP connection per worker thread, one `BATCH`
//! frame per request batch. Series names are unchanged so `bench_report`
//! diffs a local run against a wire run point by point.

use dlht_baselines::{KvBackend, MapKind};
use dlht_bench::{build_prepopulated, run_scenario};
use dlht_net::RemoteBackend;
use dlht_workloads::ycsb::{run_ycsb, YcsbMix};
use dlht_workloads::{fmt_mops, prepopulate_batched, Table};

fn main() {
    run_scenario("fig18_ycsb", |ctx| {
        let scale = ctx.scale.clone();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let map: Box<dyn KvBackend> = match dlht_net::server_addr_from_args(args) {
            Some(addr) => {
                let remote = RemoteBackend::connect(&addr)
                    .unwrap_or_else(|e| panic!("cannot reach --server {addr}: {e}"));
                ctx.note(&format!("Running YCSB over the wire against {addr}."));
                // Batched prepopulation: one round trip per 128 inserts
                // (duplicates are harmless if the server was prestocked).
                prepopulate_batched(&remote, scale.keys, 128);
                Box::new(remote)
            }
            None => build_prepopulated(MapKind::Dlht, &scale),
        };
        let mut table = Table::new(
            "Fig. 18 — YCSB throughput (M req/s)",
            &["threads", "YCSB A", "YCSB B", "YCSB C", "YCSB F"],
        );
        for &threads in &scale.threads {
            let mut row = vec![threads.to_string()];
            for mix in YcsbMix::all() {
                // Warm-up pass (discarded) then the measured pass.
                let _ = run_ycsb(map.as_ref(), mix, scale.keys, threads, scale.warmup(), true);
                let r = run_ycsb(
                    map.as_ref(),
                    mix,
                    scale.keys,
                    threads,
                    scale.duration(),
                    true,
                );
                ctx.point(mix.name())
                    .axis("threads", threads)
                    .mops(r.mops)
                    .emit();
                row.push(fmt_mops(r.mops));
            }
            table.row(&row);
        }
        ctx.table(&table);
    });
}
