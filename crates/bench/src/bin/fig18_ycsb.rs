//! Figure 18: the four single-key YCSB mixes (A, B, C, F) over DLHT as the
//! thread count grows.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, print_header};
use dlht_workloads::ycsb::{run_ycsb, YcsbMix};
use dlht_workloads::{fmt_mops, BenchScale, Table};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 18 (YCSB mixes)",
        "YCSB A/B/C/F over DLHT; read-only C roughly 2x the update-only F at saturation",
        &scale,
    );
    let map = build_prepopulated(MapKind::Dlht, &scale);
    let mut table = Table::new(
        "Fig. 18 — YCSB throughput (M req/s)",
        &["threads", "YCSB A", "YCSB B", "YCSB C", "YCSB F"],
    );
    for &threads in &scale.threads {
        let mut row = vec![threads.to_string()];
        for mix in YcsbMix::all() {
            let r = run_ycsb(
                map.as_ref(),
                mix,
                scale.keys,
                threads,
                scale.duration(),
                true,
            );
            row.push(fmt_mops(r.mops));
        }
        table.row(&row);
    }
    table.print();
    println!("Expected shape: all mixes scale with threads; C (read-only) highest, F (update-only) lowest.");
}
