//! Figure 18: the four single-key YCSB mixes (A, B, C, F) over DLHT as the
//! thread count grows.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, run_scenario};
use dlht_workloads::ycsb::{run_ycsb, YcsbMix};
use dlht_workloads::{fmt_mops, Table};

fn main() {
    run_scenario("fig18_ycsb", |ctx| {
        let scale = ctx.scale.clone();
        let map = build_prepopulated(MapKind::Dlht, &scale);
        let mut table = Table::new(
            "Fig. 18 — YCSB throughput (M req/s)",
            &["threads", "YCSB A", "YCSB B", "YCSB C", "YCSB F"],
        );
        for &threads in &scale.threads {
            let mut row = vec![threads.to_string()];
            for mix in YcsbMix::all() {
                // Warm-up pass (discarded) then the measured pass.
                let _ = run_ycsb(map.as_ref(), mix, scale.keys, threads, scale.warmup(), true);
                let r = run_ycsb(
                    map.as_ref(),
                    mix,
                    scale.keys,
                    threads,
                    scale.duration(),
                    true,
                );
                ctx.point(mix.name())
                    .axis("threads", threads)
                    .mops(r.mops)
                    .emit();
                row.push(fmt_mops(r.mops));
            }
            table.row(&row);
        }
        ctx.table(&table);
    });
}
