//! Figure 3: Get throughput vs thread count for the fastest designs.

use dlht_baselines::MapKind;
use dlht_bench::{print_header, sweep, throughput_table};
use dlht_workloads::{BenchScale, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 3 (Get throughput)",
        "100% Gets, uniform over 100M keys, 1..71 threads",
        &scale,
    );
    let keys = scale.keys;
    let duration = scale.duration();
    // The paper's fastest set, plus the sharded DLHT front at the
    // `--shards` / DLHT_SHARDS fan-out (default 4).
    let mut kinds = MapKind::fastest();
    kinds.push(MapKind::DlhtSharded(scale.shards_u8()));
    let points = sweep(&kinds, &scale, |threads| {
        WorkloadSpec::get_default(keys, threads, duration)
    });
    throughput_table("Fig. 3 — Get throughput (M req/s)", &points, &scale).print();
    println!("Expected shape: DLHT > DRAMHiT-like > (CLHT, GrowT-like, Folly-like, DLHT-NoBatch) > MICA-like; sharded DLHT tracks DLHT and pulls ahead as threads contend on resizes.");
}
