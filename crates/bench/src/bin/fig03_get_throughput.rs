//! Figure 3: Get throughput vs thread count for the fastest designs.

use dlht_baselines::MapKind;
use dlht_bench::{run_scenario, throughput_table};
use dlht_workloads::WorkloadSpec;

fn main() {
    run_scenario("fig03_get_throughput", |ctx| {
        let scale = ctx.scale.clone();
        // The paper's fastest set, plus the sharded DLHT front at the
        // `--shards` / DLHT_SHARDS fan-out (default 4).
        let mut kinds = MapKind::fastest();
        kinds.push(MapKind::DlhtSharded(scale.shards_u8()));
        let points = ctx.sweep(&kinds, |threads| {
            WorkloadSpec::get_default(scale.keys, threads, scale.duration())
        });
        ctx.emit_sweep(&points);
        ctx.table(&throughput_table(
            "Fig. 3 — Get throughput (M req/s)",
            &points,
            &scale,
        ));
    });
}
