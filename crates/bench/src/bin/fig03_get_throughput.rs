//! Figure 3: Get throughput vs thread count for the fastest designs.

use dlht_baselines::MapKind;
use dlht_bench::{print_header, sweep, throughput_table};
use dlht_workloads::{BenchScale, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 3 (Get throughput)",
        "100% Gets, uniform over 100M keys, 1..71 threads",
        &scale,
    );
    let keys = scale.keys;
    let duration = scale.duration();
    let points = sweep(&MapKind::fastest(), &scale, |threads| {
        WorkloadSpec::get_default(keys, threads, duration)
    });
    throughput_table("Fig. 3 — Get throughput (M req/s)", &points, &scale).print();
    println!("Expected shape: DLHT > DRAMHiT-like > (CLHT, GrowT-like, Folly-like, DLHT-NoBatch) > MICA-like.");
}
