//! Figure 8: Gets and Inserts over time while DLHT's non-blocking resize
//! transfers the whole index; Get throughput dips but never stops.

use dlht_bench::run_scenario;
use dlht_workloads::population::{resize_timeline, resize_timeline_sharded};
use dlht_workloads::Table;
use std::time::Duration;

fn main() {
    run_scenario("fig08_resize_timeline", |ctx| {
        let scale = ctx.scale.clone();
        let get_threads = scale.threads.iter().max().copied().unwrap_or(1);
        let insert_threads = get_threads;
        let samples = resize_timeline(
            scale.keys,
            scale.keys * 4,
            get_threads,
            insert_threads,
            Duration::from_millis(50),
            (scale.keys / 16).max(64) as usize,
        );
        let mut table = Table::new(
            "Fig. 8 — throughput timeline during growth",
            &["t (ms)", "Gets (M/s)", "Inserts (M/s)", "index generation"],
        );
        for (window, s) in samples.iter().enumerate() {
            // The axis is the sample *index* (stable across runs, so
            // bench_report can match points); the wall-clock timestamp is
            // jittery and travels as an extra field.
            for (series, mops) in [("Gets", s.get_mops), ("Inserts", s.insert_mops)] {
                ctx.point(series)
                    .axis("window", window)
                    .mops(mops)
                    .extra("t_ms", s.at_ms)
                    .extra("generation", s.generation)
                    .emit();
            }
            table.row(&[
                s.at_ms.to_string(),
                format!("{:.2}", s.get_mops),
                format!("{:.2}", s.insert_mops),
                s.generation.to_string(),
            ]);
        }
        ctx.table(&table);
        let grew = samples.last().map(|s| s.generation).unwrap_or(0);
        let gets_always_progress = samples.iter().all(|s| s.get_mops > 0.0 || s.at_ms < 100);
        ctx.note(&format!("Index generations completed: {grew}"));
        ctx.note(&format!(
            "Gets progressed in every window: {gets_always_progress}"
        ));
        ctx.note("");

        // Same experiment over the sharded front: each shard grows on its
        // own, so the dips shrink to the fraction of keys routed to the
        // shard currently transferring.
        let sharded = resize_timeline_sharded(
            scale.keys,
            scale.keys * 4,
            get_threads,
            insert_threads,
            Duration::from_millis(50),
            (scale.keys / 16).max(64) as usize,
            scale.shards,
        );
        let mut stable = Table::new(
            &format!(
                "Fig. 8b — same timeline over {} independent shards (--shards)",
                sharded.shard_resizes.len()
            ),
            &[
                "t (ms)",
                "Gets (M/s)",
                "Inserts (M/s)",
                "max shard generation",
            ],
        );
        for (window, s) in sharded.samples.iter().enumerate() {
            for (series, mops) in [
                ("Gets-Sharded", s.get_mops),
                ("Inserts-Sharded", s.insert_mops),
            ] {
                ctx.point(series)
                    .axis("window", window)
                    .mops(mops)
                    .extra("t_ms", s.at_ms)
                    .extra("generation", s.generation)
                    .emit();
            }
            stable.row(&[
                s.at_ms.to_string(),
                format!("{:.2}", s.get_mops),
                format!("{:.2}", s.insert_mops),
                s.generation.to_string(),
            ]);
        }
        ctx.table(&stable);
        ctx.note(&format!(
            "Resizes per shard (independent): {:?}",
            sharded.shard_resizes
        ));
    });
}
