//! Figure 8: Gets and Inserts over time while DLHT's non-blocking resize
//! transfers the whole index; Get throughput dips but never stops.

use dlht_bench::print_header;
use dlht_workloads::population::{resize_timeline, resize_timeline_sharded};
use dlht_workloads::{BenchScale, Table};
use std::time::Duration;

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 8 (Gets and Inserts during a non-blocking resize)",
        "32 Get threads + 32 Insert threads, 800M -> 1.6B keys; Gets keep completing",
        &scale,
    );
    let get_threads = scale.threads.iter().max().copied().unwrap_or(1);
    let insert_threads = get_threads;
    let samples = resize_timeline(
        scale.keys,
        scale.keys * 4,
        get_threads,
        insert_threads,
        Duration::from_millis(50),
        (scale.keys / 16).max(64) as usize,
    );
    let mut table = Table::new(
        "Fig. 8 — throughput timeline during growth",
        &["t (ms)", "Gets (M/s)", "Inserts (M/s)", "index generation"],
    );
    for s in &samples {
        table.row(&[
            s.at_ms.to_string(),
            format!("{:.2}", s.get_mops),
            format!("{:.2}", s.insert_mops),
            s.generation.to_string(),
        ]);
    }
    table.print();
    let grew = samples.last().map(|s| s.generation).unwrap_or(0);
    let gets_always_progress = samples.iter().all(|s| s.get_mops > 0.0 || s.at_ms < 100);
    println!("Index generations completed: {grew}");
    println!("Gets progressed in every window: {gets_always_progress}");
    println!("Expected shape: Get throughput dips while bins are transferred, then recovers; it never drops to zero.");
    println!();

    // Same experiment over the sharded front: each shard grows on its own,
    // so the dips shrink to the fraction of keys routed to the shard
    // currently transferring.
    let sharded = resize_timeline_sharded(
        scale.keys,
        scale.keys * 4,
        get_threads,
        insert_threads,
        Duration::from_millis(50),
        (scale.keys / 16).max(64) as usize,
        scale.shards,
    );
    let mut stable = Table::new(
        &format!(
            "Fig. 8b — same timeline over {} independent shards (--shards)",
            sharded.shard_resizes.len()
        ),
        &[
            "t (ms)",
            "Gets (M/s)",
            "Inserts (M/s)",
            "max shard generation",
        ],
    );
    for s in &sharded.samples {
        stable.row(&[
            s.at_ms.to_string(),
            format!("{:.2}", s.get_mops),
            format!("{:.2}", s.insert_mops),
            s.generation.to_string(),
        ]);
    }
    stable.print();
    println!(
        "Resizes per shard (independent): {:?}",
        sharded.shard_resizes
    );
    println!("Expected shape: the same growth spread over shard-local resizes — Gets on the other shards never see a transfer.");
}
