//! §5.3.2: remote-memory (CXL) emulation — the Get workload with an injected
//! per-access latency standing in for the paper's remote-socket pinning.
//! Batching (prefetching) hides most of the extra latency; the unbatched
//! variant pays it on every request.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, run_scenario};
use dlht_workloads::{fmt_mops, Table, WorkloadSpec};

fn main() {
    run_scenario("fig_cxl_emulation", |ctx| {
        let scale = ctx.scale.clone();
        let threads = *scale.threads.iter().max().unwrap_or(&1);
        let map = build_prepopulated(MapKind::Dlht, &scale);
        let mut table = Table::new(
            "CXL emulation — Get throughput (M req/s)",
            &[
                "extra latency (ns)",
                "DLHT (batched)",
                "DLHT-NoBatch",
                "batched / unbatched",
            ],
        );
        for &latency_ns in &[0u64, 150, 300, 600] {
            let mut batched_spec = WorkloadSpec::get_default(scale.keys, threads, scale.duration());
            batched_spec.remote_latency_ns = latency_ns;
            let mut unbatched_spec = batched_spec.clone().without_batching();
            unbatched_spec.remote_latency_ns = latency_ns;
            let batched = ctx.measure(map.as_ref(), &batched_spec);
            let unbatched = ctx.measure(map.as_ref(), &unbatched_spec);
            let ratio = batched.mops / unbatched.mops.max(1e-9);
            for (series, r) in [("batched", &batched), ("unbatched", &unbatched)] {
                ctx.point(series)
                    .axis("latency_ns", latency_ns)
                    .axis("threads", threads)
                    .result(r)
                    .extra("batched_over_unbatched", ratio)
                    .emit();
            }
            table.row(&[
                latency_ns.to_string(),
                fmt_mops(batched.mops),
                fmt_mops(unbatched.mops),
                format!("{ratio:.1}x"),
            ]);
        }
        ctx.table(&table);
    });
}
