//! §5.3.2: remote-memory (CXL) emulation — the Get workload with an injected
//! per-access latency standing in for the paper's remote-socket pinning.
//! Batching (prefetching) hides most of the extra latency; the unbatched
//! variant pays it on every request.

use dlht_baselines::MapKind;
use dlht_bench::{build_prepopulated, print_header};
use dlht_workloads::{fmt_mops, run_workload, BenchScale, Table, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Section 5.3.2 (CXL / remote-memory emulation)",
        "paper pins DLHT memory on the remote socket; here a per-miss delay is injected (DESIGN.md substitution)",
        &scale,
    );
    let threads = *scale.threads.iter().max().unwrap_or(&1);
    let map = build_prepopulated(MapKind::Dlht, &scale);
    let mut table = Table::new(
        "CXL emulation — Get throughput (M req/s)",
        &[
            "extra latency (ns)",
            "DLHT (batched)",
            "DLHT-NoBatch",
            "batched / unbatched",
        ],
    );
    for &latency_ns in &[0u64, 150, 300, 600] {
        let mut batched_spec = WorkloadSpec::get_default(scale.keys, threads, scale.duration());
        batched_spec.remote_latency_ns = latency_ns;
        let mut unbatched_spec = batched_spec.clone().without_batching();
        unbatched_spec.remote_latency_ns = latency_ns;
        let batched = run_workload(map.as_ref(), &batched_spec);
        let unbatched = run_workload(map.as_ref(), &unbatched_spec);
        table.row(&[
            latency_ns.to_string(),
            fmt_mops(batched.mops),
            fmt_mops(unbatched.mops),
            format!("{:.1}x", batched.mops / unbatched.mops.max(1e-9)),
        ]);
    }
    table.print();
    println!("Expected shape: the batched/unbatched gap widens as the emulated memory latency grows (paper: 2.9x at remote-socket latency).");
}
