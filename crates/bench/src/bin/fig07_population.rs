//! Figure 7: average population throughput when inserting N keys into an
//! initially small index that must grow on demand (resizable designs only).

use dlht_baselines::MapKind;
use dlht_bench::print_header;
use dlht_workloads::population::populate_growing;
use dlht_workloads::{fmt_mops, BenchScale, Table};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 7 (population of a growing index)",
        "800M keys inserted into a small growing index; DLHT 3.9x GrowT, 8x CLHT",
        &scale,
    );
    // Population size: 4x the sweep keys so several growth steps happen.
    let keys = scale.keys * 4;
    let mut table = Table::new(
        "Fig. 7 — Population throughput (M inserts/s), growing index",
        &["map", "threads", "keys", "M inserts/s"],
    );
    for kind in MapKind::resizable() {
        for &threads in &scale.threads {
            // Start deliberately tiny so every design must resize repeatedly.
            let map = kind.build(1_024);
            let r = populate_growing(map.as_ref(), keys, threads);
            assert_eq!(
                map.len(),
                keys as usize,
                "{}: population lost keys",
                kind.name()
            );
            table.row(&[
                kind.name().to_string(),
                threads.to_string(),
                keys.to_string(),
                fmt_mops(r.mops),
            ]);
        }
    }
    table.print();
    println!("Expected shape: DLHT fastest (parallel non-blocking resize), GrowT-like next, CLHT flat beyond a few threads.");
}
