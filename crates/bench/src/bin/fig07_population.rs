//! Figure 7: average population throughput when inserting N keys into an
//! initially small index that must grow on demand (resizable designs only).

use dlht_baselines::MapKind;
use dlht_bench::run_scenario;
use dlht_workloads::population::populate_growing;
use dlht_workloads::{fmt_mops, Table};

fn main() {
    run_scenario("fig07_population", |ctx| {
        let scale = ctx.scale.clone();
        // Population size: 4x the sweep keys so several growth steps happen.
        let keys = scale.keys * 4;
        let mut table = Table::new(
            "Fig. 7 — Population throughput (M inserts/s), growing index",
            &["map", "threads", "keys", "M inserts/s"],
        );
        for kind in MapKind::resizable() {
            for &threads in &scale.threads {
                // Start deliberately tiny so every design must resize repeatedly.
                let map = kind.build(1_024);
                let r = populate_growing(map.as_ref(), keys, threads);
                assert_eq!(
                    map.len(),
                    keys as usize,
                    "{}: population lost keys",
                    kind.name()
                );
                ctx.point(kind.name())
                    .axis("threads", threads)
                    .axis("keys", keys)
                    .mops(r.mops)
                    .ops(keys)
                    .stats(&map.stats())
                    .retired(map.retired_indexes())
                    .emit();
                table.row(&[
                    kind.name().to_string(),
                    threads.to_string(),
                    keys.to_string(),
                    fmt_mops(r.mops),
                ]);
            }
        }
        ctx.table(&table);
    });
}
