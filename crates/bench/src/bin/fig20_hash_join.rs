//! Figure 20: non-partitioned hash join (workload A: |S| = 16 × |R|) over
//! DLHT with and without batching.

use dlht_bench::run_scenario;
use dlht_workloads::hashjoin::run_hash_join;
use dlht_workloads::{fmt_mops, Table};

fn main() {
    run_scenario("fig20_hash_join", |ctx| {
        let scale = ctx.scale.clone();
        let r_tuples = scale.keys;
        let s_tuples = scale.keys * 16;
        let mut table = Table::new(
            "Fig. 20 — join throughput ((|R|+|S|)/runtime, M tuples/s)",
            &["threads", "DLHT (batched)", "DLHT-NoBatch"],
        );
        for &threads in &scale.threads {
            // Warm-up join at 1/8 scale (discarded) before each measured one.
            let _ = run_hash_join(
                (r_tuples / 8).max(1),
                (s_tuples / 8).max(1),
                threads,
                32,
                true,
            );
            let batched = run_hash_join(r_tuples, s_tuples, threads, 32, true);
            let _ = run_hash_join(
                (r_tuples / 8).max(1),
                (s_tuples / 8).max(1),
                threads,
                32,
                false,
            );
            let unbatched = run_hash_join(r_tuples, s_tuples, threads, 32, false);
            assert_eq!(batched.matches, batched.probe_tuples);
            for (series, r) in [("batched", &batched), ("unbatched", &unbatched)] {
                ctx.point(series)
                    .axis("threads", threads)
                    .mops(r.mtuples_per_sec)
                    .ops(r.build_tuples + r.probe_tuples)
                    .extra("matches", r.matches)
                    .emit();
            }
            table.row(&[
                threads.to_string(),
                fmt_mops(batched.mtuples_per_sec),
                fmt_mops(unbatched.mtuples_per_sec),
            ]);
        }
        ctx.table(&table);
    });
}
