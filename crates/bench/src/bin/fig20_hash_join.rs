//! Figure 20: non-partitioned hash join (workload A: |S| = 16 × |R|) over
//! DLHT with and without batching.

use dlht_bench::print_header;
use dlht_workloads::hashjoin::run_hash_join;
use dlht_workloads::{fmt_mops, BenchScale, Table};

fn main() {
    let scale = BenchScale::from_env();
    print_header(
        "Figure 20 (non-partitioned hash join, workload A)",
        "build 2^27 tuples, probe 2^31; DLHT reaches 1.4B tuples/s, 2.2x DLHT-NoBatch",
        &scale,
    );
    let r_tuples = scale.keys;
    let s_tuples = scale.keys * 16;
    let mut table = Table::new(
        "Fig. 20 — join throughput ((|R|+|S|)/runtime, M tuples/s)",
        &["threads", "DLHT (batched)", "DLHT-NoBatch"],
    );
    for &threads in &scale.threads {
        let batched = run_hash_join(r_tuples, s_tuples, threads, 32, true);
        let unbatched = run_hash_join(r_tuples, s_tuples, threads, 32, false);
        assert_eq!(batched.matches, batched.probe_tuples);
        table.row(&[
            threads.to_string(),
            fmt_mops(batched.mtuples_per_sec),
            fmt_mops(unbatched.mtuples_per_sec),
        ]);
    }
    table.print();
    println!("Expected shape: batching (prefetching the probe side) clearly ahead of the unbatched join.");
}
