//! The unified benchmark harness behind every table and figure of the DLHT
//! paper's evaluation (§5).
//!
//! Each figure/table has its own binary (`cargo run --release -p dlht-bench
//! --bin fig03_get_throughput`), but they all run on one shared [`scenario`]
//! harness: a static [`scenario::REGISTRY`] describing what each binary
//! reproduces, a common driver with explicit warmup/measure phases, and one
//! schema-versioned JSON line per data point written to `BENCH_<name>.json`
//! (stdout carries the same JSON; human-readable tables go to stderr).
//! `run_all` executes the whole suite (`--smoke` for the CI tier, `--full`
//! for the environment-scaled defaults) and `bench_report` renders a markdown
//! regression diff between two recorded runs.
//!
//! Scaling: all binaries read `DLHT_KEYS`, `DLHT_THREADS` (comma-separated
//! sweep), `DLHT_SECS` and `DLHT_SEED` from the environment so the same code
//! runs on a laptop/CI box (defaults) or can be scaled toward the paper's
//! 100 M-key, 71-thread configuration on a large server. See
//! `docs/BENCHMARKS.md` for the binary → paper-figure map and the JSON
//! schema.
//!
//! # Example: inspect the registry and build a scenario context
//!
//! ```
//! use dlht_bench::{find, REGISTRY};
//!
//! assert_eq!(REGISTRY.len(), 24);
//! let fig3 = find("fig03_get_throughput").unwrap();
//! assert_eq!(fig3.figure, "Figure 3");
//! ```

#![forbid(unsafe_code)]

pub use dlht_obs::json;

pub mod scenario;

pub use json::Json;
pub use scenario::{find, run_scenario, Scenario, ScenarioCtx, SweepPoint, REGISTRY, SCHEMA};

use dlht_baselines::{KvBackend, MapKind};
use dlht_workloads::{prepopulate, BenchScale, Table};

/// Render sweep points as a "threads × map" throughput table (M req/s), the
/// shape of the paper's line plots.
pub fn throughput_table(title: &str, points: &[SweepPoint], scale: &BenchScale) -> Table {
    let kinds: Vec<MapKind> = {
        let mut ks: Vec<MapKind> = Vec::new();
        for p in points {
            if !ks.contains(&p.kind) {
                ks.push(p.kind);
            }
        }
        ks
    };
    let mut headers: Vec<&str> = vec!["threads"];
    let names: Vec<String> = kinds.iter().map(|k| k.name().to_string()).collect();
    for n in &names {
        headers.push(n.as_str());
    }
    let mut table = Table::new(title, &headers);
    for &threads in &scale.threads {
        let mut row = vec![threads.to_string()];
        for &kind in &kinds {
            let cell = points
                .iter()
                .find(|p| p.kind == kind && p.threads == threads)
                .map(|p| dlht_workloads::fmt_mops(p.result.mops))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        table.row(&row);
    }
    table
}

/// Build and prepopulate one map kind at the sweep scale.
pub fn build_prepopulated(kind: MapKind, scale: &BenchScale) -> Box<dyn KvBackend> {
    let map = kind.build(scale.keys as usize * 2);
    prepopulate(map.as_ref(), scale.keys);
    map
}

/// Run `warmup_iters` untimed passes of `op(i)` followed by `iters` timed
/// ones, returning M ops/s — the warmup/measure shape for the hand-rolled
/// single-thread loops (Figs. 9/10/14/16) that don't go through the
/// multi-threaded workload runner.
pub fn timed_mops<F: FnMut(u64)>(iters: u64, warmup_iters: u64, mut op: F) -> f64 {
    for i in 0..warmup_iters {
        op(i);
    }
    let t = std::time::Instant::now();
    for i in warmup_iters..warmup_iters + iters {
        op(i);
    }
    iters as f64 / t.elapsed().as_secs_f64() / 1e6
}

/// Minimal self-contained micro-benchmark harness used by the `benches/`
/// targets (`harness = false`; the environment builds without external
/// benchmarking frameworks): runs `op` in a warm-up pass and three timed
/// passes, printing the best ns/op and derived M ops/s.
pub fn microbench<F: FnMut()>(name: &str, iters: u64, op: F) {
    let best = microbench_ns(name, iters, op);
    let _ = best;
}

/// [`microbench`] returning the best ns/op (so callers can also emit the
/// measurement machine-readably, e.g. as JSON for the perf trajectory).
pub fn microbench_ns<F: FnMut()>(name: &str, iters: u64, mut op: F) -> f64 {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        op();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        for _ in 0..iters {
            op();
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    println!(
        "{name:<40} {best:>10.1} ns/op   {:>8.2} M ops/s",
        1e3 / best
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_workloads::{Tier, WorkloadSpec};

    #[test]
    fn sweep_and_table_shapes_match() {
        let scale = BenchScale {
            keys: 2_000,
            threads: vec![1, 2],
            secs: 0.03,
            shards: 2,
            seed: 1,
            tier: Tier::Smoke,
        };
        let meta = find("fig03_get_throughput").unwrap();
        let ctx = ScenarioCtx::for_test(meta, scale.clone());
        let kinds = [MapKind::Dlht, MapKind::Clht];
        let points = ctx.sweep(&kinds, |threads| {
            WorkloadSpec::get_default(2_000, threads, std::time::Duration::from_millis(30))
        });
        assert_eq!(points.len(), 4);
        let table = throughput_table("test", &points, &scale);
        assert_eq!(table.len(), 2, "one row per thread count");
        let rendered = table.render();
        assert!(rendered.contains("DLHT"));
        assert!(rendered.contains("CLHT"));
    }

    #[test]
    fn timed_mops_reports_positive_throughput() {
        let mut acc = 0u64;
        let mops = timed_mops(10_000, 1_000, |i| acc = acc.wrapping_add(i));
        std::hint::black_box(acc);
        assert!(mops > 0.0);
    }
}
