//! Shared helpers for the benchmark binaries that regenerate every table and
//! figure of the DLHT paper's evaluation (§5). Each figure/table has its own
//! binary (`cargo run --release -p dlht-bench --bin fig03_get_throughput`);
//! `run_all` executes the whole suite.
//!
//! Scaling: all binaries read `DLHT_KEYS`, `DLHT_THREADS` (comma-separated
//! sweep) and `DLHT_SECS` from the environment so the same code runs on a
//! laptop/CI box (defaults) or can be scaled toward the paper's 100 M-key,
//! 71-thread configuration on a large server.

use dlht_baselines::{KvBackend, MapKind};
use dlht_workloads::{prepopulate, run_workload, BenchScale, RunResult, Table, WorkloadSpec};

/// A figure/table sweep point: one map kind at one thread count.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Hashtable under test.
    pub kind: MapKind,
    /// Threads used.
    pub threads: usize,
    /// Measured result.
    pub result: RunResult,
}

/// Run `spec_for(threads)` against every map kind in `kinds`, prepopulating
/// each map with `scale.keys` keys, and return all sweep points.
pub fn sweep<F>(kinds: &[MapKind], scale: &BenchScale, mut spec_for: F) -> Vec<SweepPoint>
where
    F: FnMut(usize) -> WorkloadSpec,
{
    let mut points = Vec::new();
    for &kind in kinds {
        for &threads in &scale.threads {
            let map = kind.build(scale.keys as usize * 2);
            prepopulate(map.as_ref(), scale.keys);
            let spec = spec_for(threads);
            let result = run_workload(map.as_ref(), &spec);
            points.push(SweepPoint {
                kind,
                threads,
                result,
            });
        }
    }
    points
}

/// Render sweep points as a "threads × map" throughput table (M req/s), the
/// shape of the paper's line plots.
pub fn throughput_table(title: &str, points: &[SweepPoint], scale: &BenchScale) -> Table {
    let kinds: Vec<MapKind> = {
        let mut ks: Vec<MapKind> = Vec::new();
        for p in points {
            if !ks.contains(&p.kind) {
                ks.push(p.kind);
            }
        }
        ks
    };
    let mut headers: Vec<&str> = vec!["threads"];
    let names: Vec<String> = kinds.iter().map(|k| k.name().to_string()).collect();
    for n in &names {
        headers.push(n.as_str());
    }
    let mut table = Table::new(title, &headers);
    for &threads in &scale.threads {
        let mut row = vec![threads.to_string()];
        for &kind in &kinds {
            let cell = points
                .iter()
                .find(|p| p.kind == kind && p.threads == threads)
                .map(|p| dlht_workloads::fmt_mops(p.result.mops))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        table.row(&row);
    }
    table
}

/// Standard preamble printed by every binary: what is being reproduced and at
/// what scale.
pub fn print_header(figure: &str, paper_setup: &str, scale: &BenchScale) {
    println!("== Reproducing {figure} ==");
    println!("Paper setup    : {paper_setup}");
    println!(
        "This run       : {} keys, threads {:?}, {:.2}s per point (scale with DLHT_KEYS/DLHT_THREADS/DLHT_SECS)",
        scale.keys,
        scale.threads,
        scale.duration().as_secs_f64()
    );
    println!();
}

/// Build and prepopulate one map kind at the sweep scale.
pub fn build_prepopulated(kind: MapKind, scale: &BenchScale) -> Box<dyn KvBackend> {
    let map = kind.build(scale.keys as usize * 2);
    prepopulate(map.as_ref(), scale.keys);
    map
}

/// Minimal self-contained micro-benchmark harness used by the `benches/`
/// targets (`harness = false`; the environment builds without external
/// benchmarking frameworks): runs `op` in a warm-up pass and three timed
/// passes, printing the best ns/op and derived M ops/s.
pub fn microbench<F: FnMut()>(name: &str, iters: u64, op: F) {
    let best = microbench_ns(name, iters, op);
    let _ = best;
}

/// [`microbench`] returning the best ns/op (so callers can also emit the
/// measurement machine-readably, e.g. as JSON for the perf trajectory).
pub fn microbench_ns<F: FnMut()>(name: &str, iters: u64, mut op: F) -> f64 {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        op();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        for _ in 0..iters {
            op();
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    println!(
        "{name:<40} {best:>10.1} ns/op   {:>8.2} M ops/s",
        1e3 / best
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sweep_and_table_shapes_match() {
        let scale = BenchScale {
            keys: 2_000,
            threads: vec![1, 2],
            secs: 0.03,
            shards: 2,
        };
        let kinds = [MapKind::Dlht, MapKind::Clht];
        let points = sweep(&kinds, &scale, |threads| {
            WorkloadSpec::get_default(2_000, threads, Duration::from_millis(30))
        });
        assert_eq!(points.len(), 4);
        let table = throughput_table("test", &points, &scale);
        assert_eq!(table.len(), 2, "one row per thread count");
        let rendered = table.render();
        assert!(rendered.contains("DLHT"));
        assert!(rendered.contains("CLHT"));
    }
}
