//! Criterion micro-benchmarks: single-operation cost of Get / Insert /
//! Delete / Put on DLHT (laptop-scale regression tracking for Fig. 3/5/6).

use criterion::{criterion_group, criterion_main, Criterion};
use dlht_core::DlhtMap;
use std::hint::black_box;

fn bench_micro_ops(c: &mut Criterion) {
    let keys: u64 = 100_000;
    let map = DlhtMap::with_capacity(keys as usize * 2);
    for k in 0..keys {
        map.insert(k, k).unwrap();
    }

    let mut group = c.benchmark_group("micro_ops");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));

    let mut i = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 7919) % keys;
            black_box(map.get(black_box(i)))
        })
    });

    group.bench_function("get_miss", |b| {
        b.iter(|| {
            i = (i + 7919) % keys;
            black_box(map.get(black_box(i + 10_000_000)))
        })
    });

    group.bench_function("put", |b| {
        b.iter(|| {
            i = (i + 7919) % keys;
            black_box(map.put(black_box(i), black_box(i * 2)))
        })
    });

    let mut fresh = keys + 1;
    group.bench_function("insert_then_delete", |b| {
        b.iter(|| {
            fresh += 1;
            map.insert(black_box(fresh), fresh).unwrap();
            black_box(map.delete(black_box(fresh)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_micro_ops);
criterion_main!(benches);
