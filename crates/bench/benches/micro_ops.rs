//! Micro-benchmark: single-operation cost of Get / Insert / Delete / Put on
//! DLHT (laptop-scale regression tracking for Fig. 3/5/6).
//!
//! Run with: `cargo bench -p dlht-bench --bench micro_ops`

use dlht_bench::microbench;
use dlht_core::DlhtMap;
use std::hint::black_box;

fn main() {
    let keys: u64 = 100_000;
    let map = DlhtMap::with_capacity(keys as usize * 2);
    for k in 0..keys {
        let _ = map.insert(k, k).unwrap();
    }

    let mut i = 0u64;
    microbench("get_hit", 2_000_000, || {
        i = (i + 7919) % keys;
        black_box(map.get(black_box(i)));
    });

    let mut i = 0u64;
    microbench("get_miss", 2_000_000, || {
        i = (i + 7919) % keys;
        black_box(map.get(black_box(i + 10_000_000)));
    });

    let mut i = 0u64;
    microbench("put", 2_000_000, || {
        i = (i + 7919) % keys;
        black_box(map.put(black_box(i), black_box(i * 2)));
    });

    let mut fresh = keys + 1;
    microbench("insert_then_delete", 1_000_000, || {
        fresh += 1;
        let _ = map.insert(black_box(fresh), fresh).unwrap();
        black_box(map.delete(black_box(fresh)));
    });
}
