//! Criterion benchmark: batched (prefetching) vs one-at-a-time Gets — a
//! laptop-scale proxy for Fig. 12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlht_core::{DlhtMap, Request};
use dlht_workloads::Xoshiro256;
use std::hint::black_box;

fn bench_batch_vs_single(c: &mut Criterion) {
    let keys: u64 = 200_000;
    let map = DlhtMap::with_capacity(keys as usize * 2);
    for k in 0..keys {
        map.insert(k, k).unwrap();
    }

    let mut group = c.benchmark_group("batch_vs_single");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));

    for &batch in &[1usize, 8, 24, 64] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("batched_get", batch), &batch, |b, &batch| {
            let mut rng = Xoshiro256::new(1);
            let mut reqs = Vec::with_capacity(batch);
            b.iter(|| {
                reqs.clear();
                for _ in 0..batch {
                    reqs.push(Request::Get(rng.next_below(keys)));
                }
                black_box(map.execute_batch(&reqs, false))
            })
        });
        group.bench_with_input(BenchmarkId::new("single_get", batch), &batch, |b, &batch| {
            let mut rng = Xoshiro256::new(1);
            b.iter(|| {
                for _ in 0..batch {
                    black_box(map.get(rng.next_below(keys)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_single);
criterion_main!(benches);
