//! Micro-benchmark: batched (prefetching) vs pipelined vs one-at-a-time Gets
//! — a laptop-scale proxy for Fig. 12, driven through the unified submission
//! API: a reusable [`Batch`] per window, a bounded [`Pipeline`] sweep over
//! depth 1..=64, and the single-request path as the baseline.
//!
//! Besides the human-readable table, every measurement is emitted as one JSON
//! line (`{"bench":"batch_vs_single",...}`) so the perf trajectory can be
//! tracked across commits:
//!
//! Run with: `cargo bench -p dlht-bench --bench batch_vs_single`

use dlht_bench::microbench_ns;
use dlht_core::{Batch, BatchPolicy, DlhtMap, Request};
use dlht_workloads::Xoshiro256;
use std::hint::black_box;

fn emit_json(mode: &str, width: usize, ns_per_op: f64) {
    println!(
        "{{\"bench\":\"batch_vs_single\",\"mode\":\"{mode}\",\"width\":{width},\"ns_per_op\":{ns_per_op:.2},\"mops\":{:.2}}}",
        1e3 / ns_per_op
    );
}

fn main() {
    let keys: u64 = 200_000;
    let map = DlhtMap::with_capacity(keys as usize * 2);
    for k in 0..keys {
        let _ = map.insert(k, k).unwrap();
    }
    const WIDTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

    // Batched execution through one reused Batch (zero steady-state allocs).
    for &width in &WIDTHS {
        let mut rng = Xoshiro256::new(1);
        let mut batch = Batch::with_capacity(width);
        let ns = microbench_ns(
            &format!("batched_get/{width} (per batch)"),
            2_000_000 / width as u64,
            || {
                batch.clear();
                for _ in 0..width {
                    batch.push_get(rng.next_below(keys));
                }
                map.execute(&mut batch, BatchPolicy::RunAll);
                black_box(batch.responses());
            },
        );
        emit_json("batch", width, ns / width as f64);
    }

    // Pipelined submission: prefetch at submit, execution deferred a full
    // window, order-preserving completion. One pipeline per depth, reused
    // across all timed passes (its scratch structures stay warm).
    for &depth in &WIDTHS {
        let mut rng = Xoshiro256::new(1);
        let session = map.session();
        let mut pipe = session.pipeline(depth);
        let ns = microbench_ns(
            &format!("pipelined_get/{depth} (per {depth} submits)"),
            2_000_000 / depth as u64,
            || {
                for _ in 0..depth {
                    black_box(pipe.submit(Request::Get(rng.next_below(keys))));
                }
            },
        );
        emit_json("pipeline", depth, ns / depth as f64);
    }

    // Single-request baseline at matching widths.
    for &width in &WIDTHS {
        let mut rng = Xoshiro256::new(1);
        let ns = microbench_ns(
            &format!("single_get/{width} (per {width} gets)"),
            2_000_000 / width as u64,
            || {
                for _ in 0..width {
                    black_box(map.get(rng.next_below(keys)));
                }
            },
        );
        emit_json("single", width, ns / width as f64);
    }
}
