//! Micro-benchmark: batched (prefetching) vs one-at-a-time Gets — a
//! laptop-scale proxy for Fig. 12, driven through the unified batch API.
//!
//! Run with: `cargo bench -p dlht-bench --bench batch_vs_single`

use dlht_bench::microbench;
use dlht_core::{DlhtMap, Request};
use dlht_workloads::Xoshiro256;
use std::hint::black_box;

fn main() {
    let keys: u64 = 200_000;
    let map = DlhtMap::with_capacity(keys as usize * 2);
    for k in 0..keys {
        map.insert(k, k).unwrap();
    }

    for &batch in &[1usize, 8, 24, 64] {
        let mut rng = Xoshiro256::new(1);
        let mut reqs = Vec::with_capacity(batch);
        microbench(
            &format!("batched_get/{batch} (per batch)"),
            2_000_000 / batch as u64,
            || {
                reqs.clear();
                for _ in 0..batch {
                    reqs.push(Request::Get(rng.next_below(keys)));
                }
                black_box(map.execute_batch(&reqs, false));
            },
        );
        let mut rng = Xoshiro256::new(1);
        microbench(
            &format!("single_get/{batch} (per batch)"),
            2_000_000 / batch as u64,
            || {
                for _ in 0..batch {
                    black_box(map.get(rng.next_below(keys)));
                }
            },
        );
    }
}
