//! Criterion benchmark: single-threaded Get cost across DLHT and every
//! baseline (laptop-scale proxy for Fig. 1 / Fig. 3 orderings).

use criterion::{criterion_group, criterion_main, Criterion};
use dlht_baselines::MapKind;
use std::hint::black_box;

fn bench_baseline_gets(c: &mut Criterion) {
    let keys: u64 = 100_000;
    let mut group = c.benchmark_group("baseline_gets");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for kind in MapKind::all() {
        let map = kind.build(keys as usize * 2);
        for k in 0..keys {
            map.insert(k, k);
        }
        let mut i = 0u64;
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                i = (i + 7919) % keys;
                black_box(map.get(black_box(i)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline_gets);
criterion_main!(benches);
