//! Micro-benchmark: single-threaded Get cost across DLHT and every baseline
//! (laptop-scale proxy for Fig. 1 / Fig. 3 orderings), all driven through the
//! unified `KvBackend` trait.
//!
//! Run with: `cargo bench -p dlht-bench --bench baseline_gets`

use dlht_baselines::MapKind;
use dlht_bench::microbench;
use std::hint::black_box;

fn main() {
    let keys: u64 = 100_000;
    for kind in MapKind::all() {
        let map = kind.build(keys as usize * 2);
        for k in 0..keys {
            let _ = map.insert(k, k);
        }
        let mut i = 0u64;
        microbench(kind.name(), 1_000_000, || {
            i = (i + 7919) % keys;
            black_box(map.get(black_box(i)));
        });
    }
}
