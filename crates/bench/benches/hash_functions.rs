//! Micro-benchmark: the hash functions the DLHT authors evaluated (§3.4.3)
//! on 8-byte and 64-byte keys.
//!
//! Run with: `cargo bench -p dlht-bench --bench hash_functions`

use dlht_bench::microbench;
use dlht_hash::HashKind;
use std::hint::black_box;

fn main() {
    let long_key = vec![0xA5u8; 64];
    for kind in HashKind::all() {
        let mut k = 0u64;
        microbench(&format!("{}_u64", kind.name()), 4_000_000, || {
            k = k.wrapping_add(0x9E37_79B9);
            black_box(kind.hash_u64(black_box(k)));
        });
        microbench(&format!("{}_64B", kind.name()), 4_000_000, || {
            black_box(kind.hash_bytes(black_box(&long_key)));
        });
    }
}
