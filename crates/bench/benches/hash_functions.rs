//! Criterion benchmark: the hash functions the DLHT authors evaluated
//! (§3.4.3) on 8-byte and 64-byte keys.

use criterion::{criterion_group, criterion_main, Criterion};
use dlht_hash::HashKind;
use std::hint::black_box;

fn bench_hash_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_functions");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let long_key = vec![0xA5u8; 64];
    for kind in HashKind::all() {
        group.bench_function(format!("{}_u64", kind.name()), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(0x9E37_79B9);
                black_box(kind.hash_u64(black_box(k)))
            })
        });
        group.bench_function(format!("{}_64B", kind.name()), |b| {
            b.iter(|| black_box(kind.hash_bytes(black_box(&long_key))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash_functions);
criterion_main!(benches);
