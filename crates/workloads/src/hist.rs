//! Log-bucketed latency histogram used for Figure 15 (average and 99th
//! percentile latency under load).

/// Latency histogram with ~4% relative precision, covering 1 ns to ~17 s.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// buckets[b * SUB + s]: count of samples in that (power-of-two, linear
    /// subdivision) bucket.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

const BITS: usize = 35; // up to ~34 seconds
const SUB: usize = 16; // linear subdivisions per power of two

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BITS * SUB],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    #[inline]
    fn bucket_of(ns: u64) -> usize {
        let ns = ns.max(1);
        let msb = 63 - ns.leading_zeros() as usize;
        let sub = if msb == 0 {
            0
        } else {
            ((ns >> (msb.saturating_sub(4))) & (SUB as u64 - 1)) as usize
        };
        (msb.min(BITS - 1)) * SUB + sub
    }

    /// Approximate lower bound of a bucket in nanoseconds.
    fn bucket_value(bucket: usize) -> u64 {
        let msb = bucket / SUB;
        let sub = bucket % SUB;
        if msb < 4 {
            1 << msb
        } else {
            (1u64 << msb) + ((sub as u64) << (msb - 4))
        }
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merge another histogram into this one (per-thread histograms are merged
    /// after a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Snapshot the fixed percentile set every benchmark record reports.
    ///
    /// ```
    /// use dlht_workloads::LatencyHistogram;
    ///
    /// let mut h = LatencyHistogram::new();
    /// for ns in [100u64, 200, 300, 400] {
    ///     h.record(ns);
    /// }
    /// let s = h.summary();
    /// assert_eq!(s.samples, 4);
    /// assert_eq!(s.max_ns, 400);
    /// assert!(s.p99_ns >= s.p50_ns);
    /// ```
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            samples: self.count,
            mean_ns: self.mean_ns(),
            p50_ns: self.percentile_ns(50.0),
            p90_ns: self.percentile_ns(90.0),
            p99_ns: self.percentile_ns(99.0),
            p999_ns: self.percentile_ns(99.9),
            max_ns: self.max_ns,
        }
    }

    /// Latency at percentile `p` (0.0..=100.0), in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(b);
            }
        }
        self.max_ns
    }
}

/// The fixed percentile set captured into every `BENCH_*.json` data point
/// (see `dlht-bench`'s scenario harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples (0 when latency recording was off).
    pub samples: u64,
    /// Mean latency in nanoseconds (exact, not bucketed).
    pub mean_ns: f64,
    /// Median latency (bucket lower bound, ~4% relative precision).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Largest recorded sample (exact).
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.summary();
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_ns, h.percentile_ns(50.0));
        assert_eq!(s.p99_ns, h.percentile_ns(99.0));
        assert_eq!(s.p999_ns, h.percentile_ns(99.9));
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.mean_ns > 100.0);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400] {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_ns(), 250.0);
        assert_eq!(h.max_ns(), 400);
    }

    #[test]
    fn percentiles_are_order_of_magnitude_correct() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples at ~100ns, 1 slow sample at ~1ms.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let p50 = h.percentile_ns(50.0);
        let p99 = h.percentile_ns(99.0);
        let p100 = h.percentile_ns(100.0);
        assert!((64..=128).contains(&p50), "p50 = {p50}");
        assert!(p99 <= 128, "p99 = {p99}");
        assert!(p100 >= 500_000, "p100 = {p100}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(50);
            b.record(5_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert!(a.percentile_ns(99.0) >= 4_000);
        assert_eq!(a.max_ns(), 5_000);
    }

    #[test]
    fn buckets_are_monotonic_in_value() {
        let mut last = 0;
        for b in 0..(BITS * SUB) {
            let v = LatencyHistogram::bucket_value(b);
            assert!(v >= last, "bucket {b}: {v} < {last}");
            last = v;
        }
    }
}
