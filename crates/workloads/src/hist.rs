//! Log-bucketed latency histogram used for Figure 15 (average and 99th
//! percentile latency under load) — a thin wrapper over
//! [`dlht_obs::LocalHistogram`] so bench percentiles and the server's
//! `/metrics` percentiles come from one bucketing scheme.

pub use dlht_obs::LatencySummary;

/// Latency histogram with `1/SUB` (25%) bucket precision, covering 1 ns to
/// ~4.3 s; overflow samples land in the top bucket while the exact maximum
/// is tracked separately. Backed by the shared `dlht-obs` implementation.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    inner: dlht_obs::LocalHistogram,
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            inner: dlht_obs::LocalHistogram::new(),
        }
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.inner.record(ns);
    }

    /// Merge another histogram into this one (per-thread histograms are merged
    /// after a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.inner.merge(&other.inner);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.inner.mean_ns()
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.inner.max_ns()
    }

    /// Snapshot the fixed percentile set every benchmark record reports.
    ///
    /// ```
    /// use dlht_workloads::LatencyHistogram;
    ///
    /// let mut h = LatencyHistogram::new();
    /// for ns in [100u64, 200, 300, 400] {
    ///     h.record(ns);
    /// }
    /// let s = h.summary();
    /// assert_eq!(s.samples, 4);
    /// assert_eq!(s.max_ns, 400);
    /// assert!(s.p99_ns >= s.p50_ns);
    /// ```
    pub fn summary(&self) -> LatencySummary {
        self.inner.snapshot().summary()
    }

    /// Latency at percentile `p` (0.0..=100.0), in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.inner.snapshot().percentile_ns(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.summary();
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_ns, h.percentile_ns(50.0));
        assert_eq!(s.p99_ns, h.percentile_ns(99.0));
        assert_eq!(s.p999_ns, h.percentile_ns(99.9));
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.mean_ns > 100.0);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400] {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_ns(), 250.0);
        assert_eq!(h.max_ns(), 400);
    }

    #[test]
    fn percentiles_are_order_of_magnitude_correct() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples at ~100ns, 1 slow sample at ~1ms.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let p50 = h.percentile_ns(50.0);
        let p99 = h.percentile_ns(99.0);
        let p100 = h.percentile_ns(100.0);
        assert!((64..=128).contains(&p50), "p50 = {p50}");
        assert!(p99 <= 128, "p99 = {p99}");
        assert!(p100 >= 500_000, "p100 = {p100}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(50);
            b.record(5_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert!(a.percentile_ns(99.0) >= 4_000);
        assert_eq!(a.max_ns(), 5_000);
    }

    #[test]
    fn buckets_are_monotonic_in_value() {
        let mut last = 0;
        for b in 0..dlht_obs::BINS {
            let v = dlht_obs::bucket_lower(b);
            assert!(v >= last, "bucket {b}: {v} < {last}");
            last = v;
        }
    }
}
