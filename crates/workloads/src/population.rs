//! Growing-index experiments: population throughput (Fig. 7) and the
//! resize-timeline experiment showing Gets continuing during a non-blocking
//! resize (Fig. 8).

use dlht_core::{DlhtConfig, DlhtMap, KvBackend, ShardedTable};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of a population run (Fig. 7).
#[derive(Debug, Clone)]
pub struct PopulationResult {
    /// Keys inserted.
    pub keys: u64,
    /// Wall-clock time for the whole population.
    pub elapsed: Duration,
    /// Million inserts per second.
    pub mops: f64,
}

/// Insert `keys` fresh keys into `map` from `threads` threads, starting from a
/// deliberately small index so the map must grow repeatedly (Fig. 7: "Avg.
/// Population throughput: Inserting 800M keys over a growing index").
pub fn populate_growing(map: &dyn KvBackend, keys: u64, threads: usize) -> PopulationResult {
    let threads = threads.max(1) as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut k = t;
                while k < keys {
                    let _ = map.insert(k, k);
                    k += threads;
                }
            });
        }
    });
    let elapsed = start.elapsed();
    PopulationResult {
        keys,
        elapsed,
        mops: keys as f64 / elapsed.as_secs_f64() / 1e6,
    }
}

/// One sample of the resize-timeline experiment (Fig. 8).
#[derive(Debug, Clone)]
pub struct TimelineSample {
    /// Milliseconds since the experiment started.
    pub at_ms: u64,
    /// Get throughput over the sampling window (M req/s).
    pub get_mops: f64,
    /// Insert throughput over the sampling window (M req/s).
    pub insert_mops: f64,
    /// Index generation observed at the end of the window (counts resizes).
    pub generation: u32,
}

/// Reproduce Fig. 8: `get_threads` threads issue Gets on a prepopulated key
/// range while `insert_threads` threads keep inserting fresh keys, forcing the
/// index to grow; throughput is sampled every `sample_every`.
pub fn resize_timeline(
    prepopulated: u64,
    extra_inserts: u64,
    get_threads: usize,
    insert_threads: usize,
    sample_every: Duration,
    num_bins: usize,
) -> Vec<TimelineSample> {
    let map = DlhtMap::with_config(
        DlhtConfig::new(num_bins)
            .with_hash(dlht_hash::HashKind::WyHash)
            .with_chunk_bins(1024),
    );
    for k in 0..prepopulated {
        let _ = map.insert(k, k).unwrap();
    }
    timeline_inner(
        &map,
        prepopulated,
        extra_inserts,
        get_threads,
        insert_threads,
        sample_every,
        &|| map.raw().current_generation(),
    )
}

/// A sharded resize timeline: the throughput samples plus the per-shard
/// resize counts at the end of the run, which make the shard-local resizes
/// visible (generations diverge; siblings of a hot shard stay put).
#[derive(Debug, Clone)]
pub struct ShardedTimeline {
    /// Throughput samples; `generation` reports the **highest** shard
    /// generation in each window.
    pub samples: Vec<TimelineSample>,
    /// Resizes per shard, in routing order, at the end of the run.
    pub shard_resizes: Vec<u64>,
}

/// [`resize_timeline`] over a [`ShardedTable`] of `shards` shards: Gets keep
/// completing while each shard grows **independently** under the insert
/// pressure that actually reaches it.
pub fn resize_timeline_sharded(
    prepopulated: u64,
    extra_inserts: u64,
    get_threads: usize,
    insert_threads: usize,
    sample_every: Duration,
    num_bins: usize,
    shards: usize,
) -> ShardedTimeline {
    let table = ShardedTable::with_config(
        shards,
        DlhtConfig::new(num_bins)
            .with_hash(dlht_hash::HashKind::WyHash)
            .with_chunk_bins(1024),
    );
    for k in 0..prepopulated {
        let _ = table.insert(k, k).unwrap();
    }
    let samples = timeline_inner(
        &table,
        prepopulated,
        extra_inserts,
        get_threads,
        insert_threads,
        sample_every,
        &|| {
            table
                .shards()
                .map(|s| s.current_generation())
                .max()
                .unwrap_or(0)
        },
    );
    ShardedTimeline {
        samples,
        shard_resizes: table.shards().map(|s| s.resizes()).collect(),
    }
}

/// Shared timeline driver: Gets on the prepopulated range racing fresh
/// inserts, with a sampler thread recording windowed throughput and the
/// map-specific `generation` observation.
fn timeline_inner<M: KvBackend + ?Sized>(
    map: &M,
    prepopulated: u64,
    extra_inserts: u64,
    get_threads: usize,
    insert_threads: usize,
    sample_every: Duration,
    generation: &(dyn Fn() -> u32 + Sync),
) -> Vec<TimelineSample> {
    let gets = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let inserters_done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut samples = Vec::new();

    std::thread::scope(|s| {
        for t in 0..get_threads.max(1) {
            let map = &map;
            let gets = &gets;
            let stop = &stop;
            s.spawn(move || {
                let mut rng = crate::rng::Xoshiro256::new(100 + t as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.next_below(prepopulated);
                    std::hint::black_box(map.get(k));
                    local += 1;
                    if local.is_multiple_of(256) {
                        gets.fetch_add(256, Ordering::Relaxed);
                    }
                }
                gets.fetch_add(local % 256, Ordering::Relaxed);
            });
        }
        let num_inserters = insert_threads.max(1);
        for t in 0..num_inserters {
            let map = &map;
            let inserts = &inserts;
            let inserters_done = &inserters_done;
            let stop = &stop;
            let per_thread = extra_inserts / num_inserters as u64;
            s.spawn(move || {
                let base = prepopulated + 1 + t as u64 * (1 << 40);
                for i in 0..per_thread {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let _ = map.insert(base + i, i);
                    if i.is_multiple_of(256) {
                        inserts.fetch_add(256, Ordering::Relaxed);
                    }
                }
                inserters_done.fetch_add(1, Ordering::Relaxed);
            });
        }

        // Sampler: record windows until the inserters are done (or a cap).
        let started = Instant::now();
        let mut last_gets = 0u64;
        let mut last_inserts = 0u64;
        loop {
            std::thread::sleep(sample_every);
            let g = gets.load(Ordering::Relaxed);
            let i = inserts.load(Ordering::Relaxed);
            let window = sample_every.as_secs_f64();
            samples.push(TimelineSample {
                at_ms: started.elapsed().as_millis() as u64,
                get_mops: (g - last_gets) as f64 / window / 1e6,
                insert_mops: (i - last_inserts) as f64 / window / 1e6,
                generation: generation(),
            });
            last_gets = g;
            last_inserts = i;
            if inserters_done.load(Ordering::Relaxed) >= num_inserters as u64
                || started.elapsed() > Duration::from_secs(30)
            {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_baselines::MapKind;

    #[test]
    fn population_grows_and_counts() {
        for kind in MapKind::resizable() {
            // Small initial capacity forces growth for every resizable design.
            let map = kind.build(128);
            let r = populate_growing(map.as_ref(), 20_000, 2);
            assert_eq!(map.len(), 20_000, "{}", kind.name());
            assert!(r.mops > 0.0);
            assert_eq!(r.keys, 20_000);
        }
    }

    #[test]
    fn sharded_timeline_grows_shards_independently() {
        let t = resize_timeline_sharded(
            2_000,
            30_000,
            1,
            1,
            Duration::from_millis(20),
            64, // tiny combined index => guaranteed per-shard resizes
            4,
        );
        assert!(!t.samples.is_empty());
        assert_eq!(t.shard_resizes.len(), 4);
        assert!(
            t.shard_resizes.iter().any(|&r| r > 0),
            "at least one shard must have resized"
        );
        // Gets keep completing while shards grow on their own.
        assert!(t.samples.iter().any(|s| s.get_mops > 0.0));
        assert!(t.samples.last().unwrap().generation > 0);
    }

    #[test]
    fn timeline_records_samples_and_growth() {
        let samples = resize_timeline(
            2_000,
            30_000,
            1,
            1,
            Duration::from_millis(20),
            64, // tiny index => guaranteed resizes
        );
        assert!(!samples.is_empty());
        let last = samples.last().unwrap();
        assert!(
            last.generation > 0,
            "the index must have grown during the timeline"
        );
        // Gets keep completing in every window (non-blocking resize).
        assert!(samples.iter().all(|s| s.get_mops >= 0.0));
        assert!(samples.iter().any(|s| s.get_mops > 0.0));
    }
}
