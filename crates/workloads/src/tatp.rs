//! TATP — the read-intensive multi-key OLTP benchmark of §5.3.5 (Fig. 19,
//! Table 4: 4 tables, 51 columns, 7 transactions, 80% reads).
//!
//! The four TATP tables (SUBSCRIBER, ACCESS_INFO, SPECIAL_FACILITY,
//! CALL_FORWARDING) are stored in a single DLHT Inlined-mode instance, one
//! namespace-style table tag packed into the top bits of the key — the
//! "pointer map for a database storage engine" use-case of §3.1. Row payloads
//! are compacted into the 8-byte value word (TATP's columns are small
//! integers), which keeps the benchmark memory-resident and single-access the
//! way the paper runs it.

use crate::rng::Xoshiro256;
use dlht_core::{DlhtMap, KvBackend};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Table tags (top byte of the key).
const SUBSCRIBER: u64 = 1 << 56;
const ACCESS_INFO: u64 = 2 << 56;
const SPECIAL_FACILITY: u64 = 3 << 56;
const CALL_FORWARDING: u64 = 4 << 56;

#[inline]
fn sub_key(s_id: u64) -> u64 {
    SUBSCRIBER | s_id
}
#[inline]
fn ai_key(s_id: u64, ai_type: u64) -> u64 {
    ACCESS_INFO | (s_id << 2) | ai_type
}
#[inline]
fn sf_key(s_id: u64, sf_type: u64) -> u64 {
    SPECIAL_FACILITY | (s_id << 2) | sf_type
}
#[inline]
fn cf_key(s_id: u64, sf_type: u64, start_time: u64) -> u64 {
    CALL_FORWARDING | (s_id << 7) | (sf_type << 5) | start_time
}

/// The seven TATP transaction types with their standard mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TatpTxn {
    /// 35% — read a subscriber row.
    GetSubscriberData,
    /// 10% — read special facility + call forwarding rows.
    GetNewDestination,
    /// 35% — read an access-info row.
    GetAccessData,
    /// 2% — update subscriber + special facility rows.
    UpdateSubscriberData,
    /// 14% — update the subscriber's location.
    UpdateLocation,
    /// 2% — insert a call-forwarding row.
    InsertCallForwarding,
    /// 2% — delete a call-forwarding row.
    DeleteCallForwarding,
}

impl TatpTxn {
    /// Sample a transaction type according to the standard TATP mix.
    pub fn sample(rng: &mut Xoshiro256) -> TatpTxn {
        match rng.next_below(100) {
            0..=34 => TatpTxn::GetSubscriberData,
            35..=44 => TatpTxn::GetNewDestination,
            45..=79 => TatpTxn::GetAccessData,
            80..=81 => TatpTxn::UpdateSubscriberData,
            82..=95 => TatpTxn::UpdateLocation,
            96..=97 => TatpTxn::InsertCallForwarding,
            _ => TatpTxn::DeleteCallForwarding,
        }
    }

    /// Whether the transaction is read-only (the mix is 80% reads).
    pub fn is_read_only(self) -> bool {
        matches!(
            self,
            TatpTxn::GetSubscriberData | TatpTxn::GetNewDestination | TatpTxn::GetAccessData
        )
    }
}

/// A populated TATP database over any [`KvBackend`] (DLHT Inlined mode by
/// default, the paper's configuration).
pub struct TatpDatabase<B: KvBackend = DlhtMap> {
    map: B,
    subscribers: u64,
}

impl TatpDatabase<DlhtMap> {
    /// Create and populate a database with `subscribers` subscribers (the
    /// paper uses 1 M) over a DLHT Inlined-mode instance.
    pub fn populate(subscribers: u64) -> Self {
        // Each subscriber has 1 subscriber row, ~2.5 access-info rows,
        // ~2.5 special-facility rows and ~1.5 call-forwarding rows.
        let map = DlhtMap::with_capacity((subscribers as usize) * 8 + 1024);
        Self::populate_with(map, subscribers)
    }
}

impl<B: KvBackend> TatpDatabase<B> {
    /// Populate `subscribers` subscribers into an arbitrary backend.
    pub fn populate_with(map: B, subscribers: u64) -> Self {
        let mut rng = Xoshiro256::new(0x7A7F ^ subscribers);
        for s in 0..subscribers {
            let _ = map.insert(sub_key(s), rng.next_u64()).unwrap();
            let ai_rows = 1 + rng.next_below(4);
            for ai in 0..ai_rows {
                let _ = map.insert(ai_key(s, ai), rng.next_u64()).unwrap();
            }
            let sf_rows = 1 + rng.next_below(4);
            for sf in 0..sf_rows {
                let _ = map.insert(sf_key(s, sf), rng.next_u64()).unwrap();
                // 0..=3 call-forwarding rows per special facility.
                for start in 0..rng.next_below(4) {
                    let _ = map
                        .insert(cf_key(s, sf, start * 8), rng.next_u64())
                        .unwrap();
                }
            }
        }
        TatpDatabase { map, subscribers }
    }

    /// Number of populated subscribers.
    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    /// Total rows across the four tables.
    pub fn rows(&self) -> usize {
        self.map.len()
    }

    /// Execute one transaction; returns `true` if it committed (TATP defines
    /// some transactions to fail when the probed row does not exist).
    pub fn execute(&self, txn: TatpTxn, rng: &mut Xoshiro256) -> bool {
        let s_id = rng.next_below(self.subscribers);
        match txn {
            TatpTxn::GetSubscriberData => self.map.get(sub_key(s_id)).is_some(),
            TatpTxn::GetAccessData => self.map.get(ai_key(s_id, rng.next_below(4))).is_some(),
            TatpTxn::GetNewDestination => {
                let sf = rng.next_below(4);
                let facility = self.map.get(sf_key(s_id, sf));
                if facility.is_none() {
                    return false;
                }
                self.map
                    .get(cf_key(s_id, sf, rng.next_below(3) * 8))
                    .is_some()
            }
            TatpTxn::UpdateSubscriberData => {
                let bit = rng.next_u64();
                let a = self.map.put(sub_key(s_id), bit).is_some();
                let b = self.map.put(sf_key(s_id, rng.next_below(4)), bit).is_some();
                a && b
            }
            TatpTxn::UpdateLocation => self.map.put(sub_key(s_id), rng.next_u64()).is_some(),
            TatpTxn::InsertCallForwarding => {
                let sf = rng.next_below(4);
                if self.map.get(sf_key(s_id, sf)).is_none() {
                    return false;
                }
                self.map
                    .insert(cf_key(s_id, sf, rng.next_below(3) * 8 + 1), rng.next_u64())
                    .map(|o| o.inserted())
                    .unwrap_or(false)
            }
            TatpTxn::DeleteCallForwarding => {
                let sf = rng.next_below(4);
                self.map
                    .delete(cf_key(s_id, sf, rng.next_below(3) * 8 + 1))
                    .is_some()
            }
        }
    }
}

/// Result of a TATP run.
#[derive(Debug, Clone)]
pub struct OltpResult {
    /// Committed transactions.
    pub committed: u64,
    /// Attempted transactions (committed + aborted/failed probes).
    pub attempted: u64,
    /// Million transactions per second (attempted, as in the paper).
    pub mtps: f64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Run TATP with `threads` threads for `duration` (Fig. 19, left series).
pub fn run_tatp<B: KvBackend>(
    db: &TatpDatabase<B>,
    threads: usize,
    duration: Duration,
) -> OltpResult {
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    let attempted = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads.max(1) {
            let db = &db;
            let stop = &stop;
            let committed = &committed;
            let attempted = &attempted;
            s.spawn(move || {
                let mut rng = Xoshiro256::new(0x7A7 + t as u64);
                let mut local_c = 0u64;
                let mut local_a = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let txn = TatpTxn::sample(&mut rng);
                    if db.execute(txn, &mut rng) {
                        local_c += 1;
                    }
                    local_a += 1;
                }
                committed.fetch_add(local_c, Ordering::Relaxed);
                attempted.fetch_add(local_a, Ordering::Relaxed);
            });
        }
        let stop = &stop;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
    });
    let elapsed = start.elapsed();
    let attempted_n = attempted.load(Ordering::Relaxed);
    OltpResult {
        committed: committed.load(Ordering::Relaxed),
        attempted: attempted_n,
        mtps: attempted_n as f64 / elapsed.as_secs_f64() / 1e6,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_creates_all_tables() {
        let db = TatpDatabase::populate(500);
        assert_eq!(db.subscribers(), 500);
        // At minimum one subscriber + one access info + one special facility
        // row per subscriber.
        assert!(db.rows() >= 1_500, "rows = {}", db.rows());
    }

    #[test]
    fn transaction_mix_is_read_heavy() {
        let mut rng = Xoshiro256::new(1);
        let reads = (0..10_000)
            .filter(|_| TatpTxn::sample(&mut rng).is_read_only())
            .count();
        assert!((7_500..=8_500).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn all_transaction_types_execute() {
        let db = TatpDatabase::populate(200);
        let mut rng = Xoshiro256::new(2);
        let mut committed = 0;
        for txn in [
            TatpTxn::GetSubscriberData,
            TatpTxn::GetNewDestination,
            TatpTxn::GetAccessData,
            TatpTxn::UpdateSubscriberData,
            TatpTxn::UpdateLocation,
            TatpTxn::InsertCallForwarding,
            TatpTxn::DeleteCallForwarding,
        ] {
            for _ in 0..50 {
                if db.execute(txn, &mut rng) {
                    committed += 1;
                }
            }
        }
        assert!(committed > 0);
        // Subscriber reads always hit.
        assert!(db.execute(TatpTxn::GetSubscriberData, &mut rng));
    }

    #[test]
    fn short_run_reports_throughput() {
        let db = TatpDatabase::populate(1_000);
        let r = run_tatp(&db, 2, Duration::from_millis(50));
        assert!(r.attempted > 0);
        assert!(r.committed > 0);
        assert!(r.committed <= r.attempted);
        assert!(r.mtps > 0.0);
    }
}
