//! Plain-text table / CSV report helpers used by every benchmark binary so
//! the regenerated tables and figure series share one format.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            header_line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
        }
        out.push_str(header_line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(header_line.trim_end().len().max(4)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{:<width$}  ", cell, width = w));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored markdown table (used by `bench_report`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Print the rendered table to stderr (the scenario harness keeps stdout
    /// for machine-readable JSON lines and stderr for human-readable tables).
    pub fn print_stderr(&self) {
        eprintln!("{}", self.render());
    }
}

/// Format a throughput value as `M req/s` with sensible precision.
pub fn fmt_mops(mops: f64) -> String {
    if mops >= 100.0 {
        format!("{mops:.0}")
    } else if mops >= 10.0 {
        format!("{mops:.1}")
    } else {
        format!("{mops:.2}")
    }
}

/// Measurement tier: how much time/data a benchmark run spends per point.
///
/// Selected with `--smoke` / `--full` on the command line or `DLHT_TIER`
/// in the environment (the flag wins). The tier only changes the *defaults*;
/// explicit `DLHT_KEYS`/`DLHT_THREADS`/`DLHT_SECS` still override it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// CI-sized: small key counts and short points, the whole 23-scenario
    /// suite completes in about a minute. Catches wiring regressions and
    /// produces a comparable (if noisy) perf trajectory.
    Smoke,
    /// The environment-scaled defaults (and the ceiling for scaling toward
    /// the paper's 100 M-key, 71-thread setup via the `DLHT_*` variables).
    #[default]
    Full,
}

impl Tier {
    /// Name as it appears in `BENCH_*.json` headers and `DLHT_TIER`.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Full => "full",
        }
    }
}

/// Standard scaling knobs shared by all bench binaries, read from the
/// environment and the command line. This is the **one source of truth** for
/// a benchmark run's configuration — including the RNG seed — and is embedded
/// verbatim in every `BENCH_*.json` header the scenario harness writes.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Prepopulated keys (`DLHT_KEYS`; default 200_000 full / 20_000 smoke).
    pub keys: u64,
    /// Thread counts to sweep (`DLHT_THREADS`, comma-separated; default
    /// "1,2,4" full / "1,2" smoke).
    pub threads: Vec<usize>,
    /// Seconds per measurement point (`DLHT_SECS`; default 0.4 full /
    /// 0.06 smoke).
    pub secs: f64,
    /// Shard count for the sharded-DLHT configurations (`--shards N` on the
    /// command line, falling back to `DLHT_SHARDS`, default 4). Rounded up to
    /// a power of two by the table itself.
    pub shards: usize,
    /// Root RNG seed (`DLHT_SEED`, default `0xD1E7`). Every workload stream
    /// derives from it (see [`BenchScale::seed_for`]); figure binaries must
    /// not invent their own constants.
    pub seed: u64,
    /// Measurement tier (`--smoke` / `--full` / `DLHT_TIER`).
    pub tier: Tier,
}

/// The default root seed (`0xD1E7` — "DLHT"), kept identical to the constant
/// the workload runner historically hard-coded so default runs stay
/// bit-compatible.
pub const DEFAULT_SEED: u64 = 0xD1_E7;

impl BenchScale {
    /// Read the scaling knobs from the environment (and `--shards N` /
    /// `--shards=N`, `--smoke`, `--full` from the process arguments).
    pub fn from_env() -> Self {
        Self::from_env_and_args(std::env::args().skip(1))
    }

    /// [`BenchScale::from_env`] with an explicit argument list (testable).
    pub fn from_env_and_args(args: impl IntoIterator<Item = String>) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let tier = parse_tier_arg(&args)
            .or_else(|| std::env::var("DLHT_TIER").ok().and_then(|v| parse_tier(&v)))
            .unwrap_or_default();
        let (default_keys, default_threads, default_secs) = match tier {
            Tier::Smoke => (20_000, vec![1, 2], 0.06),
            Tier::Full => (200_000, vec![1, 2, 4], 0.4),
        };
        let keys = std::env::var("DLHT_KEYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_keys);
        let threads = std::env::var("DLHT_THREADS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t| t > 0)
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or(default_threads);
        let secs = std::env::var("DLHT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_secs);
        let shards = parse_shards_arg(&args)
            .or_else(|| {
                std::env::var("DLHT_SHARDS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .filter(|&s| s > 0)
            .unwrap_or(4);
        let seed = std::env::var("DLHT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        BenchScale {
            keys,
            threads,
            secs,
            shards,
            seed,
            tier,
        }
    }

    /// Duration per measurement point.
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.secs.max(0.05))
    }

    /// Warm-up duration preceding every measured point: a quarter of the
    /// measurement time, clamped to 20–200 ms.
    pub fn warmup(&self) -> std::time::Duration {
        std::time::Duration::from_secs_f64((self.secs / 4.0).clamp(0.02, 0.2))
    }

    /// Derive a named sub-seed from the root [`BenchScale::seed`].
    ///
    /// Distinct labels yield statistically independent streams while keeping
    /// the whole run reproducible from the single recorded seed:
    ///
    /// ```
    /// use dlht_workloads::BenchScale;
    ///
    /// let scale = BenchScale::from_env_and_args([]);
    /// let a = scale.seed_for("fig09/get");
    /// assert_eq!(a, scale.seed_for("fig09/get"));
    /// assert_ne!(a, scale.seed_for("fig09/insdel"));
    /// ```
    pub fn seed_for(&self, label: &str) -> u64 {
        // FNV-1a over the label, folded into the root seed via SplitMix64.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = crate::rng::SplitMix64::new(self.seed ^ h);
        sm.next_u64()
    }

    /// A [`crate::Xoshiro256`] stream derived from the root seed and `label`.
    pub fn stream(&self, label: &str) -> crate::Xoshiro256 {
        crate::Xoshiro256::new(self.seed_for(label))
    }

    /// The shard count clamped to what a `MapKind::DlhtSharded` payload can
    /// carry.
    pub fn shards_u8(&self) -> u8 {
        self.shards.min(u8::MAX as usize) as u8
    }
}

/// Scan an argument list for `--shards N` or `--shards=N`.
fn parse_shards_arg(args: &[String]) -> Option<usize> {
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--shards=") {
            return v.parse().ok();
        }
        if arg == "--shards" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Scan an argument list for `--smoke` / `--full` (last one wins).
fn parse_tier_arg(args: &[String]) -> Option<Tier> {
    let mut tier = None;
    for arg in args {
        match arg.as_str() {
            "--smoke" => tier = Some(Tier::Smoke),
            "--full" => tier = Some(Tier::Full),
            _ => {}
        }
    }
    tier
}

/// Parse a `DLHT_TIER` value.
fn parse_tier(v: &str) -> Option<Tier> {
    match v.trim().to_ascii_lowercase().as_str() {
        "smoke" => Some(Tier::Smoke),
        "full" => Some(Tier::Full),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Fig. X", &["map", "threads", "Mreq/s"]);
        t.row(&["DLHT".into(), "64".into(), "1660".into()]);
        t.row(&["GrowT-like".into(), "64".into(), "470".into()]);
        let s = t.render();
        assert!(s.contains("# Fig. X"));
        assert!(s.contains("DLHT"));
        assert!(s.contains("GrowT-like"));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("map,threads,Mreq/s\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn fmt_mops_precision() {
        assert_eq!(fmt_mops(1234.6), "1235");
        assert_eq!(fmt_mops(56.78), "56.8");
        assert_eq!(fmt_mops(3.456), "3.46");
    }

    #[test]
    fn bench_scale_defaults() {
        // Only check defaults when the variables are unset in the test env.
        if std::env::var("DLHT_KEYS").is_err() && std::env::var("DLHT_TIER").is_err() {
            let s = BenchScale::from_env_and_args([]);
            assert_eq!(s.keys, 200_000);
            assert!(!s.threads.is_empty());
            assert!(s.duration().as_millis() >= 50);
            if std::env::var("DLHT_SHARDS").is_err() {
                assert_eq!(s.shards, 4);
            }
        }
    }

    #[test]
    fn shards_flag_parses_both_spellings() {
        assert_eq!(
            parse_shards_arg(&["--shards".into(), "8".into()]),
            Some(8usize)
        );
        assert_eq!(parse_shards_arg(&["--shards=2".into()]), Some(2usize));
        assert_eq!(
            parse_shards_arg(&["--other".into(), "--shards".into(), "16".into()]),
            Some(16usize)
        );
        assert_eq!(parse_shards_arg(&["--shards".into()]), None);
        assert_eq!(parse_shards_arg(&[]), None);
        if std::env::var("DLHT_SHARDS").is_err() {
            let s = BenchScale::from_env_and_args(["--shards".into(), "8".into()]);
            assert_eq!(s.shards, 8);
            assert_eq!(s.shards_u8(), 8);
        }
    }

    #[test]
    fn smoke_tier_shrinks_the_defaults() {
        if std::env::var("DLHT_TIER").is_ok() {
            return;
        }
        let smoke = BenchScale::from_env_and_args(["--smoke".into()]);
        assert_eq!(smoke.tier, Tier::Smoke);
        assert_eq!(smoke.tier.name(), "smoke");
        let full = BenchScale::from_env_and_args(["--full".into()]);
        assert_eq!(full.tier, Tier::Full);
        if std::env::var("DLHT_KEYS").is_err() && std::env::var("DLHT_SECS").is_err() {
            assert!(smoke.keys < full.keys);
            assert!(smoke.secs < full.secs);
        }
        // Warmup stays within its clamp in both tiers.
        for s in [&smoke, &full] {
            let w = s.warmup().as_secs_f64();
            assert!((0.02..=0.2).contains(&w), "warmup = {w}");
        }
    }

    #[test]
    fn seed_streams_are_deterministic_and_label_distinct() {
        let scale = BenchScale::from_env_and_args([]);
        assert_eq!(scale.seed_for("a"), scale.seed_for("a"));
        assert_ne!(scale.seed_for("a"), scale.seed_for("b"));
        let mut s1 = scale.stream("x");
        let mut s2 = scale.stream("x");
        assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn table_markdown_has_separator_row() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 1 | 2 |"));
    }
}
