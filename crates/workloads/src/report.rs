//! Plain-text table / CSV report helpers used by every benchmark binary so
//! the regenerated tables and figure series share one format.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            header_line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
        }
        out.push_str(header_line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(header_line.trim_end().len().max(4)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{:<width$}  ", cell, width = w));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a throughput value as `M req/s` with sensible precision.
pub fn fmt_mops(mops: f64) -> String {
    if mops >= 100.0 {
        format!("{mops:.0}")
    } else if mops >= 10.0 {
        format!("{mops:.1}")
    } else {
        format!("{mops:.2}")
    }
}

/// Standard scaling knobs shared by all bench binaries, read from the
/// environment and (for the shard count) from the command line.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Prepopulated keys (`DLHT_KEYS`, default 200_000).
    pub keys: u64,
    /// Thread counts to sweep (`DLHT_THREADS`, comma-separated, default "1,2,4").
    pub threads: Vec<usize>,
    /// Seconds per measurement point (`DLHT_SECS`, default 0.4).
    pub secs: f64,
    /// Shard count for the sharded-DLHT configurations (`--shards N` on the
    /// command line, falling back to `DLHT_SHARDS`, default 4). Rounded up to
    /// a power of two by the table itself.
    pub shards: usize,
}

impl BenchScale {
    /// Read the scaling knobs from the environment (and `--shards N` /
    /// `--shards=N` from the process arguments).
    pub fn from_env() -> Self {
        Self::from_env_and_args(std::env::args().skip(1))
    }

    /// [`BenchScale::from_env`] with an explicit argument list (testable).
    pub fn from_env_and_args(args: impl IntoIterator<Item = String>) -> Self {
        let keys = std::env::var("DLHT_KEYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000);
        let threads = std::env::var("DLHT_THREADS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t| t > 0)
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4]);
        let secs = std::env::var("DLHT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.4);
        let shards = parse_shards_arg(args)
            .or_else(|| {
                std::env::var("DLHT_SHARDS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .filter(|&s| s > 0)
            .unwrap_or(4);
        BenchScale {
            keys,
            threads,
            secs,
            shards,
        }
    }

    /// Duration per measurement point.
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.secs.max(0.05))
    }

    /// The shard count clamped to what a `MapKind::DlhtSharded` payload can
    /// carry.
    pub fn shards_u8(&self) -> u8 {
        self.shards.min(u8::MAX as usize) as u8
    }
}

/// Scan an argument list for `--shards N` or `--shards=N`.
fn parse_shards_arg(args: impl IntoIterator<Item = String>) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--shards=") {
            return v.parse().ok();
        }
        if arg == "--shards" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Fig. X", &["map", "threads", "Mreq/s"]);
        t.row(&["DLHT".into(), "64".into(), "1660".into()]);
        t.row(&["GrowT-like".into(), "64".into(), "470".into()]);
        let s = t.render();
        assert!(s.contains("# Fig. X"));
        assert!(s.contains("DLHT"));
        assert!(s.contains("GrowT-like"));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("map,threads,Mreq/s\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn fmt_mops_precision() {
        assert_eq!(fmt_mops(1234.6), "1235");
        assert_eq!(fmt_mops(56.78), "56.8");
        assert_eq!(fmt_mops(3.456), "3.46");
    }

    #[test]
    fn bench_scale_defaults() {
        // Only check defaults when the variables are unset in the test env.
        if std::env::var("DLHT_KEYS").is_err() {
            let s = BenchScale::from_env_and_args([]);
            assert_eq!(s.keys, 200_000);
            assert!(!s.threads.is_empty());
            assert!(s.duration().as_millis() >= 50);
            if std::env::var("DLHT_SHARDS").is_err() {
                assert_eq!(s.shards, 4);
            }
        }
    }

    #[test]
    fn shards_flag_parses_both_spellings() {
        assert_eq!(
            parse_shards_arg(["--shards".into(), "8".into()]),
            Some(8usize)
        );
        assert_eq!(parse_shards_arg(["--shards=2".into()]), Some(2usize));
        assert_eq!(
            parse_shards_arg(["--other".into(), "--shards".into(), "16".into()]),
            Some(16usize)
        );
        assert_eq!(parse_shards_arg(["--shards".into()]), None);
        assert_eq!(parse_shards_arg([]), None);
        if std::env::var("DLHT_SHARDS").is_err() {
            let s = BenchScale::from_env_and_args(["--shards".into(), "8".into()]);
            assert_eq!(s.shards, 8);
            assert_eq!(s.shards_u8(), 8);
        }
    }
}
