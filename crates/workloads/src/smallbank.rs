//! Smallbank — the write-intensive multi-key OLTP benchmark of §5.3.5
//! (Fig. 19, Table 4: 3 tables, 6 columns, 6 transactions, 15% reads).
//!
//! The three tables (ACCOUNT, SAVINGS, CHECKING) live in one DLHT Inlined-mode
//! instance with a table tag in the key's top bits. Balances are stored as
//! integer cents in the 8-byte value word. Multi-row updates lock their rows
//! through a DLHT HashSet used as a lock manager (the §5.3.3 pattern), so
//! concurrent transfers never lose updates.

use crate::rng::Xoshiro256;
use dlht_core::{DlhtMap, DlhtSet, KvBackend};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const ACCOUNT: u64 = 1 << 56;
const SAVINGS: u64 = 2 << 56;
const CHECKING: u64 = 3 << 56;

#[inline]
fn acct_key(id: u64) -> u64 {
    ACCOUNT | id
}
#[inline]
fn sav_key(id: u64) -> u64 {
    SAVINGS | id
}
#[inline]
fn chk_key(id: u64) -> u64 {
    CHECKING | id
}

/// The six Smallbank transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallbankTxn {
    /// Read both balances (the only read-only transaction, 15%).
    Balance,
    /// Add to the checking balance.
    DepositChecking,
    /// Add to the savings balance.
    TransactSavings,
    /// Move both balances of one customer into another's checking.
    Amalgamate,
    /// Deduct a check from the checking balance.
    WriteCheck,
    /// Transfer between two customers' checking accounts.
    SendPayment,
}

impl SmallbankTxn {
    /// Sample with the standard write-heavy mix (15% Balance reads).
    pub fn sample(rng: &mut Xoshiro256) -> SmallbankTxn {
        match rng.next_below(100) {
            0..=14 => SmallbankTxn::Balance,
            15..=31 => SmallbankTxn::DepositChecking,
            32..=48 => SmallbankTxn::TransactSavings,
            49..=65 => SmallbankTxn::Amalgamate,
            66..=82 => SmallbankTxn::WriteCheck,
            _ => SmallbankTxn::SendPayment,
        }
    }
}

/// A populated Smallbank database over any [`KvBackend`] (DLHT Inlined mode
/// by default) plus a HashSet lock manager.
pub struct SmallbankDatabase<B: KvBackend = DlhtMap> {
    map: B,
    locks: DlhtSet,
    accounts: u64,
    initial_balance: u64,
}

impl SmallbankDatabase<DlhtMap> {
    /// Populate `accounts` customers (the paper uses 10 M) with a fixed
    /// starting balance in both savings and checking.
    pub fn populate(accounts: u64) -> Self {
        let map = DlhtMap::with_capacity(accounts as usize * 4 + 1024);
        Self::populate_with(map, accounts)
    }
}

impl<B: KvBackend> SmallbankDatabase<B> {
    /// Populate `accounts` customers into an arbitrary backend.
    pub fn populate_with(map: B, accounts: u64) -> Self {
        let initial_balance = 10_000;
        for id in 0..accounts {
            let _ = map.insert(acct_key(id), id).unwrap();
            let _ = map.insert(sav_key(id), initial_balance).unwrap();
            let _ = map.insert(chk_key(id), initial_balance).unwrap();
        }
        SmallbankDatabase {
            map,
            locks: DlhtSet::with_capacity(accounts as usize + 1024),
            accounts,
            initial_balance,
        }
    }

    /// Number of customers.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    /// Total money in the bank (savings + checking over all customers).
    /// Conserved by every transaction except deposits/checks, which we keep
    /// symmetric in the test harness by pairing them.
    pub fn total_money(&self) -> i128 {
        let mut total: i128 = 0;
        for id in 0..self.accounts {
            total += self.map.get(sav_key(id)).unwrap_or(0) as i128;
            total += self.map.get(chk_key(id)).unwrap_or(0) as i128;
        }
        total
    }

    /// Initial per-account balance.
    pub fn initial_balance(&self) -> u64 {
        self.initial_balance
    }

    /// Lock a set of customer ids in ascending order (deadlock-free thanks to
    /// the ordered, order-preserving lock acquisition — §5.3.3).
    fn lock(&self, ids: &[u64]) -> bool {
        let mut sorted: Vec<u64> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.locks.try_lock_all(&sorted).unwrap_or(false)
    }

    fn unlock(&self, ids: &[u64]) {
        let mut sorted: Vec<u64> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.locks.unlock_all(&sorted);
    }

    /// Execute one transaction; returns whether it committed.
    pub fn execute(&self, txn: SmallbankTxn, rng: &mut Xoshiro256) -> bool {
        let a = rng.next_below(self.accounts);
        let b = rng.next_below(self.accounts);
        match txn {
            SmallbankTxn::Balance => {
                self.map.get(sav_key(a)).is_some() && self.map.get(chk_key(a)).is_some()
            }
            SmallbankTxn::DepositChecking => {
                if !self.lock(&[a]) {
                    return false;
                }
                let cur = self.map.get(chk_key(a)).unwrap_or(0);
                let ok = self.map.put(chk_key(a), cur + 10).is_some();
                self.unlock(&[a]);
                ok
            }
            SmallbankTxn::TransactSavings => {
                if !self.lock(&[a]) {
                    return false;
                }
                let cur = self.map.get(sav_key(a)).unwrap_or(0);
                let ok = self.map.put(sav_key(a), cur.saturating_sub(10)).is_some();
                self.unlock(&[a]);
                ok
            }
            SmallbankTxn::Amalgamate => {
                if a == b || !self.lock(&[a, b]) {
                    return false;
                }
                let sav = self.map.get(sav_key(a)).unwrap_or(0);
                let chk = self.map.get(chk_key(a)).unwrap_or(0);
                let dst = self.map.get(chk_key(b)).unwrap_or(0);
                self.map.put(sav_key(a), 0);
                self.map.put(chk_key(a), 0);
                let ok = self.map.put(chk_key(b), dst + sav + chk).is_some();
                self.unlock(&[a, b]);
                ok
            }
            SmallbankTxn::WriteCheck => {
                if !self.lock(&[a]) {
                    return false;
                }
                let cur = self.map.get(chk_key(a)).unwrap_or(0);
                let ok = self.map.put(chk_key(a), cur.saturating_sub(5)).is_some();
                self.unlock(&[a]);
                ok
            }
            SmallbankTxn::SendPayment => {
                if a == b || !self.lock(&[a, b]) {
                    return false;
                }
                let src = self.map.get(chk_key(a)).unwrap_or(0);
                let amount = 5.min(src);
                let dst = self.map.get(chk_key(b)).unwrap_or(0);
                self.map.put(chk_key(a), src - amount);
                let ok = self.map.put(chk_key(b), dst + amount).is_some();
                self.unlock(&[a, b]);
                ok
            }
        }
    }
}

/// Run Smallbank with `threads` threads for `duration` (Fig. 19, right
/// series). Returns (committed, attempted, M txns/s).
pub fn run_smallbank<B: KvBackend>(
    db: &SmallbankDatabase<B>,
    threads: usize,
    duration: Duration,
) -> crate::tatp::OltpResult {
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    let attempted = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads.max(1) {
            let db = &db;
            let stop = &stop;
            let committed = &committed;
            let attempted = &attempted;
            s.spawn(move || {
                let mut rng = Xoshiro256::new(0x5B + t as u64);
                let mut local_c = 0u64;
                let mut local_a = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let txn = SmallbankTxn::sample(&mut rng);
                    if db.execute(txn, &mut rng) {
                        local_c += 1;
                    }
                    local_a += 1;
                }
                committed.fetch_add(local_c, Ordering::Relaxed);
                attempted.fetch_add(local_a, Ordering::Relaxed);
            });
        }
        let stop = &stop;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
    });
    let elapsed = start.elapsed();
    let attempted_n = attempted.load(Ordering::Relaxed);
    crate::tatp::OltpResult {
        committed: committed.load(Ordering::Relaxed),
        attempted: attempted_n,
        mtps: attempted_n as f64 / elapsed.as_secs_f64() / 1e6,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_and_balances() {
        let db = SmallbankDatabase::populate(100);
        assert_eq!(db.accounts(), 100);
        assert_eq!(db.total_money(), 100 * 2 * db.initial_balance() as i128);
    }

    #[test]
    fn mix_is_write_heavy() {
        let mut rng = Xoshiro256::new(9);
        let reads = (0..10_000)
            .filter(|_| SmallbankTxn::sample(&mut rng) == SmallbankTxn::Balance)
            .count();
        assert!((1_000..=2_000).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn send_payment_and_amalgamate_conserve_money() {
        let db = SmallbankDatabase::populate(50);
        let before = db.total_money();
        let mut rng = Xoshiro256::new(5);
        for _ in 0..500 {
            db.execute(SmallbankTxn::SendPayment, &mut rng);
            db.execute(SmallbankTxn::Amalgamate, &mut rng);
        }
        assert_eq!(db.total_money(), before, "transfers must conserve money");
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let db = SmallbankDatabase::populate(64);
        let before = db.total_money();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let db = &db;
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(t);
                    for _ in 0..1_000 {
                        db.execute(SmallbankTxn::SendPayment, &mut rng);
                    }
                });
            }
        });
        assert_eq!(db.total_money(), before);
    }

    #[test]
    fn short_run_reports_throughput() {
        let db = SmallbankDatabase::populate(1_000);
        let r = run_smallbank(&db, 2, Duration::from_millis(50));
        assert!(r.attempted > 0);
        assert!(r.mtps > 0.0);
    }
}
