//! Workload generators, measurement runner, and application scenarios for the
//! DLHT evaluation (§4–§5 of the paper).
//!
//! * [`runner`] — the micro-benchmark harness: Get / InsDel / Put-heavy mixes,
//!   uniform and skewed access, batching on/off, latency recording, and the
//!   remote-memory (CXL emulation) delay knob.
//! * [`rng`] — fast deterministic RNG and key samplers (uniform, 1000-hot-key
//!   skew, zipfian).
//! * [`hist`] — latency histogram for Fig. 15.
//! * [`power`] — the synthetic power model behind Fig. 4 (documented
//!   substitution for RAPL).
//! * [`population`] — growing-index population (Fig. 7) and the resize
//!   timeline (Fig. 8).
//! * [`ycsb`], [`tatp`], [`smallbank`] — the single-key and multi-key OLTP
//!   benchmarks of §5.3.4–5.3.5.
//! * [`hashjoin`] — the non-partitioned OLAP join of §5.3.6.
//! * [`lockmgr`] — the HashSet-based database lock manager of §5.3.3.
//! * [`report`] — table/CSV/markdown rendering plus [`BenchScale`], the
//!   one-source-of-truth run configuration (keys, threads, seconds, shards,
//!   seed, smoke/full tier) every `dlht-bench` scenario embeds in its
//!   `BENCH_*.json` header.
//!
//! # Example: measure a workload
//!
//! ```
//! use dlht_baselines::MapKind;
//! use dlht_workloads::{prepopulate, run_workload, WorkloadSpec};
//! use std::time::Duration;
//!
//! let map = MapKind::Dlht.build(4_096);
//! prepopulate(map.as_ref(), 1_000);
//! let spec = WorkloadSpec::get_default(1_000, 2, Duration::from_millis(30))
//!     .with_seed(42)
//!     .with_latency_recording();
//! let result = run_workload(map.as_ref(), &spec);
//! assert!(result.total_ops > 0);
//! let lat = result.latency.summary();
//! assert!(lat.p99_ns >= lat.p50_ns);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod hashjoin;
pub mod hist;
pub mod lockmgr;
pub mod population;
pub mod power;
pub mod report;
pub mod rng;
pub mod runner;
pub mod smallbank;
pub mod tatp;
pub mod ycsb;

pub use cache::{cache_key_bytes, CacheOp, ExpiryStorm, ZipfianChurn};
pub use hist::{LatencyHistogram, LatencySummary};
pub use report::{fmt_mops, BenchScale, Table, Tier, DEFAULT_SEED};
pub use rng::{KeySampler, SplitMix64, Xoshiro256};
pub use runner::{prepopulate, prepopulate_batched, run_workload, Mix, RunResult, WorkloadSpec};

#[cfg(test)]
mod integration {
    //! Cross-module smoke tests: the runner driven against several baselines
    //! with the paper's two default workloads.

    use super::*;
    use dlht_baselines::MapKind;
    use std::time::Duration;

    #[test]
    fn default_workloads_run_on_every_kind_of_map() {
        // Not a performance assertion (CI machines vary wildly); just checks
        // that every map kind can execute both default workloads end to end.
        for kind in [MapKind::Dlht, MapKind::DlhtNoBatch, MapKind::Growt] {
            let map = kind.build(20_000);
            prepopulate(map.as_ref(), 2_000);
            let get = run_workload(
                map.as_ref(),
                &WorkloadSpec::get_default(2_000, 2, Duration::from_millis(30)),
            );
            let insdel = run_workload(
                map.as_ref(),
                &WorkloadSpec::insdel_default(2_000, 2, Duration::from_millis(30)),
            );
            assert!(get.total_ops > 0, "{}", kind.name());
            assert!(insdel.total_ops > 0, "{}", kind.name());
        }
    }

    #[test]
    fn remote_latency_knob_slows_unbatched_runs() {
        let map = MapKind::DlhtNoBatch.build(10_000);
        prepopulate(map.as_ref(), 1_000);
        let fast = run_workload(
            map.as_ref(),
            &WorkloadSpec::get_default(1_000, 1, Duration::from_millis(40)).without_batching(),
        );
        let mut slow_spec =
            WorkloadSpec::get_default(1_000, 1, Duration::from_millis(40)).without_batching();
        slow_spec.remote_latency_ns = 2_000;
        let slow = run_workload(map.as_ref(), &slow_spec);
        assert!(
            slow.mops < fast.mops,
            "injected remote-memory latency must reduce throughput ({} !< {})",
            slow.mops,
            fast.mops
        );
    }
}
