//! YCSB single-key mixes (§5.3.4, Fig. 18).
//!
//! The paper evaluates four mixes over DLHT with the default configuration;
//! the standard YCSB letters map to read/update blends over a zipfian (or
//! uniform) key distribution:
//!
//! | Mix | Reads | Updates |
//! |---|---|---|
//! | A | 50% | 50% |
//! | B | 95% | 5% |
//! | C | 100% | 0% |
//! | F | 0% | 100% (update-only, the paper's fourth mix) |

use crate::rng::KeySampler;
use crate::runner::{run_workload, Mix, RunResult, WorkloadSpec};
use dlht_core::KvBackend;
use std::time::Duration;

/// The four YCSB mixes the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// 50% read / 50% update.
    A,
    /// 95% read / 5% update.
    B,
    /// 100% read.
    C,
    /// Update-only.
    F,
}

impl YcsbMix {
    /// All four evaluated mixes.
    pub fn all() -> [YcsbMix; 4] {
        [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::F]
    }

    /// Read percentage of the mix.
    pub fn read_pct(self) -> u32 {
        match self {
            YcsbMix::A => 50,
            YcsbMix::B => 95,
            YcsbMix::C => 100,
            YcsbMix::F => 0,
        }
    }

    /// Display name ("YCSB A", ...).
    pub fn name(self) -> &'static str {
        match self {
            YcsbMix::A => "YCSB A",
            YcsbMix::B => "YCSB B",
            YcsbMix::C => "YCSB C",
            YcsbMix::F => "YCSB F",
        }
    }
}

/// Run one YCSB mix against a prepopulated map.
pub fn run_ycsb(
    map: &dyn KvBackend,
    mix: YcsbMix,
    prepopulated: u64,
    threads: usize,
    duration: Duration,
    zipfian: bool,
) -> RunResult {
    let sampler = if zipfian {
        KeySampler::zipfian(prepopulated, 0.99)
    } else {
        KeySampler::uniform(prepopulated)
    };
    let spec = WorkloadSpec {
        mix: Mix::read_update(mix.read_pct()),
        sampler,
        ..WorkloadSpec::get_default(prepopulated, threads, duration)
    };
    run_workload(map, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepopulate;
    use dlht_baselines::MapKind;

    #[test]
    fn mix_percentages() {
        assert_eq!(YcsbMix::A.read_pct(), 50);
        assert_eq!(YcsbMix::B.read_pct(), 95);
        assert_eq!(YcsbMix::C.read_pct(), 100);
        assert_eq!(YcsbMix::F.read_pct(), 0);
        assert_eq!(YcsbMix::all().len(), 4);
    }

    #[test]
    fn all_mixes_run_over_dlht() {
        let map = MapKind::Dlht.build(20_000);
        prepopulate(map.as_ref(), 5_000);
        for mix in YcsbMix::all() {
            let r = run_ycsb(map.as_ref(), mix, 5_000, 2, Duration::from_millis(30), true);
            assert!(r.total_ops > 0, "{}", mix.name());
        }
        // Update-only must not change the population.
        assert_eq!(map.len(), 5_000);
    }
}
