//! Synthetic power model for the power-efficiency comparison (Fig. 4).
//!
//! **Substitution note** (see DESIGN.md): the paper measures socket power with
//! RAPL on its 2×18-core testbed. This repository has no hardware power
//! counters, so efficiency is computed from a deterministic model:
//!
//! ```text
//! P = P_IDLE + P_CORE · active_threads + P_MEMGB · memory_traffic_GBps
//! ```
//!
//! Memory traffic is estimated from the throughput and the per-request cache
//! line counts implied by each design (inlined single-access designs move one
//! 64 B line per request, non-inlined designs at least two, write-heavy mixes
//! add a write-back). The model reproduces the *ordering* the paper reports —
//! designs with fewer memory accesses per request are more efficient — while
//! the absolute watt numbers are synthetic.

use dlht_baselines::MapFeatures;

/// Idle platform power (W).
pub const P_IDLE: f64 = 80.0;
/// Incremental power per busy hardware thread (W).
pub const P_CORE: f64 = 3.5;
/// Power per GB/s of DRAM traffic (W).
pub const P_MEM_GB: f64 = 0.9;

/// Estimated cache lines touched in DRAM per request for a design.
pub fn lines_per_request(features: &MapFeatures, write_fraction: f64) -> f64 {
    let base = if features.inline_values { 1.0 } else { 2.0 };
    // Open-addressing probes and unchained closed addressing occasionally
    // touch an extra line; designs without prefetching do not pay more lines,
    // they just expose the latency (which affects throughput, not traffic).
    let collision_extra = if features.collision_handling == "open-addressing" {
        0.3
    } else {
        0.1
    };
    // Writes dirty the line and force a write-back.
    base + collision_extra + write_fraction * 1.0
}

/// Model input for one measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct PowerInput {
    /// Measured throughput in million requests per second.
    pub mops: f64,
    /// Busy threads during the measurement.
    pub threads: usize,
    /// Fraction of requests that write (Puts/Inserts/Deletes).
    pub write_fraction: f64,
}

/// Modeled power draw in watts.
pub fn modeled_power(features: &MapFeatures, input: PowerInput) -> f64 {
    let lines = lines_per_request(features, input.write_fraction);
    let bytes_per_sec = input.mops * 1e6 * lines * 64.0;
    P_IDLE + P_CORE * input.threads as f64 + P_MEM_GB * bytes_per_sec / 1e9
}

/// Power efficiency in million requests per second per watt (Fig. 4's y-axis).
pub fn efficiency_mops_per_watt(features: &MapFeatures, input: PowerInput) -> f64 {
    input.mops / modeled_power(features, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inlined() -> MapFeatures {
        MapFeatures {
            collision_handling: "closed-addressing",
            lock_free_gets: true,
            non_blocking_puts: true,
            non_blocking_inserts: true,
            deletes_free_slots: true,
            resizable: true,
            non_blocking_resize: true,
            overlaps_memory_accesses: true,
            inline_values: true,
        }
    }

    fn non_inlined() -> MapFeatures {
        MapFeatures {
            inline_values: false,
            ..inlined()
        }
    }

    #[test]
    fn more_memory_accesses_means_more_power_at_equal_throughput() {
        let input = PowerInput {
            mops: 500.0,
            threads: 16,
            write_fraction: 0.0,
        };
        assert!(modeled_power(&non_inlined(), input) > modeled_power(&inlined(), input));
        assert!(
            efficiency_mops_per_watt(&inlined(), input)
                > efficiency_mops_per_watt(&non_inlined(), input)
        );
    }

    #[test]
    fn writes_increase_traffic() {
        let read_only = PowerInput {
            mops: 300.0,
            threads: 8,
            write_fraction: 0.0,
        };
        let write_heavy = PowerInput {
            write_fraction: 1.0,
            ..read_only
        };
        assert!(modeled_power(&inlined(), write_heavy) > modeled_power(&inlined(), read_only));
    }

    #[test]
    fn higher_throughput_at_same_threads_is_more_efficient() {
        let slow = PowerInput {
            mops: 100.0,
            threads: 16,
            write_fraction: 0.0,
        };
        let fast = PowerInput {
            mops: 1_000.0,
            ..slow
        };
        assert!(
            efficiency_mops_per_watt(&inlined(), fast) > efficiency_mops_per_watt(&inlined(), slow)
        );
    }
}
