//! Multi-threaded throughput/latency runner — the equivalent of the paper's
//! micro-benchmark harness (§4, "Workloads").
//!
//! The two default workloads are reproduced exactly as described:
//!
//! * **Get**: 100% Gets over keys prepopulated before the measurement,
//!   selected uniformly at random.
//! * **InsDel**: 50% Inserts / 50% Deletes, where every Insert picks a key
//!   that was *not* prepopulated (so it pays the full insertion cost) and is
//!   immediately followed by a Delete of the same key.
//!
//! Additional mixes (Put-heavy, YCSB-style read/update blends, skewed
//! accesses) are expressed through [`WorkloadSpec`].

use crate::hist::LatencyHistogram;
use crate::rng::{KeySampler, Xoshiro256};
use dlht_core::{Batch, BatchPolicy, KvBackend, Pipeline, Request};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Operation mix in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Percentage of Gets.
    pub get: u32,
    /// Percentage of Puts (update existing keys).
    pub put: u32,
    /// Percentage of Inserts (new keys, each followed by a Delete when
    /// `insert_then_delete` is set on the spec).
    pub insert: u32,
    /// Percentage of standalone Deletes.
    pub delete: u32,
}

impl Mix {
    /// 100% Gets (the paper's default `Get` workload).
    pub const GET: Mix = Mix {
        get: 100,
        put: 0,
        insert: 0,
        delete: 0,
    };
    /// 50% Inserts + 50% Deletes (the paper's default `InsDel` workload).
    pub const INS_DEL: Mix = Mix {
        get: 0,
        put: 0,
        insert: 100,
        delete: 0,
    };
    /// 50% Gets + 50% Puts (the Put-heavy workload of §5.1.3).
    pub const PUT_HEAVY: Mix = Mix {
        get: 50,
        put: 50,
        insert: 0,
        delete: 0,
    };

    /// A read/update mix with `read` percent Gets and the rest Puts.
    pub const fn read_update(read: u32) -> Mix {
        Mix {
            get: read,
            put: 100 - read,
            insert: 0,
            delete: 0,
        }
    }
}

/// Full workload specification.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Operation mix.
    pub mix: Mix,
    /// Number of prepopulated keys (Gets/Puts/Deletes draw from `0..prepopulated`).
    pub prepopulated: u64,
    /// Key sampler for Gets/Puts/Deletes.
    pub sampler: KeySampler,
    /// Threads issuing requests.
    pub threads: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Requests per batch; 0 or 1 disables batching.
    pub batch_size: usize,
    /// When > 0, requests are driven through a bounded prefetch
    /// [`Pipeline`] of this depth instead of discrete batches: every request
    /// is prefetched at submit time and executes (order-preserving) once
    /// `pipeline_depth` later requests are in flight behind it. Per-operation
    /// latency recording is unavailable in this mode (execution is deferred,
    /// so a submit-side timestamp would measure the wrong requests).
    pub pipeline_depth: usize,
    /// When true (the paper's InsDel pattern) every Insert of a fresh key is
    /// immediately followed by a Delete of the same key.
    pub insert_then_delete: bool,
    /// Record per-operation latency (adds timing overhead; used for Fig. 15).
    pub record_latency: bool,
    /// Artificial per-memory-access delay in nanoseconds, used by the CXL /
    /// remote-memory emulation (§5.3.2). Applied once per unbatched request
    /// and once per batch when batching (prefetching overlaps the latency).
    pub remote_latency_ns: u64,
    /// Root RNG seed; each worker thread derives its stream from it. Defaults
    /// to [`crate::report::DEFAULT_SEED`] — the scenario harness overwrites it
    /// with the run-wide `BenchScale::seed` so the seed recorded in
    /// `BENCH_*.json` is the one that actually drove the keys.
    pub seed: u64,
    /// Offset added to every thread's fresh-insert key space (must stay below
    /// 2^39 so thread spaces cannot overlap). The harness sets a nonzero salt
    /// on its **warmup** pass so that mixes whose inserts are not followed by
    /// deletes (e.g. Fig. 13's hot-delete InsDel) leave no residue colliding
    /// with the measured pass's fresh keys.
    pub fresh_key_salt: u64,
}

impl WorkloadSpec {
    /// The paper's default Get workload over `prepopulated` keys.
    pub fn get_default(prepopulated: u64, threads: usize, duration: Duration) -> Self {
        WorkloadSpec {
            mix: Mix::GET,
            prepopulated,
            sampler: KeySampler::uniform(prepopulated),
            threads,
            duration,
            batch_size: 16,
            pipeline_depth: 0,
            insert_then_delete: false,
            record_latency: false,
            remote_latency_ns: 0,
            seed: crate::report::DEFAULT_SEED,
            fresh_key_salt: 0,
        }
    }

    /// The paper's default InsDel workload.
    pub fn insdel_default(prepopulated: u64, threads: usize, duration: Duration) -> Self {
        WorkloadSpec {
            mix: Mix::INS_DEL,
            insert_then_delete: true,
            ..Self::get_default(prepopulated, threads, duration)
        }
    }

    /// Disable batching (the `-NoBatch` configurations).
    pub fn without_batching(mut self) -> Self {
        self.batch_size = 1;
        self
    }

    /// Set the batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Drive requests through a bounded prefetch [`Pipeline`] of `depth`
    /// in-flight requests (0 restores discrete batches).
    pub fn with_pipeline(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Use a specific key sampler (skew, zipfian, ...).
    pub fn with_sampler(mut self, sampler: KeySampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Record per-operation latencies.
    pub fn with_latency_recording(mut self) -> Self {
        self.record_latency = true;
        self
    }

    /// Use an explicit root seed (one source of truth per benchmark run; the
    /// scenario harness sets this from `BenchScale::seed`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of one measurement run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total requests completed (batched requests count individually).
    pub total_ops: u64,
    /// Wall-clock measurement time.
    pub elapsed: Duration,
    /// Million requests per second.
    pub mops: f64,
    /// Latency histogram (empty unless latency recording was enabled).
    pub latency: LatencyHistogram,
    /// Number of threads used.
    pub threads: usize,
}

impl RunResult {
    /// Requests per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.mops * 1e6
    }
}

/// Prepopulate `map` with keys `0..n` (value = key, as in the paper's setup).
pub fn prepopulate(map: &dyn KvBackend, n: u64) {
    for k in 0..n {
        let _ = map.insert(k, k);
    }
}

/// [`prepopulate`] through the batch path, `chunk` inserts per
/// `execute_batch` call. Same final contents; essential for remote backends
/// (`dlht-net`'s `--server` mode), where each batch is one network round
/// trip instead of `n` of them.
pub fn prepopulate_batched(map: &dyn KvBackend, n: u64, chunk: usize) {
    let chunk = (chunk.max(1) as u64).min(n.max(1));
    let mut batch = Batch::with_capacity(chunk as usize);
    let mut k = 0u64;
    while k < n {
        batch.clear();
        while k < n && (batch.len() as u64) < chunk {
            batch.push_insert(k, k);
            k += 1;
        }
        map.execute(&mut batch, BatchPolicy::RunAll);
    }
}

/// Busy-wait for approximately `ns` nanoseconds (remote-memory emulation).
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Run `spec` against `map` and report throughput (and optionally latency).
///
/// The map must already be prepopulated (see [`prepopulate`]); Gets and Puts
/// target prepopulated keys, Inserts target fresh keys disjoint from the
/// prepopulated range and from other threads.
pub fn run_workload(map: &dyn KvBackend, spec: &WorkloadSpec) -> RunResult {
    let stop = AtomicBool::new(false);
    let threads = spec.threads.max(1);
    let batching = spec.batch_size > 1 && map.supports_batching();
    let started = Instant::now();

    let results: Vec<(u64, LatencyHistogram)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..threads {
            let stop = &stop;
            let spec_ref = spec;
            handles.push(s.spawn(move || run_thread(map, spec_ref, tid as u64, stop, batching)));
        }
        // Timer thread.
        let duration = spec.duration;
        let stop_ref = &stop;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop_ref.store(true, Ordering::Relaxed);
        });
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = started.elapsed();
    let total_ops: u64 = results.iter().map(|(n, _)| n).sum();
    let mut latency = LatencyHistogram::new();
    for (_, h) in &results {
        latency.merge(h);
    }
    RunResult {
        total_ops,
        elapsed,
        mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        latency,
        threads,
    }
}

fn run_thread(
    map: &dyn KvBackend,
    spec: &WorkloadSpec,
    tid: u64,
    stop: &AtomicBool,
    batching: bool,
) -> (u64, LatencyHistogram) {
    let mut rng = Xoshiro256::new(spec.seed ^ (tid + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut hist = LatencyHistogram::new();
    let mut ops_done: u64 = 0;
    // Fresh-key space for Inserts: above the prepopulated range, per thread
    // (plus the harness's warmup salt, which is < 2^39 < the 2^40 stride).
    let mut next_fresh = spec.prepopulated + 1 + spec.fresh_key_salt + tid * (1 << 40);
    let batch_size = spec.batch_size.max(1);
    // Reused across every iteration: steady-state execution touches the
    // allocator only while the buffers warm up.
    let mut batch = Batch::with_capacity(batch_size * 2);
    let mut pipeline = (spec.pipeline_depth > 0).then(|| Pipeline::new(map, spec.pipeline_depth));
    let mix = spec.mix;

    while !stop.load(Ordering::Relaxed) {
        batch.clear();
        // Build one batch worth of requests (a single request when unbatched).
        let build = if batching || pipeline.is_some() {
            batch_size
        } else {
            1
        };
        for _ in 0..build {
            let dice = rng.next_below(100) as u32;
            if dice < mix.get {
                batch.push_get(spec.sampler.sample(&mut rng));
            } else if dice < mix.get + mix.put {
                let k = spec.sampler.sample(&mut rng);
                batch.push_put(k, rng.next_u64());
            } else if dice < mix.get + mix.put + mix.insert {
                let k = next_fresh;
                next_fresh += 1;
                batch.push_insert(k, k);
                if spec.insert_then_delete {
                    batch.push_delete(k);
                }
            } else {
                batch.push_delete(spec.sampler.sample(&mut rng));
            }
        }

        // Latency is not recorded in pipeline mode: execution lags submission
        // by up to `depth` requests, so a timestamp around the submit loop
        // would charge earlier requests' execution to this window.
        let t0 = if spec.record_latency && pipeline.is_none() {
            Some(Instant::now())
        } else {
            None
        };

        if let Some(pipe) = pipeline.as_mut() {
            // Pipelined submission: prefetch now, execute once `depth` later
            // requests are in flight. Responses (which lag the submissions)
            // are consumed on the spot.
            spin_ns(spec.remote_latency_ns); // one exposed miss per window
            for req in batch.requests() {
                std::hint::black_box(pipe.submit(*req));
            }
        } else if batching {
            spin_ns(spec.remote_latency_ns); // one exposed miss per batch
            map.execute(&mut batch, BatchPolicy::RunAll);
            std::hint::black_box(batch.responses());
        } else {
            for req in batch.requests() {
                spin_ns(spec.remote_latency_ns);
                match *req {
                    Request::Get(k) => {
                        std::hint::black_box(map.get(k));
                    }
                    Request::Put(k, v) => {
                        std::hint::black_box(map.put(k, v));
                    }
                    Request::Insert(k, v) => {
                        std::hint::black_box(map.insert(k, v).is_ok());
                    }
                    Request::Delete(k) => {
                        std::hint::black_box(map.delete(k));
                    }
                }
            }
        }

        if let Some(t0) = t0 {
            let per_op = t0.elapsed().as_nanos() as u64 / batch.len() as u64;
            for _ in 0..batch.len() {
                hist.record(per_op);
            }
        }
        ops_done += batch.len() as u64;
    }
    // Everything still in flight executes here (counted above at submission).
    if let Some(mut pipe) = pipeline {
        pipe.flush();
    }
    (ops_done, hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_baselines::MapKind;

    fn quick(spec: WorkloadSpec) -> WorkloadSpec {
        WorkloadSpec {
            duration: Duration::from_millis(50),
            threads: 2,
            ..spec
        }
    }

    #[test]
    fn prepopulate_batched_matches_prepopulate() {
        let a = MapKind::Dlht.build(10_000);
        let b = MapKind::Dlht.build(10_000);
        prepopulate(a.as_ref(), 1_000);
        prepopulate_batched(b.as_ref(), 1_000, 128);
        assert_eq!(a.len(), b.len());
        for k in 0..1_000u64 {
            assert_eq!(a.get(k), b.get(k), "key {k}");
        }
        // Chunk edge cases: zero chunk clamps to 1, chunk > n finishes.
        let c = MapKind::Dlht.build(256);
        prepopulate_batched(c.as_ref(), 10, 0);
        assert_eq!(c.len(), 10);
        let d = MapKind::Dlht.build(256);
        prepopulate_batched(d.as_ref(), 10, 64);
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn get_workload_reports_throughput() {
        let map = MapKind::Dlht.build(10_000);
        prepopulate(map.as_ref(), 5_000);
        let spec = quick(WorkloadSpec::get_default(
            5_000,
            2,
            Duration::from_millis(50),
        ));
        let r = run_workload(map.as_ref(), &spec);
        assert!(r.total_ops > 0);
        assert!(r.mops > 0.0);
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn insdel_workload_leaves_population_unchanged() {
        let map = MapKind::Dlht.build(50_000);
        prepopulate(map.as_ref(), 1_000);
        let spec = quick(WorkloadSpec::insdel_default(
            1_000,
            2,
            Duration::from_millis(50),
        ));
        let r = run_workload(map.as_ref(), &spec);
        assert!(r.total_ops > 0);
        assert_eq!(map.len(), 1_000, "every inserted key must also be deleted");
    }

    #[test]
    fn latency_recording_populates_histogram() {
        let map = MapKind::Dlht.build(10_000);
        prepopulate(map.as_ref(), 1_000);
        let spec = quick(WorkloadSpec::get_default(
            1_000,
            1,
            Duration::from_millis(50),
        ))
        .with_latency_recording();
        let r = run_workload(map.as_ref(), &spec);
        assert!(r.latency.count() > 0);
        assert!(r.latency.mean_ns() > 0.0);
        assert!(r.latency.percentile_ns(99.0) >= r.latency.percentile_ns(50.0));
    }

    #[test]
    fn unbatched_runs_work_for_every_map_kind() {
        for kind in [MapKind::Clht, MapKind::Mica, MapKind::Tbb] {
            let map = kind.build(10_000);
            prepopulate(map.as_ref(), 1_000);
            let spec = quick(WorkloadSpec::get_default(
                1_000,
                2,
                Duration::from_millis(30),
            ))
            .without_batching();
            let r = run_workload(map.as_ref(), &spec);
            assert!(r.total_ops > 0, "{}", kind.name());
        }
    }

    #[test]
    fn pipelined_runs_report_throughput_and_leave_population_unchanged() {
        let map = MapKind::Dlht.build(50_000);
        prepopulate(map.as_ref(), 1_000);
        let spec = quick(WorkloadSpec::insdel_default(
            1_000,
            2,
            Duration::from_millis(50),
        ))
        .with_pipeline(16);
        let r = run_workload(map.as_ref(), &spec);
        assert!(r.total_ops > 0);
        assert_eq!(
            map.len(),
            1_000,
            "pipelined InsDel must execute every submitted request"
        );
    }

    #[test]
    fn seed_defaults_to_the_shared_constant_and_is_overridable() {
        let spec = WorkloadSpec::get_default(100, 1, Duration::from_millis(10));
        assert_eq!(spec.seed, crate::report::DEFAULT_SEED);
        assert_eq!(spec.with_seed(99).seed, 99);
    }

    #[test]
    fn put_heavy_mix_executes_puts() {
        let map = MapKind::Dlht.build(10_000);
        prepopulate(map.as_ref(), 1_000);
        let mut spec = quick(WorkloadSpec::get_default(
            1_000,
            2,
            Duration::from_millis(40),
        ));
        spec.mix = Mix::PUT_HEAVY;
        let r = run_workload(map.as_ref(), &spec);
        assert!(r.total_ops > 0);
        assert_eq!(map.len(), 1_000);
    }
}
