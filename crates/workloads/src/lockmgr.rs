//! Database lock manager over DLHT's HashSet mode (§5.3.3, Fig. 17).
//!
//! Locking a record inserts its key into the table; unlocking deletes it.
//! Transactions lock a handful of keys in a globally consistent (sorted)
//! order and then release them — two-phase-locking style — which requires the
//! hashtable's batching to preserve request order (the property DRAMHiT's
//! reordering batches violate). The workload drives any [`KvBackend`]; the
//! default entry point uses [`DlhtSet`], the paper's configuration.

use crate::rng::Xoshiro256;
use dlht_core::{Batch, BatchPolicy, DlhtSet, KvBackend, Response};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of a lock-manager run.
#[derive(Debug, Clone)]
pub struct LockMgrResult {
    /// Lock + unlock operations completed.
    pub lock_ops: u64,
    /// Transactions that acquired all their locks.
    pub acquired: u64,
    /// Transactions that found a lock busy and rolled back.
    pub conflicted: u64,
    /// Million lock/unlock operations per second (Fig. 17's y-axis).
    pub mops: f64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Run the lock-manager workload over DLHT's HashSet mode (the paper's
/// configuration): each transaction locks `locks_per_txn` records (sorted
/// order), then unlocks them. With `batched`, the lock and unlock phases are
/// submitted as order-preserving batches.
pub fn run_lock_manager(
    records: u64,
    locks_per_txn: usize,
    threads: usize,
    duration: Duration,
    batched: bool,
) -> LockMgrResult {
    let set = DlhtSet::with_capacity(records as usize + 1024);
    run_lock_manager_on(&set, records, locks_per_txn, threads, duration, batched)
}

/// Run the lock-manager workload against any [`KvBackend`] used as a lock
/// table (insert = lock, delete = unlock).
pub fn run_lock_manager_on(
    locks: &dyn KvBackend,
    records: u64,
    locks_per_txn: usize,
    threads: usize,
    duration: Duration,
    batched: bool,
) -> LockMgrResult {
    let stop = AtomicBool::new(false);
    let lock_ops = AtomicU64::new(0);
    let acquired = AtomicU64::new(0);
    let conflicted = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|s| {
        for t in 0..threads.max(1) {
            let locks = &locks;
            let stop = &stop;
            let lock_ops = &lock_ops;
            let acquired = &acquired;
            let conflicted = &conflicted;
            s.spawn(move || {
                let mut rng = Xoshiro256::new(0x10C4 + t as u64);
                let mut ops = 0u64;
                let mut ok = 0u64;
                let mut busy = 0u64;
                let mut keys = Vec::with_capacity(locks_per_txn);
                // Reused across transactions: the steady-state lock/unlock
                // phases allocate nothing.
                let mut lock_batch = Batch::with_capacity(locks_per_txn);
                let mut unlock_batch = Batch::with_capacity(locks_per_txn);
                while !stop.load(Ordering::Relaxed) {
                    keys.clear();
                    for _ in 0..locks_per_txn {
                        keys.push(rng.next_below(records));
                    }
                    keys.sort_unstable();
                    keys.dedup();
                    let got_all = if batched {
                        // Lock phase: stop at the first busy lock, then release
                        // whatever was acquired. A skipped slot was never
                        // attempted, so it is neither counted as an operation
                        // nor released.
                        lock_batch.clear();
                        for &k in &keys {
                            lock_batch.push_insert(k, 0);
                        }
                        locks.execute(&mut lock_batch, BatchPolicy::StopOnFailure);
                        let mut all = true;
                        unlock_batch.clear();
                        for (&k, resp) in keys.iter().zip(lock_batch.responses()) {
                            match resp {
                                Response::Skipped => all = false, // never attempted
                                r if r.succeeded() => {
                                    ops += 1;
                                    unlock_batch.push_delete(k);
                                }
                                _ => {
                                    // Attempted but busy: counted, not held.
                                    ops += 1;
                                    all = false;
                                }
                            }
                        }
                        if !unlock_batch.is_empty() {
                            ops += unlock_batch.len() as u64;
                            locks.execute(&mut unlock_batch, BatchPolicy::RunAll);
                        }
                        all
                    } else {
                        // Unbatched two-phase locking through the same trait:
                        // acquire in sorted order, roll back on the first
                        // conflict.
                        let mut held = 0usize;
                        let mut all = true;
                        for &k in &keys {
                            ops += 1;
                            if matches!(locks.insert(k, 0), Ok(o) if o.inserted()) {
                                held += 1;
                            } else {
                                all = false;
                                break;
                            }
                        }
                        for &k in &keys[..held] {
                            ops += 1;
                            locks.delete(k);
                        }
                        all
                    };
                    if got_all {
                        ok += 1;
                    } else {
                        busy += 1;
                    }
                }
                lock_ops.fetch_add(ops, Ordering::Relaxed);
                acquired.fetch_add(ok, Ordering::Relaxed);
                conflicted.fetch_add(busy, Ordering::Relaxed);
            });
        }
        let stop = &stop;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
    });

    let elapsed = start.elapsed();
    let ops = lock_ops.load(Ordering::Relaxed);
    LockMgrResult {
        lock_ops: ops,
        acquired: acquired.load(Ordering::Relaxed),
        conflicted: conflicted.load(Ordering::Relaxed),
        mops: ops as f64 / elapsed.as_secs_f64() / 1e6,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_lock_manager_makes_progress_and_releases_everything() {
        let r = run_lock_manager(10_000, 4, 2, Duration::from_millis(60), true);
        assert!(r.lock_ops > 0);
        assert!(r.acquired > 0);
        assert!(r.mops > 0.0);
    }

    #[test]
    fn unbatched_lock_manager_also_works() {
        let r = run_lock_manager(10_000, 4, 2, Duration::from_millis(60), false);
        assert!(r.lock_ops > 0);
        assert!(r.acquired > 0);
    }

    #[test]
    fn heavy_contention_produces_conflicts_but_no_lost_locks() {
        // 4 threads fighting over 8 records: conflicts must occur, and at the
        // end no lock may remain held.
        let r = run_lock_manager(8, 3, 4, Duration::from_millis(60), true);
        assert!(r.conflicted > 0, "contention must cause conflicts");
        assert!(r.acquired > 0, "some transactions must still succeed");
    }

    #[test]
    fn lock_table_is_empty_after_a_run() {
        let set = DlhtSet::with_capacity(2_048);
        let r = run_lock_manager_on(&set, 1_000, 4, 2, Duration::from_millis(40), true);
        assert!(r.lock_ops > 0);
        assert!(
            set.is_empty(),
            "every acquired lock must have been released"
        );
    }

    #[test]
    fn any_backend_can_serve_as_the_lock_table() {
        // The unified trait means the lock manager also runs over a baseline.
        let map = dlht_core::DlhtMap::with_capacity(2_048);
        let r = run_lock_manager_on(&map, 1_000, 3, 2, Duration::from_millis(40), false);
        assert!(r.acquired > 0);
        assert!(map.is_empty());
    }
}
