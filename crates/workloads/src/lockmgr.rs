//! Database lock manager over DLHT's HashSet mode (§5.3.3, Fig. 17).
//!
//! Locking a record inserts its key into the HashSet; unlocking deletes it.
//! Transactions lock a handful of keys in a globally consistent (sorted)
//! order and then release them — two-phase-locking style — which requires the
//! hashtable's batching to preserve request order (the property DRAMHiT's
//! reordering batches violate).

use crate::rng::Xoshiro256;
use dlht_core::{DlhtSet, Request, Response};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of a lock-manager run.
#[derive(Debug, Clone)]
pub struct LockMgrResult {
    /// Lock + unlock operations completed.
    pub lock_ops: u64,
    /// Transactions that acquired all their locks.
    pub acquired: u64,
    /// Transactions that found a lock busy and rolled back.
    pub conflicted: u64,
    /// Million lock/unlock operations per second (Fig. 17's y-axis).
    pub mops: f64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Run the lock-manager workload: each transaction locks `locks_per_txn`
/// records (sorted order), then unlocks them. With `batched`, the lock and
/// unlock phases are submitted as order-preserving DLHT batches.
pub fn run_lock_manager(
    records: u64,
    locks_per_txn: usize,
    threads: usize,
    duration: Duration,
    batched: bool,
) -> LockMgrResult {
    let set = DlhtSet::with_capacity(records as usize + 1024);
    let stop = AtomicBool::new(false);
    let lock_ops = AtomicU64::new(0);
    let acquired = AtomicU64::new(0);
    let conflicted = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|s| {
        for t in 0..threads.max(1) {
            let set = &set;
            let stop = &stop;
            let lock_ops = &lock_ops;
            let acquired = &acquired;
            let conflicted = &conflicted;
            s.spawn(move || {
                let mut rng = Xoshiro256::new(0x10C4 + t as u64);
                let mut ops = 0u64;
                let mut ok = 0u64;
                let mut busy = 0u64;
                let mut keys = Vec::with_capacity(locks_per_txn);
                while !stop.load(Ordering::Relaxed) {
                    keys.clear();
                    for _ in 0..locks_per_txn {
                        keys.push(rng.next_below(records));
                    }
                    keys.sort_unstable();
                    keys.dedup();
                    let got_all = if batched {
                        // Lock phase: stop at the first busy lock, then release
                        // whatever was acquired.
                        let reqs: Vec<Request> =
                            keys.iter().map(|&k| Request::Insert(k, 0)).collect();
                        let resps = set.raw().execute_batch(&reqs, true);
                        ops += resps.iter().filter(|r| !matches!(r, Response::Skipped)).count()
                            as u64;
                        let all = resps.iter().all(|r| r.succeeded());
                        let held: Vec<u64> = keys
                            .iter()
                            .zip(resps.iter())
                            .filter(|(_, r)| r.succeeded())
                            .map(|(k, _)| *k)
                            .collect();
                        let unlocks: Vec<Request> =
                            held.iter().map(|&k| Request::Delete(k)).collect();
                        if !unlocks.is_empty() {
                            set.raw().execute_batch(&unlocks, false);
                            ops += unlocks.len() as u64;
                        }
                        all
                    } else {
                        let all = set.try_lock_all(&keys).unwrap_or(false);
                        if all {
                            ops += keys.len() as u64 * 2;
                            set.unlock_all(&keys);
                        } else {
                            ops += keys.len() as u64;
                        }
                        all
                    };
                    if got_all {
                        ok += 1;
                    } else {
                        busy += 1;
                    }
                }
                lock_ops.fetch_add(ops, Ordering::Relaxed);
                acquired.fetch_add(ok, Ordering::Relaxed);
                conflicted.fetch_add(busy, Ordering::Relaxed);
            });
        }
        let stop = &stop;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
    });

    let elapsed = start.elapsed();
    let ops = lock_ops.load(Ordering::Relaxed);
    LockMgrResult {
        lock_ops: ops,
        acquired: acquired.load(Ordering::Relaxed),
        conflicted: conflicted.load(Ordering::Relaxed),
        mops: ops as f64 / elapsed.as_secs_f64() / 1e6,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_lock_manager_makes_progress_and_releases_everything() {
        let r = run_lock_manager(10_000, 4, 2, Duration::from_millis(60), true);
        assert!(r.lock_ops > 0);
        assert!(r.acquired > 0);
        assert!(r.mops > 0.0);
    }

    #[test]
    fn unbatched_lock_manager_also_works() {
        let r = run_lock_manager(10_000, 4, 2, Duration::from_millis(60), false);
        assert!(r.lock_ops > 0);
        assert!(r.acquired > 0);
    }

    #[test]
    fn heavy_contention_produces_conflicts_but_no_lost_locks() {
        // 4 threads fighting over 8 records: conflicts must occur, and at the
        // end no lock may remain held.
        let r = run_lock_manager(8, 3, 4, Duration::from_millis(60), true);
        assert!(r.conflicted > 0, "contention must cause conflicts");
        assert!(r.acquired > 0, "some transactions must still succeed");
    }
}
