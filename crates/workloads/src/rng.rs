//! Fast, deterministic random-number generation for workload drivers.
//!
//! Request generation must never become the bottleneck when the system under
//! test serves hundreds of millions of requests per second, so the hot path
//! uses a hand-rolled xoshiro256** seeded by SplitMix64 (the standard
//! construction), plus samplers for the paper's access patterns: uniform over
//! a prepopulated key range and the 1000-hot-keys skew of §5.2.4.

/// SplitMix64: used for seeding and as a cheap stateless mixer.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (Lemire's multiply-shift reduction).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Key sampler reproducing the paper's access patterns.
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over keys `[0, population)` (the default, Table 2).
    Uniform {
        /// Number of prepopulated keys.
        population: u64,
    },
    /// `hot_fraction` of accesses go to `hot_keys` keys, the rest uniform over
    /// the whole population (§5.2.4: 1000 hot keys, varying percentage).
    HotSet {
        /// Number of prepopulated keys.
        population: u64,
        /// Number of hot keys (the paper uses 1000).
        hot_keys: u64,
        /// Fraction of accesses that target the hot set (0.0..=1.0).
        hot_fraction: f64,
    },
    /// Zipfian over `[0, population)` with parameter `theta` (YCSB-style).
    Zipfian {
        /// Number of prepopulated keys.
        population: u64,
        /// Skew parameter (YCSB default 0.99).
        theta: f64,
        /// Precomputed zeta(n, theta).
        zetan: f64,
    },
}

impl KeySampler {
    /// Uniform sampler.
    pub fn uniform(population: u64) -> Self {
        KeySampler::Uniform { population }
    }

    /// Hot-set sampler (§5.2.4).
    pub fn hot_set(population: u64, hot_keys: u64, hot_fraction: f64) -> Self {
        KeySampler::HotSet {
            population,
            hot_keys: hot_keys.min(population).max(1),
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
        }
    }

    /// Zipfian sampler with parameter `theta`.
    pub fn zipfian(population: u64, theta: f64) -> Self {
        let n = population.max(1);
        let zetan = (1..=n.min(10_000_000))
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        KeySampler::Zipfian {
            population: n,
            theta,
            zetan,
        }
    }

    /// Number of prepopulated keys this sampler draws from.
    pub fn population(&self) -> u64 {
        match *self {
            KeySampler::Uniform { population }
            | KeySampler::HotSet { population, .. }
            | KeySampler::Zipfian { population, .. } => population,
        }
    }

    /// Draw a key index in `[0, population)`.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        match *self {
            KeySampler::Uniform { population } => rng.next_below(population),
            KeySampler::HotSet {
                population,
                hot_keys,
                hot_fraction,
            } => {
                if rng.next_f64() < hot_fraction {
                    rng.next_below(hot_keys)
                } else {
                    rng.next_below(population)
                }
            }
            KeySampler::Zipfian {
                population,
                theta,
                zetan,
            } => {
                // Standard YCSB-style rejection-free zipfian approximation.
                let u = rng.next_f64();
                let uz = u * zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(theta) {
                    return 1;
                }
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / population as f64).powf(1.0 - theta))
                    / (1.0 - 2.0f64.powf(theta) / zetan);
                let v = (population as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64;
                v.min(population - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_is_deterministic_and_distinct_per_seed() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(1);
        let mut c = Xoshiro256::new(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256::new(42);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..1_000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_sampler_covers_the_range() {
        let s = KeySampler::uniform(64);
        let mut rng = Xoshiro256::new(7);
        let mut seen = [false; 64];
        for _ in 0..10_000 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every key should be hit");
    }

    #[test]
    fn hot_set_concentrates_accesses() {
        let s = KeySampler::hot_set(1_000_000, 1_000, 0.9);
        let mut rng = Xoshiro256::new(3);
        let hot = (0..100_000).filter(|_| s.sample(&mut rng) < 1_000).count();
        // 90% go to the hot set directly plus ~0.1% of the uniform remainder.
        assert!(hot > 85_000, "hot accesses = {hot}");
    }

    #[test]
    fn zipfian_is_heavily_skewed_toward_low_ranks() {
        let s = KeySampler::zipfian(100_000, 0.99);
        let mut rng = Xoshiro256::new(11);
        let top10 = (0..50_000).filter(|_| s.sample(&mut rng) < 10).count();
        assert!(
            top10 > 10_000,
            "top-10 keys got only {top10} of 50k accesses"
        );
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 100_000);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(5);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
